//! End-to-end integration: dataset -> training -> CKA -> Phase 1 ->
//! Phase 2 (simulator in the loop) -> cascade deployment.

use pivot::core::{MultiEffortVit, Phase2Config, Phase2Search, PipelineConfig, PivotPipeline};
use pivot::data::{Dataset, DatasetConfig};
use pivot::sim::{AcceleratorConfig, Simulator, VitGeometry};
use pivot::vit::{TrainConfig, VitConfig};

fn dataset() -> Dataset {
    Dataset::generate(
        &DatasetConfig {
            classes: 4,
            image_size: 16,
            train_per_class: 30,
            test_per_class: 12,
            difficulty: (0.0, 1.0),
        },
        11,
    )
}

fn pipeline() -> PivotPipeline {
    PivotPipeline::new(PipelineConfig {
        vit: VitConfig {
            depth: 12,
            dim: 32,
            heads: 2,
            ..VitConfig::test_small()
        },
        efforts: vec![3, 6, 9, 12],
        teacher_train: TrainConfig {
            epochs: 14,
            ..Default::default()
        },
        finetune: TrainConfig {
            epochs: 2,
            distill_weight: 0.5,
            ..Default::default()
        },
        cka_batch: 40,
        seed: 2,
    })
}

#[test]
fn full_codesign_flow_produces_a_working_cascade() {
    let data = dataset();
    let artifacts = pipeline().run(&data);

    // Phase 1 artifacts are consistent.
    assert_eq!(artifacts.efforts.len(), 4);
    for em in &artifacts.efforts {
        assert_eq!(em.model.effort(), em.effort);
    }
    // The teacher learned something well beyond chance (0.25).
    let teacher_acc = artifacts.teacher.accuracy(&data.test);
    assert!(teacher_acc > 0.45, "teacher accuracy {teacher_acc}");

    // Phase 2 with the simulator in the loop at DeiT-S scale.
    let sim = Simulator::new(AcceleratorConfig::zcu102());
    let geometry = VitGeometry::deit_s();
    let calibration: Vec<_> = data.train.iter().take(60).cloned().collect();
    let search = Phase2Search::new(&sim, &geometry, &artifacts.efforts, &calibration);
    let result = search
        .run(&Phase2Config {
            lec: 0.7,
            delay_constraint_ms: 50.0,
            delay_tolerance: 0.05,
            threshold_step: 0.02,
        })
        .expect("50 ms is feasible for DeiT-S");

    // The combination respects the constraint and beats the baseline.
    assert!(result.perf.delay_ms <= 52.5);
    let baseline = sim.simulate(&geometry, &[true; 12]);
    assert!(result.perf.delay_ms < baseline.delay_ms);
    assert!(result.perf.edp() < baseline.edp());

    // Deploy the chosen cascade and check it works end to end.
    let low = artifacts
        .efforts
        .iter()
        .find(|e| e.effort == result.low_effort)
        .expect("low effort model");
    let high = artifacts
        .efforts
        .iter()
        .find(|e| e.effort == result.high_effort)
        .expect("high effort model");
    let cascade = MultiEffortVit::new(low.model.clone(), high.model.clone(), result.threshold);
    let stats = cascade.evaluate(&data.test);
    assert_eq!(stats.total(), data.test.len());

    // Input-awareness pays: the cascade is at least as accurate as the low
    // effort alone.
    let low_only_acc = low.model.accuracy(&data.test) as f64;
    assert!(
        stats.accuracy() >= low_only_acc - 0.02,
        "cascade {} worse than low-only {low_only_acc}",
        stats.accuracy()
    );
}

#[test]
fn cascade_escalates_more_on_harder_inputs() {
    use pivot::nn::normalized_entropy;

    let data = dataset();
    let artifacts = pipeline().run(&data);
    let low = artifacts.efforts[0].model.clone();

    let cfg = DatasetConfig {
        classes: 4,
        image_size: 16,
        train_per_class: 30,
        test_per_class: 12,
        difficulty: (0.0, 1.0),
    };
    let easy = Dataset::generate_difficulty_stripes(&cfg, &[0.05], 60, 31);
    let hard = Dataset::generate_difficulty_stripes(&cfg, &[0.95], 60, 32);

    // Core input-awareness property: the low-effort entropy is higher on
    // harder inputs.
    let mean_entropy = |set: &[pivot::data::Sample]| {
        set.iter()
            .map(|s| normalized_entropy(&low.infer(&s.image)))
            .sum::<f32>()
            / set.len() as f32
    };
    let e_easy = mean_entropy(&easy);
    let e_hard = mean_entropy(&hard);
    assert!(
        e_hard > e_easy,
        "entropy must grow with difficulty: easy {e_easy}, hard {e_hard}"
    );

    // With a threshold between the two means, the cascade escalates more
    // hard inputs than easy ones.
    let threshold = 0.5 * (e_easy + e_hard);
    let cascade = MultiEffortVit::new(low, artifacts.teacher.clone(), threshold);
    let f_high_easy = cascade.evaluate(&easy).f_high();
    let f_high_hard = cascade.evaluate(&hard).f_high();
    assert!(
        f_high_hard > f_high_easy,
        "escalation must grow with difficulty: easy {f_high_easy}, hard {f_high_hard}"
    );
}

#[test]
fn phase1_paths_skip_deeper_layers_on_trained_models() {
    let data = dataset();
    let artifacts = pipeline().run(&data);
    // Paper Fig. 9: across efforts, skips concentrate in deeper layers
    // because CKA(MLP, A) is higher there.
    let mid = artifacts
        .efforts
        .iter()
        .find(|e| e.effort == 6)
        .expect("effort 6 exists");
    let skipped = mid.path.skipped();
    let mean_skip: f64 = skipped.iter().map(|&i| i as f64).sum::<f64>() / skipped.len() as f64;
    // Mean skipped index above the depth midpoint (5.5) means deep bias.
    assert!(
        mean_skip > 4.5,
        "skips {skipped:?} (mean {mean_skip:.2}) not biased toward deep layers"
    );
}
