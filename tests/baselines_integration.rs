//! Cross-crate integration of the prior-work baselines with trained
//! models, and the GPP cost-model claims of Figs. 1c / 7.

use pivot::baselines::gpp::{
    baseline_workload, heatvit_workload, pivot_workload, vitcod_workload, Platform,
};
use pivot::baselines::{HeatVit, HeatVitConfig, VitCod};
use pivot::data::{Dataset, DatasetConfig};
use pivot::sim::VitGeometry;
use pivot::tensor::Rng;
use pivot::vit::{TrainConfig, Trainer, VisionTransformer, VitConfig};

fn trained_model_and_data() -> (VisionTransformer, Dataset) {
    let data = Dataset::generate(
        &DatasetConfig {
            classes: 4,
            image_size: 16,
            train_per_class: 45,
            test_per_class: 12,
            difficulty: (0.0, 0.7),
        },
        17,
    );
    let cfg = VitConfig {
        depth: 12,
        dim: 32,
        heads: 2,
        ..VitConfig::test_small()
    };
    let mut model = VisionTransformer::new(&cfg, &mut Rng::new(5));
    Trainer::new(TrainConfig {
        epochs: 18,
        distill_weight: 0.0,
        entropy_weight: 0.0,
        ..Default::default()
    })
    .train(&mut model, None, &data);
    (model, data)
}

/// Table 4 ordering on trained models: the dense model beats both
/// constant-ratio baselines, and moderate sparsity hurts less than heavy
/// token pruning plus heavy sparsity combined.
#[test]
fn baseline_accuracy_ordering_on_trained_model() {
    let (model, data) = trained_model_and_data();
    let dense_acc = model.accuracy(&data.test) as f64;
    assert!(dense_acc > 0.5, "model must be trained (acc {dense_acc})");

    let vitcod_acc = VitCod::new(0.9).accuracy(&model, &data.test) as f64;
    let heatvit = HeatVit::new(HeatVitConfig::deit_s(), 12);
    let heatvit_acc = data
        .test
        .iter()
        .filter(|s| heatvit.infer(&model, &s.image).row_argmax(0) == s.label)
        .count() as f64
        / data.test.len() as f64;

    // Both post-hoc compressions lose some accuracy vs dense; 90% attention
    // sparsity is the harsher intervention (paper: ViTCOD 78.1 < HeatViT
    // 79.1 < dense 79.8).
    assert!(
        dense_acc >= vitcod_acc,
        "dense {dense_acc} vs ViTCOD {vitcod_acc}"
    );
    assert!(
        dense_acc >= heatvit_acc - 0.05,
        "dense {dense_acc} vs HeatViT {heatvit_acc}"
    );
    // Mild sparsity degrades less than heavy sparsity.
    let mild_acc = VitCod::new(0.3).accuracy(&model, &data.test) as f64;
    assert!(
        mild_acc >= vitcod_acc,
        "mild {mild_acc} vs 90% sparse {vitcod_acc}"
    );
}

/// Fig. 1c / Fig. 7 cost-model claims hold on every platform.
#[test]
fn gpp_claims_hold_on_all_platforms() {
    let geom = VitGeometry::deit_s();
    let base = baseline_workload(&geom);
    let heatvit = heatvit_workload(&geom, 3);
    let vitcod = vitcod_workload(&geom, 0.9);
    // A PVDS-50-style point at high LEC: low effort 3, high effort 9,
    // F_H = 0.1.
    let low: Vec<bool> = (0..12).map(|i| i < 3).collect();
    let high: Vec<bool> = (0..12).map(|i| i < 9).collect();
    let pivot = pivot_workload(&geom, &low, &high, 0.1);

    for p in Platform::ALL {
        let spec = p.spec();
        let d_base = spec.delay_ms(&base);
        assert!(
            spec.delay_ms(&pivot) < d_base,
            "{}: PIVOT must be faster",
            spec.name
        );
        assert!(
            spec.delay_ms(&heatvit) > d_base,
            "{}: HeatViT must show overhead",
            spec.name
        );
        let vitcod_ratio = spec.delay_ms(&vitcod) / d_base;
        assert!(
            (0.98..1.25).contains(&vitcod_ratio),
            "{}: ViTCOD ratio {vitcod_ratio}",
            spec.name
        );
    }
}

/// The entropy check PIVOT adds on GPPs stays a small single-digit share
/// (the paper reports < 0.05% on the FPGA PS; a GPU host sync is pricier
/// but still marginal next to the re-computation overhead).
#[test]
fn pivot_gpp_sync_overhead_is_negligible() {
    let geom = VitGeometry::deit_s();
    let low: Vec<bool> = (0..12).map(|i| i < 3).collect();
    let high = vec![true; 12];
    let with_sync = pivot_workload(&geom, &low, &high, 0.0);
    let mut without_sync = with_sync;
    without_sync.sync_count = 0.0;
    for p in Platform::ALL {
        let spec = p.spec();
        let overhead = spec.delay_ms(&with_sync) - spec.delay_ms(&without_sync);
        let share = overhead / spec.delay_ms(&with_sync);
        assert!(share < 0.04, "{}: entropy sync share {share}", spec.name);
    }
}

/// HeatViT's progressive schedule really prunes on a trained forward pass
/// (cross-crate: pivot-baselines driving pivot-vit internals).
#[test]
fn heatvit_token_counts_shrink_through_stages() {
    let hv = HeatVit::new(HeatVitConfig::deit_s(), 12);
    let live = hv.live_tokens_per_encoder(12, 196);
    assert_eq!(live.len(), 12);
    assert!(live[11] < live[6] && live[6] < live[0]);
    // Final stage keeps 13% of tokens (paper: 87% pruning in encoders 10-12).
    assert_eq!(live[11], (0.13f32 * 196.0).ceil() as usize);
}
