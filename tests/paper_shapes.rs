//! Cross-crate assertions of the paper's headline *shapes* that do not
//! need training (pure simulator / combinatorics / cost models).

use pivot::core::{search_space, PathConfig, TrainCostModel};
use pivot::sim::{combine_efforts, AcceleratorConfig, ModuleClass, Simulator, VitGeometry};

fn sim() -> Simulator {
    Simulator::new(AcceleratorConfig::zcu102())
}

/// Table 2 delay/EDP shape: a PVDS-50-like cascade (low 5, high 9, F_L
/// 0.75) lands near 50 ms with a >1.3x EDP reduction; a PVDS-35-like one
/// reduces EDP further.
#[test]
fn table2_shape_edp_reductions() {
    let sim = sim();
    let geom = VitGeometry::deit_s();
    let baseline = sim.simulate(&geom, &[true; 12]);

    let mask = |e: usize| -> Vec<bool> { (0..12).map(|i| i < e).collect() };
    let pvds50 = combine_efforts(
        &sim.simulate(&geom, &mask(5)),
        &sim.simulate(&geom, &mask(9)),
        0.75,
    );
    let pvds35 = combine_efforts(
        &sim.simulate(&geom, &mask(3)),
        &sim.simulate(&geom, &mask(5)),
        0.75,
    );

    assert!(
        (42.0..53.0).contains(&pvds50.delay_ms),
        "PVDS-50 delay {}",
        pvds50.delay_ms
    );
    let edp50 = baseline.edp() / pvds50.edp();
    let edp35 = baseline.edp() / pvds35.edp();
    assert!(edp50 > 1.3, "PVDS-50 EDP reduction {edp50} (paper 1.73x)");
    assert!(
        edp35 > edp50,
        "PVDS-35 ({edp35}) must reduce EDP more than PVDS-50 ({edp50})"
    );
    assert!(edp35 > 2.0, "PVDS-35 EDP reduction {edp35} (paper 2.6x)");
}

/// Table 3 shape: the deeper LVViT-S benefits more than DeiT-S at the same
/// 50 ms target (paper: 2.7x vs 1.73x).
#[test]
fn table3_shape_lvvit_benefits_more() {
    let sim = sim();
    let deit = VitGeometry::deit_s();
    let lv = VitGeometry::lvvit_s();
    let deit_base = sim.simulate(&deit, &[true; 12]);
    let lv_base = sim.simulate(&lv, &[true; 16]);

    let deit50 = combine_efforts(
        &sim.simulate(&deit, &(0..12).map(|i| i < 5).collect::<Vec<_>>()),
        &sim.simulate(&deit, &(0..12).map(|i| i < 9).collect::<Vec<_>>()),
        0.75,
    );
    let lv50 = combine_efforts(
        &sim.simulate(&lv, &(0..16).map(|i| i < 4).collect::<Vec<_>>()),
        &sim.simulate(&lv, &(0..16).map(|i| i < 10).collect::<Vec<_>>()),
        0.75,
    );
    let deit_red = deit_base.edp() / deit50.edp();
    let lv_red = lv_base.edp() / lv50.edp();
    assert!(
        lv_red > deit_red,
        "LVViT-S EDP reduction {lv_red} must exceed DeiT-S {deit_red} at 50 ms"
    );
}

/// Fig. 6a shape: under PIVOT the softmax delay share shrinks and the MLP
/// share grows relative to the baseline.
#[test]
fn fig6a_shape_softmax_share_shrinks() {
    let sim = sim();
    let geom = VitGeometry::deit_s();
    let baseline = sim.simulate(&geom, &[true; 12]);
    let cascade = combine_efforts(
        &sim.simulate(&geom, &(0..12).map(|i| i < 5).collect::<Vec<_>>()),
        &sim.simulate(&geom, &(0..12).map(|i| i < 9).collect::<Vec<_>>()),
        0.75,
    );
    let base_sm = baseline.breakdown.fraction(ModuleClass::Softmax);
    let pivot_sm = cascade.breakdown.get(ModuleClass::Softmax) / cascade.breakdown.total_ms();
    assert!(
        pivot_sm < base_sm,
        "softmax share must shrink: {base_sm} -> {pivot_sm}"
    );

    let base_mlp = baseline.breakdown.fraction(ModuleClass::Mlp);
    let pivot_mlp = cascade.breakdown.get(ModuleClass::Mlp) / cascade.breakdown.total_ms();
    assert!(
        pivot_mlp > base_mlp,
        "MLP share must grow: {base_mlp} -> {pivot_mlp}"
    );
}

/// Fig. 6b shape: the PS energy reduction is at least as large as any PL
/// component's reduction (softmax work falls fastest).
#[test]
fn fig6b_shape_ps_reduction_leads() {
    use pivot::sim::EnergyComponent;
    let sim = sim();
    let geom = VitGeometry::deit_s();
    let baseline = sim.simulate(&geom, &[true; 12]);
    let cascade = combine_efforts(
        &sim.simulate(&geom, &(0..12).map(|i| i < 5).collect::<Vec<_>>()),
        &sim.simulate(&geom, &(0..12).map(|i| i < 9).collect::<Vec<_>>()),
        0.75,
    );
    let reduction = |c: EnergyComponent| baseline.energy.get(c) / cascade.energy.get(c);
    let ps = reduction(EnergyComponent::Ps);
    for c in [
        EnergyComponent::PeArray,
        EnergyComponent::Sram,
        EnergyComponent::Periphery,
    ] {
        assert!(
            ps >= reduction(c) * 0.98,
            "PS reduction {ps} must lead {:?} ({})",
            c,
            reduction(c)
        );
    }
    assert!(ps > 1.2, "PS energy reduction {ps} too small");
}

/// Fig. 4b shape: PIVOT shrinks the DeiT-S Phase-2 space by ~1e5.
#[test]
fn fig4b_shape_design_space() {
    let efforts: Vec<usize> = (3..=9).collect();
    let factor = search_space::reduction_factor(12, &efforts);
    assert!(factor > 1e4, "reduction factor {factor}");
    // The paper's worked example.
    assert_eq!(search_space::random_pair_space(12, 3, 6), 220.0 * 924.0);
}

/// Fig. 4c shape: preparing all efforts is cheaper than scratch training,
/// and DeiT-S (7 efforts) is relatively cheaper than LVViT-S (9 efforts).
#[test]
fn fig4c_shape_training_cost() {
    let sim = sim();
    let model = TrainCostModel::default();
    let deit_paths: Vec<PathConfig> = (3..=9)
        .map(|e| PathConfig::new(12, &(0..e).collect::<Vec<_>>()))
        .collect();
    let lv_paths: Vec<PathConfig> = (4..=12)
        .map(|e| PathConfig::new(16, &(0..e).collect::<Vec<_>>()))
        .collect();
    let deit_cost = model.all_efforts_cost(&sim, &VitGeometry::deit_s(), &deit_paths);
    let lv_cost = model.all_efforts_cost(&sim, &VitGeometry::lvvit_s(), &lv_paths);
    assert!(deit_cost < 0.5, "DeiT-S cost {deit_cost} (paper ~1/3)");
    assert!(lv_cost < 0.65, "LVViT-S cost {lv_cost} (paper ~1/2)");
    assert!(deit_cost < lv_cost, "DeiT-S must be relatively cheaper");
}

/// Section 3.4: the entropy computation is negligible (< 0.05% of delay).
#[test]
fn entropy_overhead_is_negligible() {
    let sim = sim();
    let perf = sim.simulate(&VitGeometry::deit_s(), &[true; 12]);
    assert!(perf.breakdown.fraction(ModuleClass::Entropy) < 0.0005);
}
