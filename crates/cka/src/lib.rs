//! Centered kernel alignment (CKA) similarity.
//!
//! PIVOT's Phase 1 scores candidate attention-skip paths using the *CKA
//! matrix* (paper Fig. 3a, citing Cortes et al. 2012): the linear CKA
//! similarity between the MLP output of encoder `i` and the attention output
//! of encoder `j` over a calibration batch. A high `CKA(MLP_i, A_j)` means
//! attention `j` barely transforms the residual stream it receives, so it
//! can be skipped with little information loss.
//!
//! Linear CKA between representation matrices `X (n x p)` and `Y (n x q)`
//! (one row per input) with centered columns is
//!
//! ```text
//! CKA(X, Y) = ||Y^T X||_F^2 / (||X^T X||_F * ||Y^T Y||_F)
//! ```
//!
//! which equals the HSIC-based definition for linear kernels.
//!
//! # Example
//!
//! ```
//! use pivot_cka::linear_cka;
//! use pivot_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::new(0);
//! let x = Matrix::randn(32, 8, 1.0, &mut rng);
//! assert!((linear_cka(&x, &x) - 1.0).abs() < 1e-4);
//! ```

#![deny(missing_docs)]

use pivot_tensor::Matrix;

/// Linear CKA similarity between two representation matrices with one row
/// per input example.
///
/// Both matrices are column-centered internally. The result lies in
/// `[0, 1]`; identical (up to orthogonal transform and isotropic scaling)
/// representations score 1. Degenerate inputs (all-zero after centering)
/// score 0.
///
/// # Panics
///
/// Panics if the matrices have different row counts (they must describe the
/// same inputs).
pub fn linear_cka(x: &Matrix, y: &Matrix) -> f32 {
    assert_eq!(
        x.rows(),
        y.rows(),
        "CKA requires equal example counts: {} vs {}",
        x.rows(),
        y.rows()
    );
    let xc = x.center_columns();
    let yc = y.center_columns();
    let cross = yc.matmul_transpose_a(&xc).frobenius_norm().powi(2);
    let x_norm = xc.matmul_transpose_a(&xc).frobenius_norm();
    let y_norm = yc.matmul_transpose_a(&yc).frobenius_norm();
    if x_norm == 0.0 || y_norm == 0.0 {
        return 0.0;
    }
    (cross / (x_norm * y_norm)).clamp(0.0, 1.0)
}

/// Linear HSIC (Hilbert-Schmidt independence criterion) between two
/// representation matrices, the unnormalized quantity underlying
/// [`linear_cka`].
///
/// # Panics
///
/// Panics if the matrices have different row counts.
pub fn linear_hsic(x: &Matrix, y: &Matrix) -> f32 {
    assert_eq!(x.rows(), y.rows(), "HSIC requires equal example counts");
    let n = x.rows() as f32;
    if n < 2.0 {
        return 0.0;
    }
    let xc = x.center_columns();
    let yc = y.center_columns();
    xc.matmul_transpose_a(&yc).frobenius_norm().powi(2) / ((n - 1.0) * (n - 1.0))
}

/// Flattens a list of per-sample activation matrices (e.g. `tokens x dim`
/// each) into a single representation matrix with one row per sample.
///
/// # Panics
///
/// Panics if the samples have inconsistent shapes or the list is empty.
pub fn stack_flattened(samples: &[Matrix]) -> Matrix {
    assert!(
        !samples.is_empty(),
        "stack_flattened needs at least one sample"
    );
    let shape = samples[0].shape();
    let features = shape.0 * shape.1;
    let mut out = Matrix::zeros(samples.len(), features);
    for (r, s) in samples.iter().enumerate() {
        assert_eq!(s.shape(), shape, "sample {r} has inconsistent shape");
        out.row_mut(r).copy_from_slice(s.as_slice());
    }
    out
}

/// The CKA matrix of the paper's Fig. 3a / Algorithm 1.
///
/// `matrix[(i, j)] = CKA(MLP_i, A_j)`: similarity between the MLP output of
/// encoder `i` and the attention output of encoder `j`, computed over a
/// calibration batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CkaMatrix {
    values: Matrix,
}

impl CkaMatrix {
    /// Computes the CKA matrix from per-encoder representation stacks.
    ///
    /// `mlp_reps[i]` / `attn_reps[j]` are `n_samples x features` matrices
    /// (use [`stack_flattened`] to build them from per-sample traces). Only
    /// the upper triangle `j > i` is meaningful for Algorithm 1; the rest is
    /// filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the two lists have different lengths or inconsistent
    /// example counts.
    pub fn compute(mlp_reps: &[Matrix], attn_reps: &[Matrix]) -> Self {
        assert_eq!(
            mlp_reps.len(),
            attn_reps.len(),
            "need one MLP and one attention representation per encoder"
        );
        let depth = mlp_reps.len();
        let mut values = Matrix::zeros(depth, depth);
        for i in 0..depth {
            for j in (i + 1)..depth {
                values[(i, j)] = linear_cka(&mlp_reps[i], &attn_reps[j]);
            }
        }
        Self { values }
    }

    /// Wraps a precomputed matrix (used by tests and synthetic benches).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(values: Matrix) -> Self {
        assert_eq!(values.rows(), values.cols(), "CKA matrix must be square");
        Self { values }
    }

    /// Number of encoders the matrix covers.
    pub fn depth(&self) -> usize {
        self.values.rows()
    }

    /// `CKA(MLP_i, A_j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.values[(i, j)]
    }

    /// The underlying `depth x depth` matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Rng;
    use proptest::prelude::*;

    #[test]
    fn cka_self_similarity_is_one() {
        let mut rng = Rng::new(1);
        let x = Matrix::randn(40, 10, 1.0, &mut rng);
        assert!((linear_cka(&x, &x) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cka_is_symmetric() {
        let mut rng = Rng::new(2);
        let x = Matrix::randn(30, 6, 1.0, &mut rng);
        let y = Matrix::randn(30, 9, 1.0, &mut rng);
        assert!((linear_cka(&x, &y) - linear_cka(&y, &x)).abs() < 1e-5);
    }

    #[test]
    fn cka_invariant_to_isotropic_scaling() {
        let mut rng = Rng::new(3);
        let x = Matrix::randn(25, 5, 1.0, &mut rng);
        let y = Matrix::randn(25, 5, 1.0, &mut rng);
        let base = linear_cka(&x, &y);
        let scaled = linear_cka(&x.scaled(7.5), &y.scaled(0.01));
        assert!((base - scaled).abs() < 1e-4);
    }

    #[test]
    fn cka_invariant_to_column_permutation() {
        let mut rng = Rng::new(4);
        let x = Matrix::randn(25, 4, 1.0, &mut rng);
        let y = Matrix::randn(25, 4, 1.0, &mut rng);
        // Reverse Y's columns.
        let y_perm = Matrix::from_fn(25, 4, |r, c| y[(r, 3 - c)]);
        assert!((linear_cka(&x, &y) - linear_cka(&x, &y_perm)).abs() < 1e-4);
    }

    #[test]
    fn independent_representations_score_low() {
        let mut rng = Rng::new(5);
        let x = Matrix::randn(200, 4, 1.0, &mut rng);
        let y = Matrix::randn(200, 4, 1.0, &mut rng);
        assert!(linear_cka(&x, &y) < 0.2);
    }

    #[test]
    fn related_beats_unrelated() {
        let mut rng = Rng::new(6);
        let x = Matrix::randn(60, 8, 1.0, &mut rng);
        // y = noisy copy of x.
        let noise = Matrix::randn(60, 8, 0.3, &mut rng);
        let y = &x + &noise;
        let unrelated = Matrix::randn(60, 8, 1.0, &mut rng);
        assert!(linear_cka(&x, &y) > linear_cka(&x, &unrelated) + 0.3);
    }

    #[test]
    fn zero_representation_scores_zero() {
        let mut rng = Rng::new(7);
        let x = Matrix::randn(10, 3, 1.0, &mut rng);
        let z = Matrix::zeros(10, 3);
        assert_eq!(linear_cka(&x, &z), 0.0);
    }

    #[test]
    fn stack_flattened_layout() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let stacked = stack_flattened(&[a, b]);
        assert_eq!(stacked.shape(), (2, 4));
        assert_eq!(stacked.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stacked.row(1), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn cka_matrix_upper_triangle_only() {
        let mut rng = Rng::new(8);
        let reps: Vec<Matrix> = (0..3)
            .map(|_| Matrix::randn(20, 5, 1.0, &mut rng))
            .collect();
        let m = CkaMatrix::compute(&reps, &reps);
        assert_eq!(m.depth(), 3);
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(m.get(i, j), 0.0, "lower triangle ({i},{j}) must be zero");
            }
        }
        assert!(m.get(0, 1) > 0.0);
    }

    #[test]
    fn hsic_zero_for_single_example() {
        let x = Matrix::zeros(1, 3);
        assert_eq!(linear_hsic(&x, &x), 0.0);
    }

    proptest! {
        #[test]
        fn prop_cka_in_unit_interval(seed in 0u64..500) {
            let mut rng = Rng::new(seed);
            let x = Matrix::randn(15, 4, 1.0, &mut rng);
            let y = Matrix::randn(15, 6, 1.0, &mut rng);
            let v = linear_cka(&x, &y);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
