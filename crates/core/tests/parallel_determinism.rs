//! Property tests pinning the evaluation engine's determinism guarantee:
//! for any thread count, sample set and threshold, parallel execution is
//! bit-identical to sequential execution.

use pivot_cka::CkaMatrix;
use pivot_core::{select_optimal_path_with, CascadeCache, MultiEffortVit, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{VisionTransformer, VitConfig};
use proptest::prelude::*;

fn cascade(seed: u64) -> MultiEffortVit {
    let cfg = VitConfig::test_small();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(seed));
    low.set_active_attentions(&[0]);
    let high = VisionTransformer::new(&cfg, &mut Rng::new(seed ^ 0xABCD));
    MultiEffortVit::new(low, high, 0.5)
}

fn samples(n: usize, seed: u64) -> Vec<Sample> {
    Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.15, 0.5, 0.85],
        n.div_ceil(3),
        seed,
    )
}

fn random_cka(depth: usize, seed: u64) -> CkaMatrix {
    let mut rng = Rng::new(seed);
    let mut m = Matrix::zeros(depth, depth);
    for i in 0..depth {
        for j in (i + 1)..depth {
            m[(i, j)] = rng.uniform(0.0, 1.0);
        }
    }
    CkaMatrix::from_matrix(m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn evaluate_is_identical_for_any_thread_count(
        seed in 0u64..1_000,
        n in 4usize..20,
        threads in 2usize..9,
        th_tenths in 0usize..=10,
    ) {
        let threshold = th_tenths as f32 / 10.0;
        let mut engine = cascade(seed);
        engine.set_threshold(threshold);
        let set = samples(n, seed.wrapping_add(17));
        let seq = engine.evaluate_with(&set, Parallelism::Off);
        let par = engine.evaluate_with(&set, Parallelism::Fixed(threads));
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn cache_and_f_low_are_identical_for_any_thread_count(
        seed in 0u64..1_000,
        n in 4usize..20,
        threads in 2usize..9,
        th_tenths in 0usize..=10,
    ) {
        let threshold = th_tenths as f32 / 10.0;
        let engine = cascade(seed.wrapping_add(31));
        let set = samples(n, seed.wrapping_add(53));
        let seq = CascadeCache::build(engine.low(), &set, Parallelism::Off);
        let par = CascadeCache::build(engine.low(), &set, Parallelism::Fixed(threads));
        prop_assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            prop_assert_eq!(seq.entropies()[i].to_bits(), par.entropies()[i].to_bits());
            prop_assert_eq!(seq.low_prediction(i), par.low_prediction(i));
            prop_assert!(seq.low_logits()[i].approx_eq(&par.low_logits()[i], 0.0));
        }
        prop_assert_eq!(seq.f_low_at(threshold), par.f_low_at(threshold));
        prop_assert_eq!(seq.f_low_at(threshold), engine.f_low_at(&set, threshold));
        let stats_seq =
            seq.evaluate(engine.high(), &set, threshold, Parallelism::Off);
        let stats_par =
            par.evaluate(engine.high(), &set, threshold, Parallelism::Fixed(threads));
        prop_assert_eq!(stats_seq, stats_par);
    }

    #[test]
    fn path_enumeration_is_identical_for_any_thread_count(
        depth in 4usize..10,
        threads in 2usize..9,
        seed in 0u64..1_000,
    ) {
        let effort = depth / 2;
        let cka = random_cka(depth, seed);
        let seq = select_optimal_path_with(effort, &cka, Parallelism::Off);
        let par = select_optimal_path_with(effort, &cka, Parallelism::Fixed(threads));
        prop_assert_eq!(seq.ranked.len(), par.ranked.len());
        for (a, b) in seq.ranked.iter().zip(&par.ranked) {
            prop_assert_eq!(a.path.clone(), b.path.clone());
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        prop_assert_eq!(seq.optimal.path.clone(), par.optimal.path.clone());
    }
}
