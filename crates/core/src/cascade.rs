//! The entropy-gated multi-effort inference engine (paper Fig. 2a).

use crate::batched::batched_logits_with;
use crate::cache::CascadeCache;
use crate::parallel::{par_map, Parallelism};
use pivot_data::Sample;
use pivot_nn::normalized_entropy;
use pivot_tensor::Matrix;
use pivot_vit::{PreparedModel, PreparedStore, StoreStats, VisionTransformer};

/// The entropy gate of Fig. 2a: `true` when a sample with normalized
/// entropy `entropy` stays at the low effort under threshold `threshold`.
///
/// The gate is the paper's strict `E(x) < Th` everywhere except the top
/// boundary: at `Th = 1.0` it is inclusive, so `F_L = 1` holds even for
/// exactly uniform logits whose normalized entropy is 1.0 (or a float ulp
/// above). A **non-finite** entropy — the fault signature of corrupted
/// low-effort logits (see [`pivot_nn::normalized_entropy`]) — never stays
/// low, even at `Th = 1.0`: a faulted low effort must escalate so the high
/// effort gets a chance to serve the sample. Every gating site —
/// [`MultiEffortVit::infer`], [`MultiEffortVit::f_low_at`],
/// [`CascadeCache`](crate::CascadeCache) and Phase 2's threshold iteration
/// — uses this one function, so the boundary semantics cannot drift apart.
pub fn stays_low(entropy: f32, threshold: f32) -> bool {
    entropy.is_finite() && (entropy < threshold || threshold >= 1.0)
}

/// Outcome of one cascaded inference.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeOutcome {
    /// Predicted class.
    pub prediction: usize,
    /// Normalized entropy of the low-effort logits (paper Eq. 3).
    pub entropy_low: f32,
    /// Whether the high effort had to re-infer this input.
    pub used_high: bool,
    /// Whether the high effort produced non-finite logits and the cascade
    /// fell back to the already-computed low-effort prediction (graceful
    /// degradation; see DESIGN.md §5).
    pub degraded: bool,
    /// Logits of whichever effort produced the prediction.
    pub logits: Matrix,
}

/// Aggregate statistics of a cascaded evaluation, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CascadeStats {
    /// Inputs classified by the low effort (`E(x) < Th`).
    pub n_low: usize,
    /// Inputs escalated to the high effort.
    pub n_high: usize,
    /// Correct low-effort classifications (`C_L`).
    pub c_low: usize,
    /// Incorrect low-effort classifications (`I_L`).
    pub i_low: usize,
    /// Correct high-effort classifications (`C_H`).
    pub c_high: usize,
    /// Incorrect high-effort classifications (`I_H`).
    pub i_high: usize,
}

impl CascadeStats {
    /// Total inputs evaluated.
    pub fn total(&self) -> usize {
        self.n_low + self.n_high
    }

    /// Fraction classified by the low effort (`F_L`). 0.0 when nothing
    /// was evaluated.
    pub fn f_low(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.n_low as f64 / self.total() as f64
        }
    }

    /// Fraction escalated to the high effort (`F_H`). 0.0 when nothing
    /// was evaluated (an empty evaluation escalated nothing — it is not
    /// "all high").
    pub fn f_high(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            1.0 - self.f_low()
        }
    }

    /// Overall accuracy, computed from `C_L` and `C_H` as in Fig. 2a.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.c_low + self.c_high) as f64 / self.total() as f64
        }
    }

    /// Accumulates one outcome in sample order (used by the evaluation
    /// engine's deterministic reduction).
    fn record(&mut self, used_high: bool, correct: bool) {
        if used_high {
            self.n_high += 1;
            if correct {
                self.c_high += 1;
            } else {
                self.i_high += 1;
            }
        } else {
            self.n_low += 1;
            if correct {
                self.c_low += 1;
            } else {
                self.i_low += 1;
            }
        }
    }
}

/// A two-effort ViT: all inputs run the low effort; those with logit
/// entropy above the threshold re-run the high effort.
///
/// Batch evaluations (`evaluate`, `evaluate_with_oracle`, `f_low_at`) run
/// on a deterministic worker pool sized by the cascade's [`Parallelism`]
/// (default [`Parallelism::Auto`]); results are bit-identical to
/// sequential execution for every setting.
///
/// # Example
///
/// ```
/// use pivot_core::MultiEffortVit;
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let cfg = VitConfig::test_small();
/// let mut rng = Rng::new(0);
/// let mut low = VisionTransformer::new(&cfg, &mut rng);
/// low.set_active_attentions(&[0]);
/// let high = low.clone();
/// let cascade = MultiEffortVit::new(low, high, 0.5);
/// let out = cascade.infer(&Matrix::zeros(16, 16));
/// assert!(out.prediction < 4);
/// ```
#[derive(Debug, Clone)]
pub struct MultiEffortVit {
    low: VisionTransformer,
    high: VisionTransformer,
    low_prepared: PreparedModel,
    high_prepared: PreparedModel,
    threshold: f32,
    parallelism: Parallelism,
    share_stats: StoreStats,
}

impl MultiEffortVit {
    /// Creates a cascade from a low- and a high-effort model and an entropy
    /// threshold `Th`.
    ///
    /// Both efforts are [prepared](VisionTransformer::prepare) here, once,
    /// through a shared content-addressed [`PreparedStore`]: every layer
    /// whose weights and quantization parameters are identical between the
    /// two efforts (all of them, when both derive from one backbone via
    /// attention skipping) is materialized once and Arc-shared between the
    /// frozen views (see [`Self::unique_weight_bytes`]). All inference —
    /// [`Self::infer`] and every batch evaluation — runs against those
    /// views. `MultiEffortVit` exposes no weight-mutating API, so the
    /// shared views cannot go stale, and the deduplicated cascade is
    /// bit-identical to preparing each effort independently.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `[0, 1]` or the models disagree on
    /// class count.
    pub fn new(low: VisionTransformer, high: VisionTransformer, threshold: f32) -> Self {
        Self::with_kernel(low, high, threshold, false)
    }

    /// [`Self::new`] on the packed int8 inference path: both efforts are
    /// [prepared as int8](VisionTransformer::prepare_int8), so every batch
    /// evaluation and single-image inference runs the integer GEMM at a
    /// quarter of the weight memory traffic. The fake-quant [`Self::new`]
    /// cascade stays the accuracy reference; predictions track it within
    /// the documented int8 tolerance (argmax-identical away from
    /// quantization-noise ties — asserted over the full synthetic eval set
    /// by the `int8_speedup` experiment).
    pub fn new_int8(low: VisionTransformer, high: VisionTransformer, threshold: f32) -> Self {
        Self::with_kernel(low, high, threshold, true)
    }

    fn with_kernel(
        low: VisionTransformer,
        high: VisionTransformer,
        threshold: f32,
        int8: bool,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        assert_eq!(
            low.config().num_classes,
            high.config().num_classes,
            "efforts must share the class space"
        );
        let store = PreparedStore::new();
        let (low_prepared, high_prepared) = if int8 {
            (low.prepare_int8_in(&store), high.prepare_int8_in(&store))
        } else {
            (low.prepare_in(&store), high.prepare_in(&store))
        };
        let share_stats = store.stats();
        Self {
            low,
            high,
            low_prepared,
            high_prepared,
            threshold,
            parallelism: Parallelism::Auto,
            share_stats,
        }
    }

    /// Hit/miss and byte accounting of the content-addressed weight store
    /// both efforts were prepared through. Same-backbone efforts share
    /// every layer: the low effort misses, the high effort hits.
    pub fn share_stats(&self) -> StoreStats {
        self.share_stats
    }

    /// Total prepared weight bytes of both efforts as if each held an
    /// independent copy (the pre-sharing footprint).
    pub fn weight_bytes(&self) -> usize {
        self.low_prepared.weight_bytes() + self.high_prepared.weight_bytes()
    }

    /// Prepared weight bytes actually resident, counting every layer
    /// Arc-shared between the two efforts once.
    pub fn unique_weight_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.low_prepared.unique_weight_bytes_into(&mut seen)
            + self.high_prepared.unique_weight_bytes_into(&mut seen)
    }

    /// Whether the cascade runs on the packed int8 kernel (built by
    /// [`Self::new_int8`]).
    pub fn is_int8(&self) -> bool {
        self.low_prepared.is_int8() && self.high_prepared.is_int8()
    }

    /// The entropy threshold `Th`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Updates the entropy threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `[0, 1]`.
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        self.threshold = threshold;
    }

    /// The parallelism used by batch evaluations.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the parallelism used by batch evaluations.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Builder-style [`Self::set_parallelism`].
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The low-effort model.
    pub fn low(&self) -> &VisionTransformer {
        &self.low
    }

    /// The high-effort model.
    pub fn high(&self) -> &VisionTransformer {
        &self.high
    }

    /// The frozen inference view of the low effort, prepared at
    /// construction.
    pub fn low_prepared(&self) -> &PreparedModel {
        &self.low_prepared
    }

    /// The frozen inference view of the high effort, prepared at
    /// construction.
    pub fn high_prepared(&self) -> &PreparedModel {
        &self.high_prepared
    }

    /// Runs the input-difficulty-aware inference of Fig. 2a on one image.
    ///
    /// The cascade degrades gracefully: if the high-effort re-inference
    /// yields non-finite logits (a faulted model), the already-computed
    /// low-effort prediction is served instead and the outcome is marked
    /// [`degraded`](CascadeOutcome::degraded). Healthy models never take
    /// this path, so results are bit-identical to the pre-degradation
    /// engine.
    pub fn infer(&self, image: &Matrix) -> CascadeOutcome {
        let logits_low = self.low_prepared.infer(image);
        let entropy_low = normalized_entropy(&logits_low);
        if stays_low(entropy_low, self.threshold) {
            CascadeOutcome {
                prediction: logits_low.row_argmax(0),
                entropy_low,
                used_high: false,
                degraded: false,
                logits: logits_low,
            }
        } else {
            let logits_high = self.high_prepared.infer(image);
            if logits_high.is_all_finite() {
                CascadeOutcome {
                    prediction: logits_high.row_argmax(0),
                    entropy_low,
                    used_high: true,
                    degraded: false,
                    logits: logits_high,
                }
            } else {
                CascadeOutcome {
                    prediction: logits_low.row_argmax(0),
                    entropy_low,
                    used_high: true,
                    degraded: true,
                    logits: logits_low,
                }
            }
        }
    }

    /// Builds the entropy cache for `samples`: low-effort logits,
    /// normalized entropies and predictions, computed once on the worker
    /// pool. Threshold sweeps and repeated `F_L` queries should go
    /// through the cache instead of re-running inference per threshold.
    pub fn cache(&self, samples: &[Sample]) -> CascadeCache {
        CascadeCache::build_prepared(&self.low_prepared, samples, self.parallelism)
    }

    /// Evaluates the cascade on labeled samples, producing the paper's
    /// `C_L/I_L/C_H/I_H/F_L/F_H` statistics, using the cascade's
    /// configured parallelism.
    pub fn evaluate(&self, samples: &[Sample]) -> CascadeStats {
        self.evaluate_with(samples, self.parallelism)
    }

    /// [`Self::evaluate`] with an explicit parallelism.
    ///
    /// Runs the batched pipeline: one chunked
    /// [`forward_batch`](VisionTransformer::forward_batch) sweep of the
    /// low effort over all samples, then one batched high-effort sweep
    /// over the escalated subset. Statistics are reduced in sample order,
    /// and `forward_batch` matches per-sample inference bitwise, so the
    /// result is bit-identical to [`Self::evaluate_per_sample_with`] for
    /// every `par` and batch split.
    pub fn evaluate_with(&self, samples: &[Sample], par: Parallelism) -> CascadeStats {
        CascadeCache::build_prepared(&self.low_prepared, samples, par).evaluate_prepared(
            &self.high_prepared,
            samples,
            self.threshold,
            par,
        )
    }

    /// [`Self::evaluate`] with fault accounting: returns the statistics
    /// together with a [`DegradationReport`](crate::DegradationReport)
    /// describing every sample that produced non-finite values and how it
    /// was served. For healthy models the report is empty and the
    /// statistics are bit-identical to [`Self::evaluate`].
    pub fn evaluate_guarded(
        &self,
        samples: &[Sample],
    ) -> (CascadeStats, crate::cache::DegradationReport) {
        CascadeCache::build_prepared(&self.low_prepared, samples, self.parallelism)
            .evaluate_guarded_prepared(
                &self.high_prepared,
                samples,
                self.threshold,
                self.parallelism,
            )
    }

    /// The pre-batching reference path: one [`Self::infer`] per sample on
    /// the worker pool, no wide GEMMs and no entropy cache.
    ///
    /// Kept as the differential-testing oracle for
    /// [`Self::evaluate_with`] and as the baseline the
    /// `parallel_speedup` experiment measures batching against.
    pub fn evaluate_per_sample_with(&self, samples: &[Sample], par: Parallelism) -> CascadeStats {
        let outcomes = par_map(samples, par, |_, sample| {
            let outcome = self.infer(&sample.image);
            (outcome.used_high, outcome.prediction == sample.label)
        });
        let mut stats = CascadeStats::default();
        for (used_high, correct) in outcomes {
            stats.record(used_high, correct);
        }
        stats
    }

    /// Ablation: routes by **ground-truth difficulty** instead of entropy —
    /// samples with `difficulty < difficulty_threshold` take the low
    /// effort. This is the oracle upper bound on input-aware gating; the
    /// synthetic dataset's difficulty labels make it measurable (ImageNet
    /// has no such labels, so the paper cannot report this).
    pub fn evaluate_with_oracle(
        &self,
        samples: &[Sample],
        difficulty_threshold: f32,
    ) -> CascadeStats {
        self.evaluate_with_oracle_par(samples, difficulty_threshold, self.parallelism)
    }

    /// [`Self::evaluate_with_oracle`] with an explicit parallelism. The
    /// difficulty partition is known up front, so each side runs as one
    /// batched sweep; statistics are still reduced in sample order.
    pub fn evaluate_with_oracle_par(
        &self,
        samples: &[Sample],
        difficulty_threshold: f32,
        par: Parallelism,
    ) -> CascadeStats {
        let mut easy_samples = Vec::new();
        let mut hard_samples = Vec::new();
        let mut is_easy = Vec::with_capacity(samples.len());
        for sample in samples {
            let easy = sample.difficulty < difficulty_threshold;
            is_easy.push(easy);
            if easy {
                easy_samples.push(sample);
            } else {
                hard_samples.push(sample);
            }
        }
        let easy_logits = batched_logits_with(&self.low_prepared, &easy_samples, |s| &s.image, par);
        let hard_logits =
            batched_logits_with(&self.high_prepared, &hard_samples, |s| &s.image, par);
        let mut stats = CascadeStats::default();
        let (mut next_easy, mut next_hard) = (0, 0);
        for (i, sample) in samples.iter().enumerate() {
            let (logits, used_high) = if is_easy[i] {
                next_easy += 1;
                (&easy_logits[next_easy - 1], false)
            } else {
                next_hard += 1;
                (&hard_logits[next_hard - 1], true)
            };
            stats.record(used_high, logits.row_argmax(0) == sample.label);
        }
        stats
    }

    /// The fraction of `samples` the low effort would classify at a given
    /// threshold, without running the high effort (used by Phase 2's
    /// threshold iteration).
    ///
    /// One call runs low-effort inference once (on the worker pool). To
    /// probe many thresholds, build [`Self::cache`] once and query
    /// [`CascadeCache::f_low_at`] per threshold in O(N).
    pub fn f_low_at(&self, samples: &[Sample], threshold: f32) -> f64 {
        self.cache(samples).f_low_at(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    fn models(seed: u64) -> (VisionTransformer, VisionTransformer) {
        let cfg = VitConfig::test_small();
        let mut rng = Rng::new(seed);
        let mut low = VisionTransformer::new(&cfg, &mut rng);
        low.set_active_attentions(&[0]);
        let high = VisionTransformer::new(&cfg, &mut Rng::new(seed + 1));
        (low, high)
    }

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        pivot_data::Dataset::generate_difficulty_stripes(
            &pivot_data::DatasetConfig::small(),
            &[0.2, 0.8],
            n / 2,
            seed,
        )
    }

    /// Zeroes the classifier head so every input yields exactly uniform
    /// logits — normalized entropy 1.0, the hardest possible sample.
    fn zero_head(model: &mut VisionTransformer) {
        let mut params = model.params_mut();
        // Patch embed, cls token, pos embed, encoder blocks, final norm,
        // then head weight + bias last.
        let n = params.len();
        for p in params.iter_mut().skip(n - 2) {
            p.value = Matrix::zeros(p.value.rows(), p.value.cols());
        }
    }

    #[test]
    fn threshold_zero_always_escalates() {
        let (low, high) = models(0);
        let cascade = MultiEffortVit::new(low, high, 0.0);
        let stats = cascade.evaluate(&samples(20, 1));
        assert_eq!(stats.n_low, 0);
        assert_eq!(stats.n_high, 20);
        assert_eq!(stats.f_high(), 1.0);
    }

    #[test]
    fn threshold_one_never_escalates() {
        let (low, high) = models(2);
        let cascade = MultiEffortVit::new(low, high, 1.0);
        let stats = cascade.evaluate(&samples(20, 3));
        assert_eq!(stats.n_high, 0);
        assert_eq!(stats.f_low(), 1.0);
    }

    #[test]
    fn uniform_logits_stay_low_at_threshold_one() {
        // Regression: a sample with exactly uniform logits has normalized
        // entropy 1.0. With a strict `<` gate it escaped even at Th = 1.0,
        // contradicting the paper's "F_L = 1 at Th = 1" semantics; the
        // gate is inclusive at the top boundary.
        let (mut low, high) = models(20);
        zero_head(&mut low);
        let set = samples(8, 21);
        let entropy = normalized_entropy(&low.infer(&set[0].image));
        assert!(
            (entropy - 1.0).abs() < 1e-6,
            "zeroed head must give uniform logits, entropy {entropy}"
        );

        let cascade = MultiEffortVit::new(low, high, 1.0);
        let out = cascade.infer(&set[0].image);
        assert!(!out.used_high, "uniform logits must stay low at Th = 1.0");
        let stats = cascade.evaluate(&set);
        assert_eq!(stats.n_high, 0);
        assert_eq!(stats.f_low(), 1.0);
        assert_eq!(cascade.f_low_at(&set, 1.0), 1.0);

        // Just below the boundary the same samples all escalate.
        let mut strict = cascade.clone();
        strict.set_threshold(0.999);
        assert!(strict.infer(&set[0].image).used_high);
    }

    #[test]
    fn gate_is_strict_below_the_boundary() {
        assert!(stays_low(0.39, 0.4));
        assert!(!stays_low(0.4, 0.4));
        assert!(!stays_low(0.41, 0.4));
        assert!(!stays_low(0.0, 0.0));
        assert!(stays_low(1.0, 1.0));
        assert!(stays_low(1.0 + f32::EPSILON, 1.0));
    }

    #[test]
    fn non_finite_entropy_always_escalates() {
        // A NaN entropy is the fault signature of corrupted low-effort
        // logits; the gate must escalate it at every threshold, including
        // the otherwise-inclusive Th = 1.0.
        for th in [0.0, 0.5, 1.0] {
            assert!(!stays_low(f32::NAN, th), "NaN stayed low at Th={th}");
            assert!(!stays_low(f32::INFINITY, th), "inf stayed low at Th={th}");
        }
    }

    #[test]
    fn faulted_high_effort_degrades_to_the_low_prediction() {
        let (low, high) = models(50);
        let mut faulty_high = high.clone();
        crate::faults::FaultInjector::new(51).inject_params(
            &mut faulty_high,
            crate::faults::FaultKind::StuckNan,
            10_000,
        );
        // Th = 0 escalates everything, so every sample exercises the
        // faulted high effort.
        let healthy = MultiEffortVit::new(low.clone(), high, 0.0);
        let degraded = MultiEffortVit::new(low.clone(), faulty_high, 0.0);
        let set = samples(10, 52);
        for s in &set {
            let out = degraded.infer(&s.image);
            assert!(out.used_high, "Th=0 must escalate");
            assert!(out.degraded, "NaN high logits must mark degradation");
            // The served prediction is the low effort's, not garbage.
            assert_eq!(out.prediction, low.infer(&s.image).row_argmax(0));
            assert!(out.logits.is_all_finite());
            // A healthy cascade on the same input does not degrade.
            assert!(!healthy.infer(&s.image).degraded);
        }
    }

    #[test]
    fn empty_evaluation_has_no_high_fraction() {
        // Regression: `f_high()` reported 1.0 on an empty evaluation
        // because `f_low()` returns 0.0 when `total() == 0`.
        let stats = CascadeStats::default();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.f_low(), 0.0);
        assert_eq!(stats.f_high(), 0.0);
        assert_eq!(stats.accuracy(), 0.0);
    }

    #[test]
    fn f_low_is_monotone_in_threshold() {
        let (low, high) = models(4);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        let set = samples(30, 5);
        let mut prev = 0.0;
        for th in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let f = cascade.f_low_at(&set, th);
            assert!(f >= prev, "F_L not monotone at Th={th}");
            prev = f;
        }
        assert_eq!(cascade.f_low_at(&set, 1.0), 1.0);
    }

    #[test]
    fn stats_are_consistent() {
        let (low, high) = models(6);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        let set = samples(40, 7);
        let stats = cascade.evaluate(&set);
        assert_eq!(stats.total(), 40);
        assert_eq!(stats.n_low, stats.c_low + stats.i_low);
        assert_eq!(stats.n_high, stats.c_high + stats.i_high);
        assert!((stats.f_low() + stats.f_high() - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&stats.accuracy()));
    }

    #[test]
    fn batched_evaluate_matches_per_sample_reference() {
        // The batched pipeline (wide GEMMs + entropy cache) must agree
        // with the one-infer-per-sample reference exactly, for every
        // threshold and parallelism.
        let (low, high) = models(40);
        let set = samples(26, 41);
        for th in [0.0, 0.5, 1.0] {
            let cascade = MultiEffortVit::new(low.clone(), high.clone(), th);
            for par in [Parallelism::Off, Parallelism::Fixed(3)] {
                assert_eq!(
                    cascade.evaluate_with(&set, par),
                    cascade.evaluate_per_sample_with(&set, par),
                    "Th={th} under {par:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_evaluate_is_bit_identical() {
        let (low, high) = models(30);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        let set = samples(24, 31);
        let seq = cascade.evaluate_with(&set, Parallelism::Off);
        for par in [
            Parallelism::Auto,
            Parallelism::Fixed(2),
            Parallelism::Fixed(9),
        ] {
            assert_eq!(seq, cascade.evaluate_with(&set, par), "under {par:?}");
        }
        let oracle_seq = cascade.evaluate_with_oracle_par(&set, 0.5, Parallelism::Off);
        for par in [Parallelism::Auto, Parallelism::Fixed(3)] {
            assert_eq!(
                oracle_seq,
                cascade.evaluate_with_oracle_par(&set, 0.5, par),
                "oracle under {par:?}"
            );
        }
    }

    #[test]
    fn outcome_reports_matching_logits() {
        let (low, high) = models(8);
        let cascade = MultiEffortVit::new(low.clone(), high.clone(), 0.5);
        let set = samples(10, 9);
        for s in &set {
            let out = cascade.infer(&s.image);
            let expected = if out.used_high {
                high.infer(&s.image)
            } else {
                low.infer(&s.image)
            };
            assert!(out.logits.approx_eq(&expected, 1e-6));
            assert_eq!(out.prediction, expected.row_argmax(0));
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn invalid_threshold_panics() {
        let (low, high) = models(10);
        let _ = MultiEffortVit::new(low, high, 1.5);
    }

    #[test]
    fn same_backbone_efforts_share_one_weight_copy() {
        let cfg = VitConfig::test_small();
        let base = VisionTransformer::new(&cfg, &mut Rng::new(60));
        let mut low = base.clone();
        low.set_active_attentions(&[0]);
        let mut high = base.clone();
        high.set_active_attentions(&[0, 1, 2, 3]);
        let cascade = MultiEffortVit::new(low.clone(), high.clone(), 0.5);

        // Attention skipping only flags modules inactive — the weights are
        // identical — so the high effort hits the store on every layer.
        let single = cascade.low_prepared().weight_bytes();
        assert_eq!(cascade.weight_bytes(), 2 * single);
        assert_eq!(cascade.unique_weight_bytes(), single);
        let stats = cascade.share_stats();
        assert_eq!(stats.hits, stats.misses);
        assert_eq!(stats.unique_bytes, single);

        // Sharing must not change inference: compare against efforts
        // prepared independently of any store.
        let set = samples(10, 61);
        let (ind_low, ind_high) = (low.prepare(), high.prepare());
        for s in &set {
            let shared_out = cascade.infer(&s.image);
            let e_low = normalized_entropy(&ind_low.infer(&s.image));
            assert_eq!(shared_out.entropy_low.to_bits(), e_low.to_bits());
            let expected = if shared_out.used_high {
                ind_high.infer(&s.image)
            } else {
                ind_low.infer(&s.image)
            };
            for (a, b) in shared_out.logits.as_slice().iter().zip(expected.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn distinct_backbones_share_nothing() {
        // `models()` draws low and high from different seeds: no layer can
        // dedupe, and the accounting must say so.
        let (low, high) = models(62);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        assert_eq!(cascade.share_stats().hits, 0);
        assert_eq!(cascade.unique_weight_bytes(), cascade.weight_bytes());
    }

    #[test]
    fn int8_cascade_tracks_fake_quant_reference() {
        let (low, high) = models(12);
        let reference = MultiEffortVit::new(low.clone(), high.clone(), 0.6);
        let int8 = MultiEffortVit::new_int8(low, high, 0.6);
        assert!(int8.is_int8());
        assert!(!reference.is_int8());
        let set = samples(20, 13);
        let mut agree = 0;
        for s in &set {
            let r = reference.infer(&s.image);
            let q = int8.infer(&s.image);
            assert!(q.entropy_low.is_finite());
            assert!(
                (q.entropy_low - r.entropy_low).abs() < 0.05,
                "int8 entropy {} vs fake-quant {}",
                q.entropy_low,
                r.entropy_low
            );
            if q.prediction == r.prediction && q.used_high == r.used_high {
                agree += 1;
            }
        }
        // Quantization noise can flip the routing decision or the argmax
        // only for inputs whose entropy sits inside the noise band around
        // the threshold (or whose top-2 logit margin is sub-noise); the
        // bulk of the evaluation set must agree exactly.
        assert!(agree * 10 >= set.len() * 8, "{agree}/{} agree", set.len());
        let rs = reference.evaluate(&set);
        let qs = int8.evaluate(&set);
        assert_eq!(rs.n_low + rs.n_high, qs.n_low + qs.n_high);
    }
}
