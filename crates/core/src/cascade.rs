//! The entropy-gated multi-effort inference engine (paper Fig. 2a).

use pivot_data::Sample;
use pivot_nn::normalized_entropy;
use pivot_tensor::Matrix;
use pivot_vit::VisionTransformer;

/// Outcome of one cascaded inference.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeOutcome {
    /// Predicted class.
    pub prediction: usize,
    /// Normalized entropy of the low-effort logits (paper Eq. 3).
    pub entropy_low: f32,
    /// Whether the high effort had to re-infer this input.
    pub used_high: bool,
    /// Logits of whichever effort produced the prediction.
    pub logits: Matrix,
}

/// Aggregate statistics of a cascaded evaluation, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CascadeStats {
    /// Inputs classified by the low effort (`E(x) < Th`).
    pub n_low: usize,
    /// Inputs escalated to the high effort.
    pub n_high: usize,
    /// Correct low-effort classifications (`C_L`).
    pub c_low: usize,
    /// Incorrect low-effort classifications (`I_L`).
    pub i_low: usize,
    /// Correct high-effort classifications (`C_H`).
    pub c_high: usize,
    /// Incorrect high-effort classifications (`I_H`).
    pub i_high: usize,
}

impl CascadeStats {
    /// Total inputs evaluated.
    pub fn total(&self) -> usize {
        self.n_low + self.n_high
    }

    /// Fraction classified by the low effort (`F_L`).
    pub fn f_low(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.n_low as f64 / self.total() as f64
        }
    }

    /// Fraction escalated to the high effort (`F_H`).
    pub fn f_high(&self) -> f64 {
        1.0 - self.f_low()
    }

    /// Overall accuracy, computed from `C_L` and `C_H` as in Fig. 2a.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.c_low + self.c_high) as f64 / self.total() as f64
        }
    }
}

/// A two-effort ViT: all inputs run the low effort; those with logit
/// entropy above the threshold re-run the high effort.
///
/// # Example
///
/// ```
/// use pivot_core::MultiEffortVit;
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let cfg = VitConfig::test_small();
/// let mut rng = Rng::new(0);
/// let mut low = VisionTransformer::new(&cfg, &mut rng);
/// low.set_active_attentions(&[0]);
/// let high = low.clone();
/// let cascade = MultiEffortVit::new(low, high, 0.5);
/// let out = cascade.infer(&Matrix::zeros(16, 16));
/// assert!(out.prediction < 4);
/// ```
#[derive(Debug, Clone)]
pub struct MultiEffortVit {
    low: VisionTransformer,
    high: VisionTransformer,
    threshold: f32,
}

impl MultiEffortVit {
    /// Creates a cascade from a low- and a high-effort model and an entropy
    /// threshold `Th`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `[0, 1]` or the models disagree on
    /// class count.
    pub fn new(low: VisionTransformer, high: VisionTransformer, threshold: f32) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
        assert_eq!(
            low.config().num_classes,
            high.config().num_classes,
            "efforts must share the class space"
        );
        Self { low, high, threshold }
    }

    /// The entropy threshold `Th`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Updates the entropy threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `[0, 1]`.
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
        self.threshold = threshold;
    }

    /// The low-effort model.
    pub fn low(&self) -> &VisionTransformer {
        &self.low
    }

    /// The high-effort model.
    pub fn high(&self) -> &VisionTransformer {
        &self.high
    }

    /// Runs the input-difficulty-aware inference of Fig. 2a on one image.
    pub fn infer(&self, image: &Matrix) -> CascadeOutcome {
        let logits_low = self.low.infer(image);
        let entropy_low = normalized_entropy(&logits_low);
        if entropy_low < self.threshold {
            CascadeOutcome {
                prediction: logits_low.row_argmax(0),
                entropy_low,
                used_high: false,
                logits: logits_low,
            }
        } else {
            let logits_high = self.high.infer(image);
            CascadeOutcome {
                prediction: logits_high.row_argmax(0),
                entropy_low,
                used_high: true,
                logits: logits_high,
            }
        }
    }

    /// Evaluates the cascade on labeled samples, producing the paper's
    /// `C_L/I_L/C_H/I_H/F_L/F_H` statistics.
    pub fn evaluate(&self, samples: &[Sample]) -> CascadeStats {
        let mut stats = CascadeStats::default();
        for sample in samples {
            let outcome = self.infer(&sample.image);
            let correct = outcome.prediction == sample.label;
            if outcome.used_high {
                stats.n_high += 1;
                if correct {
                    stats.c_high += 1;
                } else {
                    stats.i_high += 1;
                }
            } else {
                stats.n_low += 1;
                if correct {
                    stats.c_low += 1;
                } else {
                    stats.i_low += 1;
                }
            }
        }
        stats
    }

    /// Ablation: routes by **ground-truth difficulty** instead of entropy —
    /// samples with `difficulty < difficulty_threshold` take the low
    /// effort. This is the oracle upper bound on input-aware gating; the
    /// synthetic dataset's difficulty labels make it measurable (ImageNet
    /// has no such labels, so the paper cannot report this).
    pub fn evaluate_with_oracle(
        &self,
        samples: &[Sample],
        difficulty_threshold: f32,
    ) -> CascadeStats {
        let mut stats = CascadeStats::default();
        for sample in samples {
            let easy = sample.difficulty < difficulty_threshold;
            let model = if easy { &self.low } else { &self.high };
            let correct = model.infer(&sample.image).row_argmax(0) == sample.label;
            if easy {
                stats.n_low += 1;
                if correct {
                    stats.c_low += 1;
                } else {
                    stats.i_low += 1;
                }
            } else {
                stats.n_high += 1;
                if correct {
                    stats.c_high += 1;
                } else {
                    stats.i_high += 1;
                }
            }
        }
        stats
    }

    /// The fraction of `samples` the low effort would classify at a given
    /// threshold, without running the high effort (used by Phase 2's
    /// threshold iteration).
    pub fn f_low_at(&self, samples: &[Sample], threshold: f32) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let below = samples
            .iter()
            .filter(|s| normalized_entropy(&self.low.infer(&s.image)) < threshold)
            .count();
        below as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    fn models(seed: u64) -> (VisionTransformer, VisionTransformer) {
        let cfg = VitConfig::test_small();
        let mut rng = Rng::new(seed);
        let mut low = VisionTransformer::new(&cfg, &mut rng);
        low.set_active_attentions(&[0]);
        let high = VisionTransformer::new(&cfg, &mut Rng::new(seed + 1));
        (low, high)
    }

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        pivot_data::Dataset::generate_difficulty_stripes(
            &pivot_data::DatasetConfig::small(),
            &[0.2, 0.8],
            n / 2,
            seed,
        )
    }

    #[test]
    fn threshold_zero_always_escalates() {
        let (low, high) = models(0);
        let cascade = MultiEffortVit::new(low, high, 0.0);
        let stats = cascade.evaluate(&samples(20, 1));
        assert_eq!(stats.n_low, 0);
        assert_eq!(stats.n_high, 20);
        assert_eq!(stats.f_high(), 1.0);
    }

    #[test]
    fn threshold_one_never_escalates() {
        let (low, high) = models(2);
        let cascade = MultiEffortVit::new(low, high, 1.0);
        let stats = cascade.evaluate(&samples(20, 3));
        assert_eq!(stats.n_high, 0);
        assert_eq!(stats.f_low(), 1.0);
    }

    #[test]
    fn f_low_is_monotone_in_threshold() {
        let (low, high) = models(4);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        let set = samples(30, 5);
        let mut prev = 0.0;
        for th in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let f = cascade.f_low_at(&set, th);
            assert!(f >= prev, "F_L not monotone at Th={th}");
            prev = f;
        }
        assert_eq!(cascade.f_low_at(&set, 1.0), 1.0);
    }

    #[test]
    fn stats_are_consistent() {
        let (low, high) = models(6);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        let set = samples(40, 7);
        let stats = cascade.evaluate(&set);
        assert_eq!(stats.total(), 40);
        assert_eq!(stats.n_low, stats.c_low + stats.i_low);
        assert_eq!(stats.n_high, stats.c_high + stats.i_high);
        assert!((stats.f_low() + stats.f_high() - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&stats.accuracy()));
    }

    #[test]
    fn outcome_reports_matching_logits() {
        let (low, high) = models(8);
        let cascade = MultiEffortVit::new(low.clone(), high.clone(), 0.5);
        let set = samples(10, 9);
        for s in &set {
            let out = cascade.infer(&s.image);
            let expected =
                if out.used_high { high.infer(&s.image) } else { low.infer(&s.image) };
            assert!(out.logits.approx_eq(&expected, 1e-6));
            assert_eq!(out.prediction, expected.row_argmax(0));
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn invalid_threshold_panics() {
        let (low, high) = models(10);
        let _ = MultiEffortVit::new(low, high, 1.5);
    }
}
