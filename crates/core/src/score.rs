//! The Path-Score of Algorithm 1.

use crate::PathConfig;
use pivot_cka::CkaMatrix;

/// Computes the Path-Score `S` of a path (paper Algorithm 1).
///
/// For every encoder `i` with active attention, walk forward over the
/// immediately following encoders `j = i+1, i+2, ...`: while `A_j` is
/// inactive (skipped), add `CKA(MLP_i, A_j)`; stop at the first active
/// attention. A high `S` means the path skips attentions whose outputs are
/// highly redundant with the residual stream that reaches them, so pruning
/// them is cheap in accuracy.
///
/// # Panics
///
/// Panics if the CKA matrix depth does not match the path depth.
///
/// # Example
///
/// ```
/// use pivot_cka::CkaMatrix;
/// use pivot_core::{path_score, PathConfig};
/// use pivot_tensor::Matrix;
///
/// let mut vals = Matrix::zeros(3, 3);
/// vals[(0, 1)] = 0.9;
/// vals[(0, 2)] = 0.8;
/// let cka = CkaMatrix::from_matrix(vals);
/// // Encoder 0 active, 1 and 2 skipped: S = CKA(0,1) + CKA(0,2).
/// let s = path_score(&PathConfig::new(3, &[0]), &cka);
/// assert!((s - 1.7).abs() < 1e-6);
/// ```
pub fn path_score(path: &PathConfig, cka: &CkaMatrix) -> f32 {
    assert_eq!(
        cka.depth(),
        path.depth(),
        "CKA matrix depth {} != path depth {}",
        cka.depth(),
        path.depth()
    );
    let mut score = 0.0;
    for &i in path.active() {
        for j in (i + 1)..path.depth() {
            if path.is_active(j) {
                break;
            }
            score += cka.get(i, j);
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Matrix;

    /// CKA matrix with distinct, recognizable entries in the upper triangle.
    fn test_cka(depth: usize) -> CkaMatrix {
        let mut m = Matrix::zeros(depth, depth);
        for i in 0..depth {
            for j in (i + 1)..depth {
                m[(i, j)] = (10 * (i + 1) + j + 1) as f32 / 1000.0;
            }
        }
        CkaMatrix::from_matrix(m)
    }

    #[test]
    fn paper_worked_example() {
        // Paper Section 3.2 example (1-based): Config = [1..12] with
        // encoders 3, 4, 9, 10 inactive. 0-based: skipped = {2, 3, 8, 9}.
        // S = CKA[MLP_2,A_3] + CKA[MLP_2,A_4] + CKA[MLP_8,A_9] + CKA[MLP_8,A_10]
        //   (1-based) = 0-based CKA(1,2)+CKA(1,3)+CKA(7,8)+CKA(7,9).
        let depth = 12;
        let active: Vec<usize> = (0..depth).filter(|i| ![2, 3, 8, 9].contains(i)).collect();
        let path = PathConfig::new(depth, &active);
        let cka = test_cka(depth);
        let expected = cka.get(1, 2) + cka.get(1, 3) + cka.get(7, 8) + cka.get(7, 9);
        assert!((path_score(&path, &cka) - expected).abs() < 1e-6);
    }

    #[test]
    fn full_path_scores_zero() {
        let cka = test_cka(6);
        assert_eq!(path_score(&PathConfig::full(6), &cka), 0.0);
    }

    #[test]
    fn walk_stops_at_next_active_attention() {
        // Active {0, 2} in depth 4: from 0 we take CKA(0,1) then stop at
        // active 2; from 2 we take CKA(2,3).
        let cka = test_cka(4);
        let path = PathConfig::new(4, &[0, 2]);
        let expected = cka.get(0, 1) + cka.get(2, 3);
        assert!((path_score(&path, &cka) - expected).abs() < 1e-6);
    }

    #[test]
    fn leading_skips_have_no_preceding_mlp() {
        // Active {2} in depth 4: encoders 0,1 are skipped but have no
        // preceding active encoder, so only CKA(2,3) counts.
        let cka = test_cka(4);
        let path = PathConfig::new(4, &[2]);
        assert!((path_score(&path, &cka) - cka.get(2, 3)).abs() < 1e-6);
    }

    #[test]
    fn empty_path_scores_zero() {
        let cka = test_cka(5);
        assert_eq!(path_score(&PathConfig::new(5, &[]), &cka), 0.0);
    }

    #[test]
    fn higher_cka_means_higher_score() {
        let low = CkaMatrix::from_matrix(Matrix::filled(4, 4, 0.1));
        let high = CkaMatrix::from_matrix(Matrix::filled(4, 4, 0.9));
        let path = PathConfig::new(4, &[0, 1]);
        assert!(path_score(&path, &high) > path_score(&path, &low));
    }

    #[test]
    #[should_panic(expected = "CKA matrix depth")]
    fn depth_mismatch_panics() {
        let cka = test_cka(5);
        let _ = path_score(&PathConfig::full(4), &cka);
    }
}
