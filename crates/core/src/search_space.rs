//! Phase-2 design-space accounting (paper Fig. 4b).
//!
//! With Phase 1's optimal-path selection there is exactly **one** candidate
//! path per effort, so an effort combination `[e_L, e_H]` is a single design
//! point. A random search that skips Phase 1 must instead consider every
//! placement of both efforts: `C(D, e_L) * C(D, e_H)` points.

use crate::PathConfig;

/// Number of Phase-2 design points for the effort pair `(e_low, e_high)`
/// under random search (no Phase-1 optimal-path selection).
///
/// The paper's example: `[3, 6]` on DeiT-S (D = 12) gives
/// `C(12,3) * C(12,6) = 2.03e5`.
pub fn random_pair_space(depth: usize, e_low: usize, e_high: usize) -> f64 {
    PathConfig::count(depth, e_low) * PathConfig::count(depth, e_high)
}

/// Number of Phase-2 design points for one effort pair under PIVOT: exactly
/// one, thanks to Phase 1.
pub fn pivot_pair_space() -> f64 {
    1.0
}

/// Total random-search design-space size over all ordered effort pairs
/// `e_i < e_j` drawn from `efforts`.
pub fn total_random_space(depth: usize, efforts: &[usize]) -> f64 {
    let mut sorted = efforts.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut total = 0.0;
    for (a, &lo) in sorted.iter().enumerate() {
        for &hi in sorted.iter().skip(a + 1) {
            total += random_pair_space(depth, lo, hi);
        }
    }
    total
}

/// Total PIVOT design-space size over the same pairs (one point per pair).
pub fn total_pivot_space(efforts: &[usize]) -> f64 {
    let mut sorted = efforts.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len() as f64;
    n * (n - 1.0) / 2.0
}

/// How many times larger the random space is than PIVOT's.
pub fn reduction_factor(depth: usize, efforts: &[usize]) -> f64 {
    let pivot = total_pivot_space(efforts);
    if pivot == 0.0 {
        return 0.0;
    }
    total_random_space(depth, efforts) / pivot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_pair_3_6() {
        // Paper Section 3.3: C(12,3) x C(12,6) = 2.03e5 for DeiT-S.
        let size = random_pair_space(12, 3, 6);
        assert_eq!(size, 220.0 * 924.0);
        assert!((size - 2.03e5).abs() / 2.03e5 < 0.01);
    }

    #[test]
    fn deit_s_reduction_is_about_1e5() {
        // Paper: DeiT-S random search space ~1e5x larger than PIVOT's.
        let efforts: Vec<usize> = (3..=9).collect();
        let factor = reduction_factor(12, &efforts);
        assert!(
            (1e4..1e7).contains(&factor),
            "reduction factor {factor:.3e} not in the paper's ~1e5 regime"
        );
    }

    #[test]
    fn pivot_space_is_pair_count() {
        assert_eq!(total_pivot_space(&[3, 6, 9]), 3.0);
        assert_eq!(total_pivot_space(&[3]), 0.0);
        assert_eq!(total_pivot_space(&[4, 5, 6, 7]), 6.0);
    }

    #[test]
    fn duplicate_efforts_are_ignored() {
        assert_eq!(
            total_random_space(12, &[3, 3, 6]),
            total_random_space(12, &[3, 6])
        );
    }

    #[test]
    fn random_space_grows_with_depth() {
        assert!(total_random_space(16, &[4, 8]) > total_random_space(12, &[4, 8]));
    }
}
