//! The workspace-level structured error type.
//!
//! Lower crates define their own narrow error types near the code that can
//! fail — `pivot_vit::CheckpointError` for checkpoint I/O,
//! `pivot_vit::ConfigError` / `pivot_sim::ConfigError` for configuration
//! validation, `pivot_tensor::NonFiniteError` for tensor health — and
//! [`PivotError`] unifies them at the top of the dependency graph so
//! pipeline callers handle one type. Panicking `validate()` wrappers remain
//! on every config type for API compatibility; the `try_validate()` /
//! `Result` paths never panic on malformed input.

use std::error::Error;
use std::fmt;

use pivot_tensor::NonFiniteError;
use pivot_vit::CheckpointError;

/// Any failure surfaced by the PIVOT pipeline and its fault-tolerance layer.
#[derive(Debug)]
pub enum PivotError {
    /// A configuration failed validation.
    InvalidConfig {
        /// Which configuration (e.g. `"PipelineConfig"`).
        context: String,
        /// Why validation failed.
        message: String,
    },
    /// A checkpoint could not be loaded or stored.
    Checkpoint(CheckpointError),
    /// A tensor that must be finite contained NaN/±inf values.
    NonFinite(NonFiniteError),
}

impl fmt::Display for PivotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::NonFinite(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PivotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidConfig { .. } => None,
            Self::Checkpoint(e) => Some(e),
            Self::NonFinite(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for PivotError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<NonFiniteError> for PivotError {
    fn from(e: NonFiniteError) -> Self {
        Self::NonFinite(e)
    }
}

impl From<pivot_vit::ConfigError> for PivotError {
    fn from(e: pivot_vit::ConfigError) -> Self {
        Self::InvalidConfig {
            context: "ViT config".to_string(),
            message: e.reason().to_string(),
        }
    }
}

impl From<pivot_sim::ConfigError> for PivotError {
    fn from(e: pivot_sim::ConfigError) -> Self {
        Self::InvalidConfig {
            context: "accelerator config".to_string(),
            message: e.reason().to_string(),
        }
    }
}

impl PivotError {
    /// Builds an [`PivotError::InvalidConfig`] from a context and reason.
    pub fn invalid_config(context: impl Into<String>, message: impl Into<String>) -> Self {
        Self::InvalidConfig {
            context: context.into(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Matrix;

    #[test]
    fn lower_crate_errors_convert() {
        let m = Matrix::from_rows(&[&[f32::NAN, 1.0]]);
        let nf = m.validate_finite("logits").unwrap_err();
        let e: PivotError = nf.into();
        assert!(e.to_string().contains("logits"));

        let bad_cfg = pivot_vit::VitConfig {
            patch_size: 0,
            ..pivot_vit::VitConfig::test_small()
        };
        let e: PivotError = bad_cfg.try_validate().unwrap_err().into();
        assert!(matches!(e, PivotError::InvalidConfig { .. }));
        assert!(e.to_string().contains("ViT config"));

        let bad_accel = pivot_sim::AcceleratorConfig {
            pe_rows: 0,
            ..pivot_sim::AcceleratorConfig::zcu102()
        };
        let e: PivotError = bad_accel.try_validate().unwrap_err().into();
        assert!(e.to_string().contains("accelerator config"));
    }

    #[test]
    fn checkpoint_errors_convert() {
        let err = pivot_vit::VisionTransformer::load("/nonexistent/model.bin").unwrap_err();
        let e: PivotError = err.into();
        assert!(matches!(e, PivotError::Checkpoint(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
