//! Phase 2: hardware-in-the-loop search for the optimal effort combination
//! (paper Fig. 2c).

use crate::{CascadeStats, PathConfig};
use pivot_data::Sample;
use pivot_sim::{combine_efforts, CombinedPerf, Simulator, VitGeometry};
use pivot_vit::VisionTransformer;

/// One effort with its Phase-1 optimal path and fine-tuned model.
#[derive(Debug, Clone)]
pub struct EffortModel {
    /// Number of active attentions.
    pub effort: usize,
    /// The optimal path from Phase 1.
    pub path: PathConfig,
    /// Algorithm-1 score of the path.
    pub score: f32,
    /// The fine-tuned ViT realizing the path.
    pub model: VisionTransformer,
}

/// User constraints for Phase 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase2Config {
    /// Low-effort constraint: minimum fraction of inputs that must be
    /// classified by the low effort (the paper's LEC, as a fraction).
    pub lec: f64,
    /// Target per-image delay in milliseconds.
    pub delay_constraint_ms: f64,
    /// Acceptance tolerance around the delay constraint (paper: 5%).
    pub delay_tolerance: f64,
    /// Step of the incremental threshold iteration.
    pub threshold_step: f32,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Self { lec: 0.7, delay_constraint_ms: 50.0, delay_tolerance: 0.05, threshold_step: 0.02 }
    }
}

/// The effort combination Phase 2 settles on.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// Low-effort path (`Config_L`).
    pub low_path: PathConfig,
    /// High-effort path (`Config_H`).
    pub high_path: PathConfig,
    /// Low effort size.
    pub low_effort: usize,
    /// High effort size.
    pub high_effort: usize,
    /// Chosen entropy threshold `Th`.
    pub threshold: f32,
    /// Calibration-batch cascade statistics (`C_L/C_H/F_L/F_H`).
    pub stats: CascadeStats,
    /// Simulated delay/energy of the combination.
    pub perf: CombinedPerf,
}

/// The Phase-2 searcher: pairs every candidate low/high effort, iterates
/// the entropy threshold until `F_L >= LEC` on a calibration batch, asks
/// PIVOT-Sim for the combination delay, and walks from the largest effort
/// pair downward until the delay constraint is met (within tolerance).
#[derive(Debug)]
pub struct Phase2Search<'a> {
    sim: &'a Simulator,
    geometry: &'a VitGeometry,
    efforts: &'a [EffortModel],
    calibration: &'a [Sample],
}

impl<'a> Phase2Search<'a> {
    /// Creates a searcher.
    ///
    /// `geometry` is the paper-scale ViT whose delay the constraint refers
    /// to; `efforts` are the Phase-1 outputs (any order); `calibration` is
    /// the small batch (the paper uses 256 training images) on which
    /// thresholds and accuracies are measured.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two efforts are supplied, the calibration batch
    /// is empty, or an effort's depth does not match the geometry.
    pub fn new(
        sim: &'a Simulator,
        geometry: &'a VitGeometry,
        efforts: &'a [EffortModel],
        calibration: &'a [Sample],
    ) -> Self {
        assert!(efforts.len() >= 2, "need at least two efforts to combine");
        assert!(!calibration.is_empty(), "calibration batch must be non-empty");
        for e in efforts {
            assert_eq!(
                e.path.depth(),
                geometry.depth,
                "effort {} path depth mismatch with geometry",
                e.effort
            );
        }
        Self { sim, geometry, efforts, calibration }
    }

    /// Runs the search. Returns `None` when no combination meets the delay
    /// constraint (the constraint is infeasible even with the smallest
    /// efforts).
    pub fn run(&self, cfg: &Phase2Config) -> Option<Phase2Result> {
        let max_delay = cfg.delay_constraint_ms * (1.0 + cfg.delay_tolerance);

        // Candidate (low, high) pairs, largest combined effort first: the
        // paper starts with maximum active attentions and samples smaller
        // combinations each iteration.
        let mut order: Vec<usize> = (0..self.efforts.len()).collect();
        order.sort_by_key(|&i| self.efforts[i].effort);
        let mut pairs = Vec::new();
        for (a, &i) in order.iter().enumerate() {
            for &j in order.iter().skip(a + 1) {
                if self.efforts[i].effort < self.efforts[j].effort {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_by_key(|&(i, j)| {
            std::cmp::Reverse((
                self.efforts[i].effort + self.efforts[j].effort,
                self.efforts[j].effort,
            ))
        });

        for (li, hi) in pairs {
            let low = &self.efforts[li];
            let high = &self.efforts[hi];
            if let Some(result) = self.evaluate_pair(low, high, cfg, max_delay) {
                return Some(result);
            }
        }
        None
    }

    /// Evaluates one effort pair: iterate `Th` until `F_L >= LEC`, then
    /// check the simulated delay against the constraint.
    ///
    /// The low-effort logits are computed once per sample; the incremental
    /// threshold iteration then runs on the cached entropies, and only the
    /// escalated samples are re-inferred with the high effort.
    pub fn evaluate_pair(
        &self,
        low: &EffortModel,
        high: &EffortModel,
        cfg: &Phase2Config,
        max_delay_ms: f64,
    ) -> Option<Phase2Result> {
        use pivot_nn::normalized_entropy;

        let low_logits: Vec<_> =
            self.calibration.iter().map(|s| low.model.infer(&s.image)).collect();
        let entropies: Vec<f32> = low_logits.iter().map(normalized_entropy).collect();
        let n = self.calibration.len() as f64;

        // Step 2-3: incremental threshold iteration until F_L >= LEC.
        let mut threshold = cfg.threshold_step;
        loop {
            let f_low =
                entropies.iter().filter(|&&e| e < threshold).count() as f64 / n;
            if f_low >= cfg.lec || threshold >= 1.0 {
                break;
            }
            threshold += cfg.threshold_step;
        }
        let threshold = threshold.min(1.0);

        // Step 3-4: measure C_L/C_H/F_L/F_H and accuracy on the batch.
        let mut stats = CascadeStats::default();
        for (i, sample) in self.calibration.iter().enumerate() {
            if entropies[i] < threshold {
                stats.n_low += 1;
                if low_logits[i].row_argmax(0) == sample.label {
                    stats.c_low += 1;
                } else {
                    stats.i_low += 1;
                }
            } else {
                stats.n_high += 1;
                if high.model.infer(&sample.image).row_argmax(0) == sample.label {
                    stats.c_high += 1;
                } else {
                    stats.i_high += 1;
                }
            }
        }

        // Step 5: hardware-in-the-loop delay of the combination.
        let perf_low = self.sim.simulate(self.geometry, &low.path.to_mask());
        let perf_high = self.sim.simulate(self.geometry, &high.path.to_mask());
        let perf = combine_efforts(&perf_low, &perf_high, stats.f_low());

        (perf.delay_ms <= max_delay_ms).then(|| Phase2Result {
            low_path: low.path.clone(),
            high_path: high.path.clone(),
            low_effort: low.effort,
            high_effort: high.effort,
            threshold,
            stats,
            perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_sim::AcceleratorConfig;
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};

    fn make_efforts(depth: usize, efforts: &[usize], seed: u64) -> Vec<EffortModel> {
        let cfg = VitConfig { depth, ..VitConfig::test_small() };
        let base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
        efforts
            .iter()
            .map(|&e| {
                // Deep-skip paths, like Phase 1 would produce.
                let active: Vec<usize> = (0..e).collect();
                let path = PathConfig::new(depth, &active);
                let mut model = base.clone();
                model.set_active_attentions(path.active());
                EffortModel { effort: e, path, score: e as f32, model }
            })
            .collect()
    }

    fn calibration(seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.1, 0.9], 15, seed)
    }

    #[test]
    fn finds_combination_meeting_loose_constraint() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 0);
        let calib = calibration(1);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let result = search
            .run(&Phase2Config { delay_constraint_ms: 80.0, ..Default::default() })
            .expect("loose constraint must be satisfiable");
        // Largest pair is tried first and meets a loose constraint.
        assert_eq!((result.low_effort, result.high_effort), (9, 12));
        assert!(result.perf.delay_ms <= 80.0 * 1.05);
        assert!(result.stats.f_low() >= 0.7 || result.threshold >= 1.0);
    }

    #[test]
    fn tighter_constraint_selects_smaller_efforts() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 2);
        let calib = calibration(3);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let loose = search
            .run(&Phase2Config { delay_constraint_ms: 70.0, ..Default::default() })
            .expect("loose");
        let tight = search
            .run(&Phase2Config { delay_constraint_ms: 45.0, ..Default::default() })
            .expect("tight");
        assert!(
            tight.low_effort + tight.high_effort <= loose.low_effort + loose.high_effort,
            "tighter delay must not select larger efforts"
        );
        assert!(tight.perf.delay_ms < loose.perf.delay_ms + 1e-9);
    }

    #[test]
    fn infeasible_constraint_returns_none() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[9, 12], 4);
        let calib = calibration(5);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        assert!(search
            .run(&Phase2Config { delay_constraint_ms: 1.0, ..Default::default() })
            .is_none());
    }

    #[test]
    fn threshold_satisfies_lec_on_calibration() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[6, 12], 6);
        let calib = calibration(7);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let cfg = Phase2Config { lec: 0.8, delay_constraint_ms: 100.0, ..Default::default() };
        let result = search.run(&cfg).expect("satisfiable");
        assert!(
            result.stats.f_low() >= 0.8 - 1e-9 || result.threshold >= 1.0,
            "F_L {} below LEC at Th {}",
            result.stats.f_low(),
            result.threshold
        );
    }

    #[test]
    #[should_panic(expected = "at least two efforts")]
    fn single_effort_panics() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[12], 8);
        let calib = calibration(9);
        let _ = Phase2Search::new(&sim, &geom, &efforts, &calib);
    }
}
