//! Phase 2: hardware-in-the-loop search for the optimal effort combination
//! (paper Fig. 2c).

use crate::cache::CascadeCache;
use crate::parallel::Parallelism;
use crate::{CascadeStats, PathConfig};
use pivot_data::Sample;
use pivot_sim::{combine_efforts, CombinedPerf, Simulator, VitGeometry};
use pivot_vit::{PreparedModel, PreparedStore, StoreStats, VisionTransformer};
use std::collections::HashMap;

/// One effort with its Phase-1 optimal path and fine-tuned model.
#[derive(Debug, Clone)]
pub struct EffortModel {
    /// Number of active attentions.
    pub effort: usize,
    /// The optimal path from Phase 1.
    pub path: PathConfig,
    /// Algorithm-1 score of the path.
    pub score: f32,
    /// The fine-tuned ViT realizing the path.
    pub model: VisionTransformer,
}

/// User constraints for Phase 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase2Config {
    /// Low-effort constraint: minimum fraction of inputs that must be
    /// classified by the low effort (the paper's LEC, as a fraction).
    pub lec: f64,
    /// Target per-image delay in milliseconds.
    pub delay_constraint_ms: f64,
    /// Acceptance tolerance around the delay constraint (paper: 5%).
    pub delay_tolerance: f64,
    /// Step of the incremental threshold iteration.
    pub threshold_step: f32,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Self {
            lec: 0.7,
            delay_constraint_ms: 50.0,
            delay_tolerance: 0.05,
            threshold_step: 0.02,
        }
    }
}

/// The effort combination Phase 2 settles on.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// Low-effort path (`Config_L`).
    pub low_path: PathConfig,
    /// High-effort path (`Config_H`).
    pub high_path: PathConfig,
    /// Low effort size.
    pub low_effort: usize,
    /// High effort size.
    pub high_effort: usize,
    /// Chosen entropy threshold `Th`.
    pub threshold: f32,
    /// Calibration-batch cascade statistics (`C_L/C_H/F_L/F_H`).
    pub stats: CascadeStats,
    /// Simulated delay/energy of the combination.
    pub perf: CombinedPerf,
}

/// The Phase-2 searcher: pairs every candidate low/high effort, iterates
/// the entropy threshold until `F_L >= LEC` on a calibration batch, asks
/// PIVOT-Sim for the combination delay, and walks from the largest effort
/// pair downward until the delay constraint is met (within tolerance).
#[derive(Debug)]
pub struct Phase2Search<'a> {
    sim: &'a Simulator,
    geometry: &'a VitGeometry,
    efforts: &'a [EffortModel],
    calibration: &'a [Sample],
    parallelism: Parallelism,
    int8: bool,
    /// One content-addressed store for the whole search: the distinct
    /// efforts all derive from one backbone, so every low-effort cache and
    /// every prepared high effort across all probed pairs Arc-shares one
    /// set of materialized layers.
    store: PreparedStore,
}

impl<'a> Phase2Search<'a> {
    /// Creates a searcher.
    ///
    /// `geometry` is the paper-scale ViT whose delay the constraint refers
    /// to; `efforts` are the Phase-1 outputs (any order); `calibration` is
    /// the small batch (the paper uses 256 training images) on which
    /// thresholds and accuracies are measured.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two efforts are supplied, the calibration batch
    /// is empty, or an effort's depth does not match the geometry.
    pub fn new(
        sim: &'a Simulator,
        geometry: &'a VitGeometry,
        efforts: &'a [EffortModel],
        calibration: &'a [Sample],
    ) -> Self {
        assert!(efforts.len() >= 2, "need at least two efforts to combine");
        assert!(
            !calibration.is_empty(),
            "calibration batch must be non-empty"
        );
        for e in efforts {
            assert_eq!(
                e.path.depth(),
                geometry.depth,
                "effort {} path depth mismatch with geometry",
                e.effort
            );
        }
        Self {
            sim,
            geometry,
            efforts,
            calibration,
            parallelism: Parallelism::Auto,
            int8: false,
            store: PreparedStore::new(),
        }
    }

    /// Hit/miss and byte accounting of the content-addressed store all of
    /// this searcher's prepared views were deduplicated through.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The parallelism used for calibration inference (default
    /// [`Parallelism::Auto`]).
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Builder-style parallelism override.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Whether calibration inference runs on the packed int8 kernel.
    pub fn int8(&self) -> bool {
        self.int8
    }

    /// Builder-style int8 switch: calibration caches and high-effort views
    /// are built with [`VisionTransformer::prepare_int8`], so the whole
    /// threshold sweep runs the integer GEMM. The default fake-quant sweep
    /// stays the accuracy reference; thresholds and statistics track it
    /// within the documented int8 tolerance.
    pub fn with_int8(mut self, int8: bool) -> Self {
        self.int8 = int8;
        self
    }

    fn prepare_model(&self, model: &VisionTransformer) -> PreparedModel {
        if self.int8 {
            model.prepare_int8_in(&self.store)
        } else {
            model.prepare_in(&self.store)
        }
    }

    fn build_cache(&self, model: &VisionTransformer) -> CascadeCache {
        if self.int8 {
            CascadeCache::build_int8_in(model, self.calibration, self.parallelism, &self.store)
        } else {
            CascadeCache::build_in(model, self.calibration, self.parallelism, &self.store)
        }
    }

    /// Runs the search. Returns `None` when no combination meets the delay
    /// constraint (the constraint is infeasible even with the smallest
    /// efforts).
    pub fn run(&self, cfg: &Phase2Config) -> Option<Phase2Result> {
        let max_delay = cfg.delay_constraint_ms * (1.0 + cfg.delay_tolerance);

        // Candidate (low, high) pairs, largest combined effort first: the
        // paper starts with maximum active attentions and samples smaller
        // combinations each iteration.
        let mut order: Vec<usize> = (0..self.efforts.len()).collect();
        order.sort_by_key(|&i| self.efforts[i].effort);
        let mut pairs = Vec::new();
        for (a, &i) in order.iter().enumerate() {
            for &j in order.iter().skip(a + 1) {
                if self.efforts[i].effort < self.efforts[j].effort {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_by_key(|&(i, j)| {
            std::cmp::Reverse((
                self.efforts[i].effort + self.efforts[j].effort,
                self.efforts[j].effort,
            ))
        });

        // Low-effort calibration logits are computed once per distinct low
        // effort and reused across every pair sharing it; likewise each
        // distinct high effort is prepared (quantizers fitted, effective
        // weights materialized) once and reused across every pair.
        let mut low_caches: HashMap<usize, CascadeCache> = HashMap::new();
        let mut prepared_highs: HashMap<usize, PreparedModel> = HashMap::new();
        for (li, hi) in pairs {
            let low = &self.efforts[li];
            let high = &self.efforts[hi];
            let cache = low_caches
                .entry(li)
                .or_insert_with(|| self.build_cache(&low.model));
            let high_prepared = prepared_highs
                .entry(hi)
                .or_insert_with(|| self.prepare_model(&high.model));
            if let Some(result) =
                self.evaluate_pair_prepared(low, high, high_prepared, cache, cfg, max_delay)
            {
                return Some(result);
            }
        }
        None
    }

    /// Evaluates one effort pair: iterate `Th` until `F_L >= LEC`, then
    /// check the simulated delay against the constraint.
    ///
    /// Builds a fresh [`CascadeCache`] for the low effort; when probing
    /// several pairs that share a low effort, build the cache once and use
    /// [`Self::evaluate_pair_cached`] (as [`Self::run`] does internally).
    pub fn evaluate_pair(
        &self,
        low: &EffortModel,
        high: &EffortModel,
        cfg: &Phase2Config,
        max_delay_ms: f64,
    ) -> Option<Phase2Result> {
        let cache = self.build_cache(&low.model);
        self.evaluate_pair_cached(low, high, &cache, cfg, max_delay_ms)
    }

    /// [`Self::evaluate_pair`] serving low-effort logits and entropies
    /// from a pre-built cache: the incremental threshold iteration runs on
    /// cached entropies in O(N) per step, and only the escalated samples
    /// are re-inferred with the high effort (on the worker pool, reduced
    /// in sample order for bit-identical statistics).
    ///
    /// # Panics
    ///
    /// Panics if `cache` was not built from this searcher's calibration
    /// batch (length check).
    pub fn evaluate_pair_cached(
        &self,
        low: &EffortModel,
        high: &EffortModel,
        cache: &CascadeCache,
        cfg: &Phase2Config,
        max_delay_ms: f64,
    ) -> Option<Phase2Result> {
        self.evaluate_pair_prepared(
            low,
            high,
            &self.prepare_model(&high.model),
            cache,
            cfg,
            max_delay_ms,
        )
    }

    /// [`Self::evaluate_pair_cached`] against an already-prepared
    /// high-effort view — the innermost form [`Self::run`] uses so each
    /// distinct high effort's weights are materialized once and reused
    /// across every pair sharing it.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was not built from this searcher's calibration
    /// batch (length check).
    pub fn evaluate_pair_prepared(
        &self,
        low: &EffortModel,
        high: &EffortModel,
        high_prepared: &PreparedModel,
        cache: &CascadeCache,
        cfg: &Phase2Config,
        max_delay_ms: f64,
    ) -> Option<Phase2Result> {
        // Step 2-3: incremental threshold iteration until F_L >= LEC.
        let threshold = cache.threshold_reaching(cfg.lec, cfg.threshold_step);

        // Step 3-4: measure C_L/C_H/F_L/F_H and accuracy on the batch.
        let stats =
            cache.evaluate_prepared(high_prepared, self.calibration, threshold, self.parallelism);

        // Step 5: hardware-in-the-loop delay of the combination.
        let perf_low = self.sim.simulate(self.geometry, &low.path.to_mask());
        let perf_high = self.sim.simulate(self.geometry, &high.path.to_mask());
        let perf = combine_efforts(&perf_low, &perf_high, stats.f_low());

        (perf.delay_ms <= max_delay_ms).then(|| Phase2Result {
            low_path: low.path.clone(),
            high_path: high.path.clone(),
            low_effort: low.effort,
            high_effort: high.effort,
            threshold,
            stats,
            perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_sim::AcceleratorConfig;
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};

    fn make_efforts(depth: usize, efforts: &[usize], seed: u64) -> Vec<EffortModel> {
        let cfg = VitConfig {
            depth,
            ..VitConfig::test_small()
        };
        let base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
        efforts
            .iter()
            .map(|&e| {
                // Deep-skip paths, like Phase 1 would produce.
                let active: Vec<usize> = (0..e).collect();
                let path = PathConfig::new(depth, &active);
                let mut model = base.clone();
                model.set_active_attentions(path.active());
                EffortModel {
                    effort: e,
                    path,
                    score: e as f32,
                    model,
                }
            })
            .collect()
    }

    fn calibration(seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.1, 0.9], 15, seed)
    }

    #[test]
    fn finds_combination_meeting_loose_constraint() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 0);
        let calib = calibration(1);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let result = search
            .run(&Phase2Config {
                delay_constraint_ms: 80.0,
                ..Default::default()
            })
            .expect("loose constraint must be satisfiable");
        // Largest pair is tried first and meets a loose constraint.
        assert_eq!((result.low_effort, result.high_effort), (9, 12));
        assert!(result.perf.delay_ms <= 80.0 * 1.05);
        assert!(result.stats.f_low() >= 0.7 || result.threshold >= 1.0);
    }

    #[test]
    fn tighter_constraint_selects_smaller_efforts() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 2);
        let calib = calibration(3);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let loose = search
            .run(&Phase2Config {
                delay_constraint_ms: 70.0,
                ..Default::default()
            })
            .expect("loose");
        let tight = search
            .run(&Phase2Config {
                delay_constraint_ms: 45.0,
                ..Default::default()
            })
            .expect("tight");
        assert!(
            tight.low_effort + tight.high_effort <= loose.low_effort + loose.high_effort,
            "tighter delay must not select larger efforts"
        );
        assert!(tight.perf.delay_ms < loose.perf.delay_ms + 1e-9);
    }

    #[test]
    fn infeasible_constraint_returns_none() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[9, 12], 4);
        let calib = calibration(5);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        assert!(search
            .run(&Phase2Config {
                delay_constraint_ms: 1.0,
                ..Default::default()
            })
            .is_none());
    }

    #[test]
    fn threshold_satisfies_lec_on_calibration() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[6, 12], 6);
        let calib = calibration(7);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let cfg = Phase2Config {
            lec: 0.8,
            delay_constraint_ms: 100.0,
            ..Default::default()
        };
        let result = search.run(&cfg).expect("satisfiable");
        assert!(
            result.stats.f_low() >= 0.8 - 1e-9 || result.threshold >= 1.0,
            "F_L {} below LEC at Th {}",
            result.stats.f_low(),
            result.threshold
        );
    }

    #[test]
    fn parallel_search_is_bit_identical() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 10);
        let calib = calibration(11);
        let cfg = Phase2Config {
            delay_constraint_ms: 60.0,
            ..Default::default()
        };
        let seq = Phase2Search::new(&sim, &geom, &efforts, &calib)
            .with_parallelism(Parallelism::Off)
            .run(&cfg)
            .expect("satisfiable");
        for par in [Parallelism::Auto, Parallelism::Fixed(4)] {
            let p = Phase2Search::new(&sim, &geom, &efforts, &calib)
                .with_parallelism(par)
                .run(&cfg)
                .expect("satisfiable");
            assert_eq!(seq.low_effort, p.low_effort);
            assert_eq!(seq.high_effort, p.high_effort);
            assert_eq!(seq.threshold.to_bits(), p.threshold.to_bits());
            assert_eq!(seq.stats, p.stats);
            assert_eq!(seq.perf.delay_ms.to_bits(), p.perf.delay_ms.to_bits());
            assert_eq!(seq.perf.energy_j().to_bits(), p.perf.energy_j().to_bits());
        }
    }

    #[test]
    fn evaluate_pair_reuses_cache_consistently() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 12], 12);
        let calib = calibration(13);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let cfg = Phase2Config::default();
        // One low-effort cache served to two different high efforts gives
        // the same results as building per-pair caches.
        let cache = crate::CascadeCache::build(&efforts[0].model, &calib, Parallelism::Off);
        for high in &efforts[1..] {
            let direct = search.evaluate_pair(&efforts[0], high, &cfg, f64::INFINITY);
            let cached =
                search.evaluate_pair_cached(&efforts[0], high, &cache, &cfg, f64::INFINITY);
            let (d, c) = (direct.expect("feasible"), cached.expect("feasible"));
            assert_eq!(d.stats, c.stats);
            assert_eq!(d.threshold.to_bits(), c.threshold.to_bits());
        }
    }

    #[test]
    fn search_shares_prepared_layers_across_pairs() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        // All efforts derive from one backbone, so every prepared view
        // past the first (low caches and high efforts alike) hits the
        // searcher's shared store.
        let efforts = make_efforts(12, &[3, 6, 9, 12], 16);
        let calib = calibration(17);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib);
        assert_eq!(search.store_stats().lookups(), 0);
        // An infeasible constraint forces the search through every pair.
        assert!(search
            .run(&Phase2Config {
                delay_constraint_ms: 1.0,
                ..Default::default()
            })
            .is_none());
        let stats = search.store_stats();
        assert!(stats.hits > 0, "pairs must reuse prepared layers");
        // Memoization prepares six distinct views (lows 3/6/9, highs
        // 6/9/12), all resolving to one resident backbone copy.
        assert_eq!(stats.total_bytes(), 6 * stats.unique_bytes);
        assert_eq!(stats.hit_bytes, 5 * stats.unique_bytes);
    }

    #[test]
    #[should_panic(expected = "at least two efforts")]
    fn single_effort_panics() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[12], 8);
        let calib = calibration(9);
        let _ = Phase2Search::new(&sim, &geom, &efforts, &calib);
    }

    #[test]
    fn int8_search_finds_the_same_pair_as_fake_quant() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let efforts = make_efforts(12, &[3, 6, 9, 12], 14);
        let calib = calibration(15);
        let reference = Phase2Search::new(&sim, &geom, &efforts, &calib);
        let search = Phase2Search::new(&sim, &geom, &efforts, &calib).with_int8(true);
        assert!(search.int8());
        assert!(!reference.int8());
        let cfg = Phase2Config {
            delay_constraint_ms: 80.0,
            ..Default::default()
        };
        let r = reference.run(&cfg).expect("feasible");
        let q = search.run(&cfg).expect("feasible under int8 kernels");
        // The latency model sees identical efforts either way, and the
        // calibration entropies differ only by quantization noise, so the
        // selected pair matches the fake-quant search.
        assert_eq!((q.low_effort, q.high_effort), (r.low_effort, r.high_effort));
        assert!((q.threshold - r.threshold).abs() <= 0.1);
    }
}
