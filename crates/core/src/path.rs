//! Attention-skip path configurations.

/// A *Path*: which encoders of a depth-`D` ViT keep their attention module
/// active (paper Section 3.2 — "a Path is uniquely defined by the position
/// of encoders with active and inactive attention modules").
///
/// # Example
///
/// ```
/// use pivot_core::PathConfig;
///
/// let path = PathConfig::new(12, &[0, 1, 2, 7, 8, 9]);
/// assert_eq!(path.effort(), 6);
/// assert!(path.is_active(0));
/// assert!(!path.is_active(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathConfig {
    depth: usize,
    active: Vec<usize>,
}

impl PathConfig {
    /// Creates a path with the given active encoder indices (any order,
    /// duplicates removed).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= depth`.
    pub fn new(depth: usize, active: &[usize]) -> Self {
        let mut active = active.to_vec();
        active.sort_unstable();
        active.dedup();
        for &i in &active {
            assert!(i < depth, "encoder index {i} out of depth {depth}");
        }
        Self { depth, active }
    }

    /// The full-effort path: every attention active.
    pub fn full(depth: usize) -> Self {
        Self {
            depth,
            active: (0..depth).collect(),
        }
    }

    /// Builds a path from a boolean activity mask.
    pub fn from_mask(mask: &[bool]) -> Self {
        let active = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        Self {
            depth: mask.len(),
            active,
        }
    }

    /// Encoder count.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Active encoder indices in ascending order.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Skipped encoder indices in ascending order.
    pub fn skipped(&self) -> Vec<usize> {
        (0..self.depth).filter(|i| !self.is_active(*i)).collect()
    }

    /// The *effort* — the number of active attentions.
    pub fn effort(&self) -> usize {
        self.active.len()
    }

    /// Whether encoder `i`'s attention is active.
    pub fn is_active(&self, i: usize) -> bool {
        self.active.binary_search(&i).is_ok()
    }

    /// Boolean activity mask of length `depth`.
    pub fn to_mask(&self) -> Vec<bool> {
        (0..self.depth).map(|i| self.is_active(i)).collect()
    }

    /// Enumerates every path of the given effort, i.e. all `C(depth,
    /// effort)` placements, in lexicographic order of active indices.
    ///
    /// # Panics
    ///
    /// Panics if `effort > depth`.
    pub fn enumerate(depth: usize, effort: usize) -> Vec<PathConfig> {
        assert!(effort <= depth, "effort {effort} exceeds depth {depth}");
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(effort);
        fn recurse(
            depth: usize,
            effort: usize,
            start: usize,
            current: &mut Vec<usize>,
            out: &mut Vec<PathConfig>,
        ) {
            if current.len() == effort {
                out.push(PathConfig {
                    depth,
                    active: current.clone(),
                });
                return;
            }
            let remaining = effort - current.len();
            for i in start..=(depth - remaining) {
                current.push(i);
                recurse(depth, effort, i + 1, current, out);
                current.pop();
            }
        }
        recurse(depth, effort, 0, &mut current, &mut out);
        out
    }

    /// Number of paths of a given effort, `C(depth, effort)`, as `f64`
    /// (exact for the sizes used here, robust for search-space accounting).
    pub fn count(depth: usize, effort: usize) -> f64 {
        if effort > depth {
            return 0.0;
        }
        let mut result = 1.0f64;
        for i in 0..effort.min(depth - effort) {
            result = result * (depth - i) as f64 / (i + 1) as f64;
        }
        result.round()
    }
}

impl std::fmt::Display for PathConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Path[")?;
        for i in 0..self.depth {
            write!(f, "{}", if self.is_active(i) { 'A' } else { '.' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_round_trip() {
        let p = PathConfig::new(6, &[0, 3, 5]);
        assert_eq!(PathConfig::from_mask(&p.to_mask()), p);
        assert_eq!(p.skipped(), vec![1, 2, 4]);
    }

    #[test]
    fn enumerate_matches_binomial() {
        for (d, e) in [(5, 3), (6, 2), (12, 6), (4, 0), (4, 4)] {
            let paths = PathConfig::enumerate(d, e);
            assert_eq!(paths.len() as f64, PathConfig::count(d, e), "C({d},{e})");
            // All distinct, all correct effort.
            let mut set = std::collections::HashSet::new();
            for p in &paths {
                assert_eq!(p.effort(), e);
                assert!(set.insert(p.clone()), "duplicate path {p}");
            }
        }
    }

    #[test]
    fn paper_example_five_choose_three() {
        // Fig. 2b: a ViT with 5 encoders and Effort=3 entails C(5,3)=10 paths.
        assert_eq!(PathConfig::enumerate(5, 3).len(), 10);
    }

    #[test]
    fn count_handles_big_values() {
        assert_eq!(PathConfig::count(12, 6), 924.0);
        assert_eq!(PathConfig::count(12, 3), 220.0);
        assert_eq!(PathConfig::count(16, 8), 12870.0);
        assert_eq!(PathConfig::count(3, 5), 0.0);
    }

    #[test]
    fn display_shows_activity() {
        let p = PathConfig::new(4, &[0, 2]);
        assert_eq!(p.to_string(), "Path[A.A.]");
    }

    #[test]
    #[should_panic(expected = "out of depth")]
    fn out_of_range_index_panics() {
        let _ = PathConfig::new(4, &[4]);
    }

    #[test]
    fn duplicates_are_removed() {
        let p = PathConfig::new(5, &[2, 2, 1]);
        assert_eq!(p.active(), &[1, 2]);
        assert_eq!(p.effort(), 2);
    }
}
