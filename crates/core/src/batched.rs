//! Chunked batched inference over sample sets.
//!
//! Every sample-sweep in `pivot-core` (cache builds, cascade evaluation,
//! ladder evaluation) needs the same primitive: per-sample logits for a
//! list of images. [`batched_logits`] runs them through
//! [`PreparedModel::forward_batch`] in fixed-size chunks distributed over
//! the worker pool. The prepared view materializes every layer's effective
//! (fake-quantized) weight exactly once — before the sweep starts — so the
//! chunks do zero per-call weight work, and chunk images are passed by
//! reference, so no pixel data is cloned either.
//!
//! `forward_batch` is bit-identical to per-sample `infer` row by row, and
//! chunk boundaries only decide which rows share a GEMM — so the returned
//! logits are bit-identical to the per-sample path for every chunk size,
//! worker count, and scheduling.
//!
//! [`batched_logits_rematerializing`] keeps the old per-chunk path (each
//! chunk refits quantizers and rematerializes weights inside the unprepared
//! model) as the benchmark baseline; it produces bit-identical logits,
//! just slower.

use crate::parallel::{par_map, Parallelism};
use pivot_data::Sample;
use pivot_tensor::Matrix;
use pivot_vit::{PreparedModel, VisionTransformer};

/// Samples per `forward_batch` call.
///
/// Large enough to feed the blocked matmul kernel multi-tile row counts;
/// small enough that a chunk's activations stay cache-resident and the
/// worker pool has chunks to balance across threads.
pub const EVAL_BATCH: usize = 32;

/// Per-sample logits (`1 x num_classes` each, in item order) for arbitrary
/// items carrying an image, computed in [`EVAL_BATCH`]-sized chunks on the
/// worker pool against a prepared (weights-materialized-once) model view.
pub fn batched_logits_with<T: Sync>(
    model: &PreparedModel,
    items: &[T],
    image: impl for<'a> Fn(&'a T) -> &'a Matrix + Sync,
    par: Parallelism,
) -> Vec<Matrix> {
    let ranges = chunk_ranges(items.len());
    let chunks = par_map(&ranges, par, |_, &(start, end)| {
        let images: Vec<&Matrix> = items[start..end].iter().map(&image).collect();
        model.forward_batch(&images)
    });
    split_rows(&chunks)
}

/// [`batched_logits_with`] over labeled samples.
pub fn batched_logits(model: &PreparedModel, samples: &[Sample], par: Parallelism) -> Vec<Matrix> {
    batched_logits_with(model, samples, |s| &s.image, par)
}

/// The pre-`PreparedModel` evaluation path, kept as a benchmark baseline
/// and differential-test oracle: identical chunking and worker scheduling,
/// but each chunk runs the unprepared model, so every `Linear` refits its
/// quantizer and rematerializes its effective weight once per chunk.
/// Bit-identical to [`batched_logits_with`] on a view prepared from the
/// same model.
pub fn batched_logits_rematerializing_with<T: Sync>(
    model: &VisionTransformer,
    items: &[T],
    image: impl for<'a> Fn(&'a T) -> &'a Matrix + Sync,
    par: Parallelism,
) -> Vec<Matrix> {
    let ranges = chunk_ranges(items.len());
    let chunks = par_map(&ranges, par, |_, &(start, end)| {
        let images: Vec<&Matrix> = items[start..end].iter().map(&image).collect();
        model.forward_batch(&images)
    });
    split_rows(&chunks)
}

/// [`batched_logits_rematerializing_with`] over labeled samples.
pub fn batched_logits_rematerializing(
    model: &VisionTransformer,
    samples: &[Sample],
    par: Parallelism,
) -> Vec<Matrix> {
    batched_logits_rematerializing_with(model, samples, |s| &s.image, par)
}

fn chunk_ranges(len: usize) -> Vec<(usize, usize)> {
    (0..len)
        .step_by(EVAL_BATCH)
        .map(|start| (start, (start + EVAL_BATCH).min(len)))
        .collect()
}

fn split_rows(chunks: &[Matrix]) -> Vec<Matrix> {
    chunks
        .iter()
        .flat_map(|logits| (0..logits.rows()).map(|r| logits.slice_rows(r, r + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    #[test]
    fn batched_logits_are_bit_identical_to_per_sample_infer() {
        let model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(0));
        let prepared = model.prepare();
        // More samples than one chunk, with a ragged tail.
        let samples = Dataset::generate_difficulty_stripes(
            &DatasetConfig::small(),
            &[0.2, 0.8],
            EVAL_BATCH / 2 + 3,
            1,
        );
        assert!(samples.len() > EVAL_BATCH && !samples.len().is_multiple_of(EVAL_BATCH));
        for par in [Parallelism::Off, Parallelism::Fixed(4)] {
            let logits = batched_logits(&prepared, &samples, par);
            assert_eq!(logits.len(), samples.len());
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(logits[i], model.infer(&s.image), "sample {i} under {par:?}");
            }
        }
    }

    #[test]
    fn prepared_path_matches_rematerializing_baseline() {
        // Satellite contract: the clone-free prepared path is bit-identical
        // to the old per-chunk rematerializing path, for both quant modes
        // and across worker counts.
        for quant in [pivot_nn::QuantMode::None, pivot_nn::QuantMode::Int8] {
            let mut model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(3));
            model.set_quant_mode(quant);
            let prepared = model.prepare();
            let samples = Dataset::generate_difficulty_stripes(
                &DatasetConfig::small(),
                &[0.3, 0.7],
                EVAL_BATCH / 2 + 2,
                4,
            );
            for par in [
                Parallelism::Off,
                Parallelism::Fixed(2),
                Parallelism::Fixed(7),
            ] {
                let new = batched_logits(&prepared, &samples, par);
                let old = batched_logits_rematerializing(&model, &samples, par);
                assert_eq!(new, old, "{quant:?} under {par:?}");
            }
        }
    }

    #[test]
    fn empty_set_yields_no_logits() {
        let model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(2));
        assert!(batched_logits(&model.prepare(), &[], Parallelism::Auto).is_empty());
        assert!(batched_logits_rematerializing(&model, &[], Parallelism::Auto).is_empty());
    }
}
