//! Chunked batched inference over sample sets.
//!
//! Every sample-sweep in `pivot-core` (cache builds, cascade evaluation,
//! ladder evaluation) needs the same primitive: per-sample logits for a
//! list of images. [`batched_logits`] runs them through
//! [`VisionTransformer::forward_batch`] in fixed-size chunks distributed
//! over the worker pool, so each model layer runs one wide GEMM per chunk
//! instead of one GEMM per sample, and each layer's effective
//! (fake-quantized) weight is materialized once per chunk.
//!
//! `forward_batch` is bit-identical to per-sample `infer` row by row, and
//! chunk boundaries only decide which rows share a GEMM — so the returned
//! logits are bit-identical to the per-sample path for every chunk size,
//! worker count, and scheduling.

use crate::parallel::{par_map, Parallelism};
use pivot_data::Sample;
use pivot_tensor::Matrix;
use pivot_vit::VisionTransformer;

/// Samples per `forward_batch` call.
///
/// Large enough to amortize per-layer weight materialization and to feed
/// the blocked matmul kernel multi-tile row counts; small enough that a
/// chunk's activations stay cache-resident and the worker pool has
/// chunks to balance across threads.
pub const EVAL_BATCH: usize = 32;

/// Per-sample logits (`1 x num_classes` each, in item order) for arbitrary
/// items carrying an image, computed in [`EVAL_BATCH`]-sized chunks on the
/// worker pool.
pub fn batched_logits_with<T: Sync>(
    model: &VisionTransformer,
    items: &[T],
    image: impl for<'a> Fn(&'a T) -> &'a Matrix + Sync,
    par: Parallelism,
) -> Vec<Matrix> {
    let ranges: Vec<(usize, usize)> = (0..items.len())
        .step_by(EVAL_BATCH)
        .map(|start| (start, (start + EVAL_BATCH).min(items.len())))
        .collect();
    let chunks = par_map(&ranges, par, |_, &(start, end)| {
        let images: Vec<Matrix> = items[start..end].iter().map(|t| image(t).clone()).collect();
        model.forward_batch(&images)
    });
    chunks
        .iter()
        .flat_map(|logits| (0..logits.rows()).map(|r| logits.slice_rows(r, r + 1)))
        .collect()
}

/// [`batched_logits_with`] over labeled samples.
pub fn batched_logits(
    model: &VisionTransformer,
    samples: &[Sample],
    par: Parallelism,
) -> Vec<Matrix> {
    batched_logits_with(model, samples, |s| &s.image, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    #[test]
    fn batched_logits_are_bit_identical_to_per_sample_infer() {
        let model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(0));
        // More samples than one chunk, with a ragged tail.
        let samples = Dataset::generate_difficulty_stripes(
            &DatasetConfig::small(),
            &[0.2, 0.8],
            EVAL_BATCH / 2 + 3,
            1,
        );
        assert!(samples.len() > EVAL_BATCH && !samples.len().is_multiple_of(EVAL_BATCH));
        for par in [Parallelism::Off, Parallelism::Fixed(4)] {
            let logits = batched_logits(&model, &samples, par);
            assert_eq!(logits.len(), samples.len());
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(logits[i], model.infer(&s.image), "sample {i} under {par:?}");
            }
        }
    }

    #[test]
    fn empty_set_yields_no_logits() {
        let model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(2));
        assert!(batched_logits(&model, &[], Parallelism::Auto).is_empty());
    }
}
