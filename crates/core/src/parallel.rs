//! Deterministic persistent worker pool for batched evaluation.
//!
//! Every parallel operation in `pivot-core` funnels through [`par_map`],
//! which distributes items over a **long-lived pool** of worker threads
//! (spawned once, on first use) and writes each result into its item's slot,
//! so outputs come back **in item order**. The per-item closures are pure,
//! so the output is bit-identical to a sequential map regardless of worker
//! count or scheduling — the property the `seq == par` proptests in
//! `cascade`/`phase1` pin down.
//!
//! # Pool lifecycle
//!
//! The pool is a process-wide singleton holding
//! `available_parallelism() - 1` detached threads that block on an MPSC
//! channel of jobs. A [`par_map`] call packages its closure and an atomic
//! work counter into one job, sends a handle per helper worker, and then
//! **participates itself**: the calling thread drains the same index queue
//! as the helpers. That keeps a single-core host (zero pool threads) fully
//! functional, and makes nested `par_map` calls deadlock-free — a caller
//! never blocks waiting for a worker to be free, it just does the work.
//! Worker panics are caught, forwarded to the caller, and re-thrown there;
//! the pool threads themselves never die.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// How much host parallelism an evaluation may use.
///
/// Threaded through [`MultiEffortVit`](crate::MultiEffortVit),
/// [`CascadeCache`](crate::CascadeCache),
/// [`Phase2Search`](crate::Phase2Search) and
/// [`select_optimal_path_with`](crate::phase1::select_optimal_path_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available hardware thread (the default).
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least one).
    Fixed(usize),
    /// Strictly sequential execution on the calling thread.
    Off,
}

impl Parallelism {
    /// The number of workers used for a batch of `items` work items.
    pub fn workers(&self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(items).max(1)
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One `par_map` invocation, shared between the caller and the pool
/// threads that picked the job up.
///
/// `run` is a lifetime-erased borrow of the caller's stack closure. The
/// safety argument for the erasure: a worker only invokes `run(i)` for an
/// index `i < total` it claimed from `next`, and the caller cannot leave
/// [`par_map`] (and so cannot drop the closure) until `completed == total`,
/// which requires that very invocation to have finished. A worker that
/// claims `i >= total` touches only the atomics, which stay alive through
/// the `Arc`.
struct Task {
    run: &'static (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    completed: Mutex<usize>,
    finished: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Drains the task's index queue on the current thread.
fn work(task: &Task) {
    loop {
        let i = task.next.fetch_add(1, Ordering::Relaxed);
        if i >= task.total {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (task.run)(i))) {
            let mut slot = lock(&task.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = lock(&task.completed);
        *done += 1;
        if *done == task.total {
            task.finished.notify_all();
        }
    }
}

/// The process-wide persistent pool: detached threads blocking on a job
/// channel. Created lazily by the first multi-worker [`par_map`] call.
struct WorkerPool {
    sender: Mutex<Sender<Arc<Task>>>,
    threads: usize,
}

impl WorkerPool {
    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    fn new() -> Self {
        // The caller participates in every job, so the pool itself only
        // needs the *extra* hardware threads.
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        let (sender, receiver) = std::sync::mpsc::channel::<Arc<Task>>();
        let receiver = Arc::new(Mutex::new(receiver));
        for i in 0..threads {
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("pivot-worker-{i}"))
                .spawn(move || worker_loop(&receiver))
                .expect("failed to spawn pool worker");
        }
        Self {
            sender: Mutex::new(sender),
            threads,
        }
    }

    /// Extra threads available beyond the calling thread.
    fn helper_threads(&self) -> usize {
        self.threads
    }

    fn submit(&self, task: &Arc<Task>, copies: usize) {
        let sender = lock(&self.sender);
        for _ in 0..copies {
            // The receiver lives in detached threads for the process
            // lifetime, so a send can only fail during teardown.
            let _ = sender.send(Arc::clone(task));
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Arc<Task>>>) {
    loop {
        let job = lock(receiver).recv();
        match job {
            Ok(task) => work(&task),
            Err(_) => return,
        }
    }
}

/// Pointer into the caller's result vector; each index is written by
/// exactly one worker (indices are handed out by `fetch_add`), so sharing
/// it across threads is sound.
struct SlotWriter<R>(*mut Option<R>);

impl<R> SlotWriter<R> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one worker, and the
    /// slot vector must outlive the write.
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { self.0.add(i).write(Some(value)) };
    }
}

impl<R> Clone for SlotWriter<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SlotWriter<R> {}
unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

/// Maps `f` over `items` on the persistent worker pool, returning results
/// in item order.
///
/// Work is handed out through an atomic counter, so long items do not
/// stall idle workers, and each result lands in its item's pre-allocated
/// slot. The calling thread always participates in the job, so the call
/// works (and stays deadlock-free under nesting) even with zero pool
/// threads. With [`Parallelism::Off`] (or a single worker) this
/// degenerates to a plain sequential map with no synchronization overhead.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker (the call still
/// waits for every item to settle first).
pub fn par_map<T, R, F>(items: &[T], par: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.workers(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let pool = WorkerPool::global();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    {
        let slot_writer = SlotWriter(slots.as_mut_ptr());
        let run = |i: usize| {
            let r = f(i, &items[i]);
            // Safety: `i` was claimed by exactly one worker, and the
            // caller does not read the slots until every index completed.
            unsafe { slot_writer.write(i, r) };
        };
        let run_ref: &(dyn Fn(usize) + Sync) = &run;
        // Safety: lifetime erasure justified in the `Task` docs — the
        // closure outlives every `run` invocation because the wait below
        // only returns once all claimed indices have completed.
        let run_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run_ref) };
        let task = Arc::new(Task {
            run: run_static,
            next: AtomicUsize::new(0),
            total: items.len(),
            completed: Mutex::new(0),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        });

        pool.submit(&task, (workers - 1).min(pool.helper_threads()));
        work(&task);

        let mut done = lock(&task.completed);
        while *done < task.total {
            done = task
                .finished
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);

        let payload = lock(&task.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_fixed_one_are_sequential() {
        assert_eq!(Parallelism::Off.workers(100), 1);
        assert_eq!(Parallelism::Fixed(1).workers(100), 1);
        assert_eq!(Parallelism::Fixed(0).workers(100), 1);
    }

    #[test]
    fn workers_clamp_to_item_count() {
        assert_eq!(Parallelism::Fixed(8).workers(3), 3);
        assert_eq!(Parallelism::Fixed(8).workers(0), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
        ] {
            let out = par_map(&items, par, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "order broken under {par:?}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, Parallelism::Auto, |_, &x| x).is_empty());
        assert_eq!(
            par_map(&[41u32], Parallelism::Fixed(4), |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn par_map_matches_sequential_for_float_reduction() {
        // Per-item float results must be bit-identical: each item is
        // computed by exactly one worker with the same instructions.
        let items: Vec<f64> = (0..1000).map(|i| i as f64 * 0.37).collect();
        let seq = par_map(&items, Parallelism::Off, |_, &x| {
            (x.sin() * x.cos()).to_bits()
        });
        let par = par_map(&items, Parallelism::Fixed(5), |_, &x| {
            (x.sin() * x.cos()).to_bits()
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The persistent pool must stay healthy across repeated jobs of
        // varying size (this would leak or deadlock with a broken queue).
        for round in 0..50 {
            let items: Vec<usize> = (0..round * 3 + 1).collect();
            let out = par_map(&items, Parallelism::Fixed(4), |_, &x| x + round);
            assert_eq!(out.len(), items.len());
            assert_eq!(out[0], round);
        }
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        // Outer workers issue inner jobs; since every caller drains its
        // own queue, this must complete even when the pool is saturated.
        let outer: Vec<usize> = (0..8).collect();
        let result = par_map(&outer, Parallelism::Fixed(4), |_, &o| {
            let inner: Vec<usize> = (0..16).collect();
            par_map(&inner, Parallelism::Fixed(4), |_, &i| i * o)
                .into_iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&o| o * 120).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, Parallelism::Fixed(4), |_, &x| {
                assert!(x != 17, "poison item");
                x
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poison item"), "unexpected payload: {msg}");

        // The pool must remain usable after a panicked job.
        let ok = par_map(&items, Parallelism::Fixed(4), |_, &x| x * 2);
        assert_eq!(ok[17], 34);
    }
}
