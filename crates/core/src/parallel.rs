//! Deterministic scoped-thread worker pool for batched evaluation.
//!
//! Every parallel operation in `pivot-core` funnels through [`par_map`],
//! which distributes items over `std::thread::scope` workers with a shared
//! atomic work queue and then **reassembles results in item order**. The
//! per-item closures are pure, so the output is bit-identical to a
//! sequential map regardless of worker count or scheduling — the property
//! the `seq == par` proptests in `cascade`/`phase1` pin down.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How much host parallelism an evaluation may use.
///
/// Threaded through [`MultiEffortVit`](crate::MultiEffortVit),
/// [`CascadeCache`](crate::CascadeCache),
/// [`Phase2Search`](crate::Phase2Search) and
/// [`select_optimal_path_with`](crate::phase1::select_optimal_path_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available hardware thread (the default).
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least one).
    Fixed(usize),
    /// Strictly sequential execution on the calling thread.
    Off,
}

impl Parallelism {
    /// The number of workers used for a batch of `items` work items.
    pub fn workers(&self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(items).max(1)
    }
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// item order.
///
/// Work is handed out through an atomic counter, so long items do not
/// stall idle workers; each worker accumulates `(index, result)` pairs
/// locally and the pool re-slots them by index afterwards. With
/// [`Parallelism::Off`] (or a single worker) this degenerates to a plain
/// sequential map with no thread or allocation overhead.
///
/// # Panics
///
/// Propagates panics from `f` (the pool joins all workers first).
pub fn par_map<T, R, F>(items: &[T], par: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.workers(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    // Reassemble in item order so the result is independent of scheduling.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_fixed_one_are_sequential() {
        assert_eq!(Parallelism::Off.workers(100), 1);
        assert_eq!(Parallelism::Fixed(1).workers(100), 1);
        assert_eq!(Parallelism::Fixed(0).workers(100), 1);
    }

    #[test]
    fn workers_clamp_to_item_count() {
        assert_eq!(Parallelism::Fixed(8).workers(3), 3);
        assert_eq!(Parallelism::Fixed(8).workers(0), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for par in [
            Parallelism::Off,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
        ] {
            let out = par_map(&items, par, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "order broken under {par:?}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, Parallelism::Auto, |_, &x| x).is_empty());
        assert_eq!(
            par_map(&[41u32], Parallelism::Fixed(4), |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn par_map_matches_sequential_for_float_reduction() {
        // Per-item float results must be bit-identical: each item is
        // computed by exactly one worker with the same instructions.
        let items: Vec<f64> = (0..1000).map(|i| i as f64 * 0.37).collect();
        let seq = par_map(&items, Parallelism::Off, |_, &x| {
            (x.sin() * x.cos()).to_bits()
        });
        let par = par_map(&items, Parallelism::Fixed(5), |_, &x| {
            (x.sin() * x.cos()).to_bits()
        });
        assert_eq!(seq, par);
    }
}
