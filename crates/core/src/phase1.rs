//! Phase 1: optimal path selection per effort (paper Fig. 2b).

use crate::parallel::{par_map, Parallelism};
use crate::{path_score, PathConfig};
use pivot_cka::CkaMatrix;

/// A path together with its Algorithm-1 score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPath {
    /// The path.
    pub path: PathConfig,
    /// Its Path-Score `S`.
    pub score: f32,
}

/// Result of Phase 1 for one effort: the optimal path and, for analysis
/// (paper Fig. 4a), every candidate scored.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Result {
    /// The effort this result is for.
    pub effort: usize,
    /// The highest-scoring path — the paper's *Optimal Path*.
    pub optimal: ScoredPath,
    /// All candidates in descending score order.
    pub ranked: Vec<ScoredPath>,
}

/// Selects the optimal path for one effort by exhaustively scoring all
/// `C(depth, effort)` placements with Algorithm 1.
///
/// Ties are broken toward paths whose active attentions sit earlier
/// (matching the paper's Fig. 9 observation that skips concentrate in
/// deeper layers, where CKA is higher).
///
/// # Panics
///
/// Panics if `effort > cka.depth()`.
pub fn select_optimal_path(effort: usize, cka: &CkaMatrix) -> Phase1Result {
    select_optimal_path_with(effort, cka, Parallelism::Auto)
}

/// [`select_optimal_path`] with explicit parallelism: the `C(depth,
/// effort)` candidate paths are scored across the worker pool. Scores are
/// computed per path and re-assembled in enumeration order before the
/// (deterministic) sort, so the result is bit-identical to sequential
/// execution for every `par`.
///
/// # Panics
///
/// Panics if `effort > cka.depth()`.
pub fn select_optimal_path_with(effort: usize, cka: &CkaMatrix, par: Parallelism) -> Phase1Result {
    let depth = cka.depth();
    assert!(effort <= depth, "effort {effort} exceeds depth {depth}");
    let paths = PathConfig::enumerate(depth, effort);
    let scores = par_map(&paths, par, |_, path| path_score(path, cka));
    let mut ranked: Vec<ScoredPath> = paths
        .into_iter()
        .zip(scores)
        .map(|(path, score)| ScoredPath { path, score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.path.active().cmp(b.path.active()))
    });
    let optimal = ranked.first().expect("at least one path").clone();
    Phase1Result {
        effort,
        optimal,
        ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Matrix;

    /// A CKA matrix that increases toward deeper layers, like the paper's
    /// Fig. 3a for DeiT-S.
    fn deep_redundancy_cka(depth: usize) -> CkaMatrix {
        let mut m = Matrix::zeros(depth, depth);
        for i in 0..depth {
            for j in (i + 1)..depth {
                m[(i, j)] = 0.2 + 0.7 * (j as f32 / depth as f32);
            }
        }
        CkaMatrix::from_matrix(m)
    }

    #[test]
    fn optimal_is_max_score() {
        let cka = deep_redundancy_cka(8);
        let result = select_optimal_path(4, &cka);
        assert_eq!(result.ranked.len(), 70); // C(8,4)
        for sp in &result.ranked {
            assert!(sp.score <= result.optimal.score + 1e-6);
        }
    }

    #[test]
    fn deep_redundancy_pushes_skips_to_deep_layers() {
        // With CKA rising toward deep layers, the optimal path should skip
        // deeper encoders (paper Fig. 9).
        let cka = deep_redundancy_cka(12);
        let result = select_optimal_path(6, &cka);
        let skipped = result.optimal.path.skipped();
        let mean_skip: f32 = skipped.iter().map(|&i| i as f32).sum::<f32>() / skipped.len() as f32;
        assert!(
            mean_skip > 5.5,
            "skips {skipped:?} not biased deep (mean {mean_skip})"
        );
    }

    #[test]
    fn ranked_is_sorted_descending() {
        let cka = deep_redundancy_cka(7);
        let result = select_optimal_path(3, &cka);
        for w in result.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn full_effort_has_single_zero_score_path() {
        let cka = deep_redundancy_cka(5);
        let result = select_optimal_path(5, &cka);
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.optimal.score, 0.0);
        assert_eq!(result.optimal.path, PathConfig::full(5));
    }

    #[test]
    fn zero_effort_is_single_path() {
        let cka = deep_redundancy_cka(5);
        let result = select_optimal_path(0, &cka);
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.optimal.path.effort(), 0);
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        let cka = deep_redundancy_cka(10);
        let seq = select_optimal_path_with(5, &cka, Parallelism::Off);
        for par in [
            Parallelism::Auto,
            Parallelism::Fixed(2),
            Parallelism::Fixed(13),
        ] {
            let p = select_optimal_path_with(5, &cka, par);
            assert_eq!(seq.ranked.len(), p.ranked.len());
            for (a, b) in seq.ranked.iter().zip(&p.ranked) {
                assert_eq!(a.path, b.path, "path order differs under {par:?}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "score differs under {par:?}"
                );
            }
        }
    }
}
