//! Phase 1: optimal path selection per effort (paper Fig. 2b).

use crate::{path_score, PathConfig};
use pivot_cka::CkaMatrix;

/// A path together with its Algorithm-1 score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPath {
    /// The path.
    pub path: PathConfig,
    /// Its Path-Score `S`.
    pub score: f32,
}

/// Result of Phase 1 for one effort: the optimal path and, for analysis
/// (paper Fig. 4a), every candidate scored.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Result {
    /// The effort this result is for.
    pub effort: usize,
    /// The highest-scoring path — the paper's *Optimal Path*.
    pub optimal: ScoredPath,
    /// All candidates in descending score order.
    pub ranked: Vec<ScoredPath>,
}

/// Selects the optimal path for one effort by exhaustively scoring all
/// `C(depth, effort)` placements with Algorithm 1.
///
/// Ties are broken toward paths whose active attentions sit earlier
/// (matching the paper's Fig. 9 observation that skips concentrate in
/// deeper layers, where CKA is higher).
///
/// # Panics
///
/// Panics if `effort > cka.depth()`.
pub fn select_optimal_path(effort: usize, cka: &CkaMatrix) -> Phase1Result {
    let depth = cka.depth();
    assert!(effort <= depth, "effort {effort} exceeds depth {depth}");
    let mut ranked: Vec<ScoredPath> = PathConfig::enumerate(depth, effort)
        .into_iter()
        .map(|path| {
            let score = path_score(&path, cka);
            ScoredPath { path, score }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.path.active().cmp(b.path.active()))
    });
    let optimal = ranked.first().expect("at least one path").clone();
    Phase1Result { effort, optimal, ranked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Matrix;

    /// A CKA matrix that increases toward deeper layers, like the paper's
    /// Fig. 3a for DeiT-S.
    fn deep_redundancy_cka(depth: usize) -> CkaMatrix {
        let mut m = Matrix::zeros(depth, depth);
        for i in 0..depth {
            for j in (i + 1)..depth {
                m[(i, j)] = 0.2 + 0.7 * (j as f32 / depth as f32);
            }
        }
        CkaMatrix::from_matrix(m)
    }

    #[test]
    fn optimal_is_max_score() {
        let cka = deep_redundancy_cka(8);
        let result = select_optimal_path(4, &cka);
        assert_eq!(result.ranked.len(), 70); // C(8,4)
        for sp in &result.ranked {
            assert!(sp.score <= result.optimal.score + 1e-6);
        }
    }

    #[test]
    fn deep_redundancy_pushes_skips_to_deep_layers() {
        // With CKA rising toward deep layers, the optimal path should skip
        // deeper encoders (paper Fig. 9).
        let cka = deep_redundancy_cka(12);
        let result = select_optimal_path(6, &cka);
        let skipped = result.optimal.path.skipped();
        let mean_skip: f32 =
            skipped.iter().map(|&i| i as f32).sum::<f32>() / skipped.len() as f32;
        assert!(mean_skip > 5.5, "skips {skipped:?} not biased deep (mean {mean_skip})");
    }

    #[test]
    fn ranked_is_sorted_descending() {
        let cka = deep_redundancy_cka(7);
        let result = select_optimal_path(3, &cka);
        for w in result.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn full_effort_has_single_zero_score_path() {
        let cka = deep_redundancy_cka(5);
        let result = select_optimal_path(5, &cka);
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.optimal.score, 0.0);
        assert_eq!(result.optimal.path, PathConfig::full(5));
    }

    #[test]
    fn zero_effort_is_single_path() {
        let cka = deep_redundancy_cka(5);
        let result = select_optimal_path(0, &cka);
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.optimal.path.effort(), 0);
    }
}
