//! Deterministic fault injection: bit flips, NaN and stuck-at faults.
//!
//! Edge accelerators hold quantized weights in SRAM and stream checkpoints
//! over flaky links; single-event upsets, stuck cells and torn writes are
//! routine. This module corrupts weights, activations and checkpoint bytes
//! *reproducibly* — every fault position and pattern derives from the
//! in-tree xoshiro [`Rng`], so an accuracy-under-fault curve (see the
//! `fault_injection` experiment in `pivot-bench`) is replayable from a
//! single seed.
//!
//! The injector is deliberately model-agnostic: it mutates `Matrix` buffers
//! and parameter lists, and the degradation machinery in
//! [`cascade`](crate::cascade) / [`multilevel`](crate::multilevel) is what
//! turns the resulting non-finite logits into graceful fallbacks instead of
//! aborts.

use pivot_tensor::{Matrix, Rng};
use pivot_vit::VisionTransformer;

/// The hardware fault model applied to one `f32` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one uniformly chosen bit of the IEEE-754 representation — the
    /// classic single-event-upset model. Exponent-bit flips produce huge or
    /// non-finite values; mantissa flips produce small perturbations.
    BitFlip,
    /// The value reads back as NaN (e.g. a poisoned DMA descriptor).
    StuckNan,
    /// The cell is stuck at zero.
    StuckZero,
    /// The cell is stuck at the maximum representable magnitude, keeping
    /// the original sign (saturated stuck-at-one on the exponent field).
    StuckMax,
}

impl FaultKind {
    /// All fault models, for sweeps.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::StuckNan,
        FaultKind::StuckZero,
        FaultKind::StuckMax,
    ];

    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::StuckNan => "stuck-nan",
            FaultKind::StuckZero => "stuck-zero",
            FaultKind::StuckMax => "stuck-max",
        }
    }
}

/// One injected fault, for reporting and replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Index of the corrupted parameter tensor (for
    /// [`FaultInjector::inject_params`]) or 0 for single-matrix injection.
    pub param: usize,
    /// Flat element index within the tensor.
    pub index: usize,
    /// Value before corruption.
    pub before: f32,
    /// Value after corruption.
    pub after: f32,
}

/// Seeded source of reproducible faults.
///
/// Two injectors built from the same seed corrupt the same positions with
/// the same patterns, independent of platform — the property the
/// accuracy-under-fault experiment and CI smoke test rely on.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
}

impl FaultInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Rng::new(seed),
        }
    }

    /// Corrupts one value under the given fault model.
    pub fn corrupt_value(&mut self, x: f32, kind: FaultKind) -> f32 {
        match kind {
            FaultKind::BitFlip => f32::from_bits(x.to_bits() ^ (1u32 << self.rng.below(32))),
            FaultKind::StuckNan => f32::NAN,
            FaultKind::StuckZero => 0.0,
            FaultKind::StuckMax => f32::MAX.copysign(if x == 0.0 { 1.0 } else { x }),
        }
    }

    /// Injects `count` faults at uniformly chosen positions of a matrix.
    ///
    /// Positions are drawn independently (with replacement, like real
    /// upsets). Returns the injected faults in order. A zero-sized matrix
    /// receives no faults.
    pub fn inject_matrix(
        &mut self,
        m: &mut Matrix,
        kind: FaultKind,
        count: usize,
    ) -> Vec<InjectedFault> {
        if m.is_empty() {
            return Vec::new();
        }
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let index = self.rng.below(m.len());
            let before = m.as_slice()[index];
            let after = self.corrupt_value(before, kind);
            m.as_mut_slice()[index] = after;
            faults.push(InjectedFault {
                param: 0,
                index,
                before,
                after,
            });
        }
        faults
    }

    /// Injects `count` faults into a model's parameters, choosing positions
    /// uniformly over *all* weights (larger tensors absorb proportionally
    /// more faults, matching a physical SRAM fault model).
    pub fn inject_params(
        &mut self,
        model: &mut VisionTransformer,
        kind: FaultKind,
        count: usize,
    ) -> Vec<InjectedFault> {
        let mut params = model.params_mut();
        let sizes: Vec<usize> = params.iter().map(|p| p.value.len()).collect();
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let mut flat = self.rng.below(total);
            let mut param = 0;
            while flat >= sizes[param] {
                flat -= sizes[param];
                param += 1;
            }
            let before = params[param].value.as_slice()[flat];
            let after = self.corrupt_value(before, kind);
            params[param].value.as_mut_slice()[flat] = after;
            faults.push(InjectedFault {
                param,
                index: flat,
                before,
                after,
            });
        }
        faults
    }

    /// Derives a deterministic latency-fault schedule: each
    /// [`StallSchedule::next_stall`] call independently stalls with
    /// probability `permille`/1000, for a uniformly chosen duration in
    /// `[min, max]`.
    ///
    /// Timing faults (a preempted core, a DMA retry, a thermally throttled
    /// burst) are what make deadline-sensitive serving fragile, and they
    /// are the hardest faults to test because real stalls are wall-clock
    /// flaky. The schedule moves the nondeterminism into the seed: the
    /// serving engine charges each scheduled stall to its clock (a manual
    /// test clock or a real sleep), so deadline-miss and timeout paths
    /// replay bit-identically from one seed with no actual waiting.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000` or `max < min`.
    pub fn stall_schedule(
        &mut self,
        permille: u32,
        min: std::time::Duration,
        max: std::time::Duration,
    ) -> StallSchedule {
        assert!(
            permille <= 1000,
            "stall probability is per-mille (0..=1000)"
        );
        assert!(max >= min, "max stall must be at least min stall");
        StallSchedule {
            rng: self.rng.fork(0x57a1_1ed0),
            permille,
            min_ns: min.as_nanos() as u64,
            max_ns: max.as_nanos() as u64,
        }
    }

    /// Corrupts `count` bytes of a serialized artifact (e.g. checkpoint
    /// bytes) at uniformly chosen positions. Each corruption XORs a
    /// non-zero mask, so the byte is guaranteed to change. Returns the
    /// corrupted positions.
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8], count: usize) -> Vec<usize> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let mut positions = Vec::with_capacity(count);
        for _ in 0..count {
            let pos = self.rng.below(bytes.len());
            let mask = 1u8 + self.rng.below(255) as u8;
            bytes[pos] ^= mask;
            positions.push(pos);
        }
        positions
    }
}

/// A deterministic stream of stall decisions (see
/// [`FaultInjector::stall_schedule`]). Two schedules derived from
/// equal-seeded injectors with the same parameters produce the same
/// sequence of stalls, independent of platform.
#[derive(Debug, Clone)]
pub struct StallSchedule {
    rng: Rng,
    permille: u32,
    min_ns: u64,
    max_ns: u64,
}

impl StallSchedule {
    /// Draws the next stall decision: `None` (no stall this step) or the
    /// stall duration. Every call advances the schedule, hit or miss, so
    /// consumers that poll at different granularities still replay the
    /// same sequence step-for-step.
    pub fn next_stall(&mut self) -> Option<std::time::Duration> {
        // Draw position before deciding, so the duration stream stays
        // aligned with the decision stream across probabilities.
        let span = self.max_ns - self.min_ns;
        let offset = if span == 0 {
            0
        } else {
            self.rng.next_u64() % (span + 1)
        };
        let hit = (self.rng.below(1000) as u32) < self.permille;
        hit.then(|| std::time::Duration::from_nanos(self.min_ns + offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{par_map, Parallelism};
    use pivot_vit::VitConfig;

    fn model(seed: u64) -> VisionTransformer {
        VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(seed))
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let mut a = model(1);
        let mut b = model(1);
        let fa = FaultInjector::new(42).inject_params(&mut a, FaultKind::BitFlip, 16);
        let fb = FaultInjector::new(42).inject_params(&mut b, FaultKind::BitFlip, 16);
        assert_eq!(fa, fb);
        // The corrupted models agree bitwise on a forward pass.
        let img = Matrix::zeros(16, 16);
        assert_eq!(a.infer(&img), b.infer(&img));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = model(2);
        let mut b = model(2);
        let fa = FaultInjector::new(1).inject_params(&mut a, FaultKind::BitFlip, 8);
        let fb = FaultInjector::new(2).inject_params(&mut b, FaultKind::BitFlip, 8);
        assert_ne!(fa, fb);
    }

    #[test]
    fn stuck_models_apply_their_pattern() {
        let mut inj = FaultInjector::new(7);
        assert!(inj.corrupt_value(1.5, FaultKind::StuckNan).is_nan());
        assert_eq!(inj.corrupt_value(1.5, FaultKind::StuckZero), 0.0);
        assert_eq!(inj.corrupt_value(-1.5, FaultKind::StuckMax), f32::MIN);
        assert_eq!(inj.corrupt_value(1.5, FaultKind::StuckMax), f32::MAX);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut inj = FaultInjector::new(9);
        for _ in 0..64 {
            let x = 0.714f32;
            let y = inj.corrupt_value(x, FaultKind::BitFlip);
            assert_eq!((x.to_bits() ^ y.to_bits()).count_ones(), 1);
        }
    }

    #[test]
    fn stall_schedule_is_deterministic_per_seed() {
        use std::time::Duration;
        let make = |seed: u64| {
            FaultInjector::new(seed).stall_schedule(
                250,
                Duration::from_millis(1),
                Duration::from_millis(20),
            )
        };
        let a: Vec<_> = (0..256)
            .map({
                let mut s = make(7);
                move |_| s.next_stall()
            })
            .collect();
        let b: Vec<_> = (0..256)
            .map({
                let mut s = make(7);
                move |_| s.next_stall()
            })
            .collect();
        assert_eq!(a, b, "same seed must replay the same stall sequence");
        let c: Vec<_> = (0..256)
            .map({
                let mut s = make(8);
                move |_| s.next_stall()
            })
            .collect();
        assert_ne!(a, c, "different seeds must differ");
        // Roughly a quarter of steps stall, and every stall is in range.
        let hits: Vec<_> = a.iter().flatten().collect();
        assert!(
            hits.len() > 256 / 8 && hits.len() < 256 / 2,
            "{}",
            hits.len()
        );
        for d in hits {
            assert!(*d >= Duration::from_millis(1) && *d <= Duration::from_millis(20));
        }
    }

    #[test]
    fn stall_schedule_edge_probabilities() {
        use std::time::Duration;
        let mut never = FaultInjector::new(1).stall_schedule(
            0,
            Duration::from_millis(5),
            Duration::from_millis(5),
        );
        assert!((0..64).all(|_| never.next_stall().is_none()));
        let mut always = FaultInjector::new(1).stall_schedule(
            1000,
            Duration::from_millis(5),
            Duration::from_millis(5),
        );
        for _ in 0..64 {
            assert_eq!(always.next_stall(), Some(Duration::from_millis(5)));
        }
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn stall_schedule_rejects_overflowing_probability() {
        let _ = FaultInjector::new(0).stall_schedule(
            1001,
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
    }

    #[test]
    fn corrupt_bytes_always_changes_the_byte() {
        let original: Vec<u8> = (0..=255).collect();
        let mut bytes = original.clone();
        let positions = FaultInjector::new(3).corrupt_bytes(&mut bytes, 64);
        assert_eq!(positions.len(), 64);
        for &p in &positions {
            assert_ne!(bytes[p], original[p], "byte {p} unchanged");
        }
    }

    #[test]
    fn nan_faults_reach_the_logits() {
        // Saturating every parameter tensor with NaN guarantees the fault
        // propagates to the output — the signal the cascade's degradation
        // path keys on.
        let mut m = model(4);
        FaultInjector::new(5).inject_params(&mut m, FaultKind::StuckNan, 10_000);
        let logits = m.infer(&Matrix::zeros(16, 16));
        assert!(!logits.is_all_finite());
    }

    #[test]
    fn int8_stuck_nan_faults_stay_visible_through_fake_quant() {
        // Regression for the NaN-laundering bug: `QuantParams::quantize`
        // saturating-cast NaN to 0 — the zero point — so fake-quantized
        // Int8 inference silently dequantized injected NaNs to finite
        // values and health checks (`is_all_finite`, guarded evaluation)
        // never saw the fault. `fake_quant` must propagate non-finite
        // values unchanged, and the prepared view must both surface NaN
        // logits and count the corrupted weights as saturated.
        let mut m = model(42);
        m.set_quant_mode(pivot_nn::QuantMode::Int8);
        FaultInjector::new(43).inject_params(&mut m, FaultKind::StuckNan, 10_000);
        let logits = m.infer(&Matrix::zeros(16, 16));
        assert!(
            !logits.is_all_finite(),
            "Int8 fake-quant must not launder stuck-NaN faults to finite logits"
        );
        let prepared = m.prepare();
        assert!(!prepared.infer(&Matrix::zeros(16, 16)).is_all_finite());
        assert!(
            prepared.total_weight_saturation() > 0,
            "NaN weights must register as saturation in the prepared params"
        );
    }

    #[test]
    fn saturation_counters_localize_int8_faults() {
        let mut m = model(6);
        m.set_quant_mode(pivot_nn::QuantMode::Int8);
        assert_eq!(m.total_weight_saturation(), 0);
        FaultInjector::new(8).inject_params(&mut m, FaultKind::StuckNan, 12);
        let total = m.total_weight_saturation();
        assert!(total > 0, "injected NaNs must register as saturation");
        assert!(total <= 12);
        // The per-layer report pins the damage to specific layers.
        let layered: usize = m.quant_saturation_report().iter().map(|(_, n)| n).sum();
        assert_eq!(layered, total);
    }

    /// The worker pool must survive a fault-injected forward that panics
    /// inside `par_map` and stay usable for subsequent healthy work.
    #[test]
    fn worker_pool_survives_fault_induced_panics() {
        let mut faulty = model(10);
        FaultInjector::new(11).inject_params(&mut faulty, FaultKind::StuckNan, 10_000);
        let images: Vec<Matrix> = (0..8).map(|_| Matrix::zeros(16, 16)).collect();

        let faulty_ref = &faulty;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&images, Parallelism::Fixed(4), |_, img| {
                let logits = faulty_ref.infer(img);
                logits
                    .validate_finite("logits")
                    .expect("fault-injected forward");
                logits.row_argmax(0)
            })
        }));
        assert!(outcome.is_err(), "non-finite logits must panic in the map");

        // The pool is still alive: a healthy workload completes and matches
        // the sequential reference.
        let healthy = model(10);
        let healthy_ref = &healthy;
        let par = par_map(&images, Parallelism::Fixed(4), |_, img| {
            healthy_ref.infer(img).row_argmax(0)
        });
        let seq: Vec<usize> = images
            .iter()
            .map(|img| healthy.infer(img).row_argmax(0))
            .collect();
        assert_eq!(par, seq);
    }
}
