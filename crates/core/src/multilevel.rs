//! Multi-level effort cascades — the natural extension of the paper's
//! two-effort scheme (Section 5 positions PIVOT as a framework for future
//! ViT-hardware co-optimization; a deeper effort ladder is the first step).
//!
//! An [`EffortLadder`] holds `N >= 2` efforts with `N - 1` increasing
//! entropy thresholds: an input ascends the ladder until its entropy at
//! some level falls below that level's threshold (the last level accepts
//! everything). With `N = 2` this is exactly the paper's low/high cascade.

use crate::batched::batched_logits_with;
use crate::cache::{DegradationEvent, DegradationReport};
use crate::cascade::CascadeStats;
use crate::parallel::Parallelism;
use pivot_data::Sample;
use pivot_nn::normalized_entropy;
use pivot_tensor::Matrix;
use pivot_vit::{PreparedModel, PreparedStore, StoreStats, VisionTransformer};

/// Outcome of one multi-level inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome {
    /// Index of the level that produced the prediction.
    pub level: usize,
    /// Predicted class.
    pub prediction: usize,
    /// Entropy observed at each visited level.
    pub entropies: Vec<f32>,
}

/// Per-level statistics of a ladder evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LadderStats {
    /// `(classified, correct)` per level.
    pub per_level: Vec<(usize, usize)>,
}

impl LadderStats {
    /// Total inputs evaluated.
    pub fn total(&self) -> usize {
        self.per_level.iter().map(|&(n, _)| n).sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = self.per_level.iter().map(|&(_, c)| c).sum();
        correct as f64 / total as f64
    }

    /// Fraction of inputs classified at each level.
    pub fn level_fractions(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.per_level
            .iter()
            .map(|&(n, _)| n as f64 / total)
            .collect()
    }

    /// Average number of model evaluations per input (1 = every input
    /// exits at the first level).
    pub fn mean_inferences(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .per_level
            .iter()
            .enumerate()
            .map(|(i, &(n, _))| (i + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }
}

/// An `N`-level effort ladder with entropy gates between levels.
///
/// # Example
///
/// ```
/// use pivot_core::multilevel::EffortLadder;
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let cfg = VitConfig::test_small();
/// let mut rng = Rng::new(0);
/// let mut low = VisionTransformer::new(&cfg, &mut rng);
/// low.set_active_attentions(&[0]);
/// let mut mid = low.clone();
/// mid.set_active_attentions(&[0, 1]);
/// let high = low.clone();
/// let ladder = EffortLadder::new(vec![low, mid, high], vec![0.4, 0.7]);
/// let out = ladder.infer(&Matrix::zeros(16, 16));
/// assert!(out.level < 3);
/// ```
#[derive(Debug, Clone)]
pub struct EffortLadder {
    levels: Vec<VisionTransformer>,
    prepared: Vec<PreparedModel>,
    thresholds: Vec<f32>,
    share_stats: StoreStats,
}

impl EffortLadder {
    /// Creates a ladder from models ordered low effort -> high effort and
    /// `levels.len() - 1` thresholds.
    ///
    /// Every level is [prepared](VisionTransformer::prepare) here, once,
    /// through a shared content-addressed [`PreparedStore`]: layers whose
    /// weights and quantization parameters are identical across levels
    /// (in PIVOT's cascades, *every* layer — the levels differ only in
    /// their attention-skip mask) are materialized once and Arc-shared, so
    /// an `N`-level ladder holds ~1x the backbone weights instead of `N`x
    /// (see [`Self::unique_weight_bytes`] and [`Self::share_stats`]). The
    /// ladder exposes no weight-mutating API, so the shared views cannot
    /// go stale, and deduplicated inference is bit-identical to preparing
    /// each level independently.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given, the threshold count is
    /// not `levels - 1`, a threshold is outside `[0, 1]`, or thresholds are
    /// not non-decreasing (a later gate must not be stricter: otherwise an
    /// input could bypass a level it would have accepted).
    pub fn new(levels: Vec<VisionTransformer>, thresholds: Vec<f32>) -> Self {
        Self::with_kernel(levels, thresholds, false)
    }

    /// [`Self::new`] on the packed int8 inference path: every level is
    /// [prepared as int8](VisionTransformer::prepare_int8), so ladder
    /// ascents and batched evaluations run the integer GEMM at a quarter
    /// of the weight memory traffic. The fake-quant [`Self::new`] ladder
    /// stays the accuracy reference.
    pub fn new_int8(levels: Vec<VisionTransformer>, thresholds: Vec<f32>) -> Self {
        Self::with_kernel(levels, thresholds, true)
    }

    fn with_kernel(levels: Vec<VisionTransformer>, thresholds: Vec<f32>, int8: bool) -> Self {
        assert!(levels.len() >= 2, "a ladder needs at least two levels");
        assert_eq!(
            thresholds.len(),
            levels.len() - 1,
            "need one threshold per gate (levels - 1)"
        );
        let mut prev = 0.0f32;
        for &t in &thresholds {
            assert!((0.0..=1.0).contains(&t), "threshold {t} out of [0, 1]");
            assert!(t >= prev, "thresholds must be non-decreasing");
            prev = t;
        }
        let store = PreparedStore::new();
        let prepared = levels
            .iter()
            .map(|m| {
                if int8 {
                    m.prepare_int8_in(&store)
                } else {
                    m.prepare_in(&store)
                }
            })
            .collect();
        let share_stats = store.stats();
        Self {
            levels,
            prepared,
            thresholds,
            share_stats,
        }
    }

    /// Hit/miss and byte accounting of the content-addressed weight store
    /// the levels were prepared through. Levels derived from one backbone
    /// share every layer: the first level misses, every later level hits.
    pub fn share_stats(&self) -> StoreStats {
        self.share_stats
    }

    /// Total prepared weight bytes summed per level, as if each level held
    /// an independent copy (the pre-sharing footprint).
    pub fn weight_bytes(&self) -> usize {
        self.prepared.iter().map(PreparedModel::weight_bytes).sum()
    }

    /// Prepared weight bytes actually resident, counting every Arc-shared
    /// layer once across all levels.
    pub fn unique_weight_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.prepared
            .iter()
            .map(|m| m.unique_weight_bytes_into(&mut seen))
            .sum()
    }

    /// Whether every level runs on the packed int8 kernel (built by
    /// [`Self::new_int8`]).
    pub fn is_int8(&self) -> bool {
        self.prepared.iter().all(PreparedModel::is_int8)
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The level models, low to high effort.
    pub fn levels(&self) -> &[VisionTransformer] {
        &self.levels
    }

    /// The frozen inference views of the levels, prepared at construction
    /// (same order as [`Self::levels`]).
    pub fn prepared_levels(&self) -> &[PreparedModel] {
        &self.prepared
    }

    /// The gate thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Ascends the ladder until a level is confident enough (or the last
    /// level is reached).
    pub fn infer(&self, image: &Matrix) -> LadderOutcome {
        let mut entropies = Vec::new();
        for (i, model) in self.prepared.iter().enumerate() {
            let logits = model.infer(image);
            let entropy = normalized_entropy(&logits);
            entropies.push(entropy);
            let is_last = i == self.prepared.len() - 1;
            if is_last || entropy < self.thresholds[i] {
                return LadderOutcome {
                    level: i,
                    prediction: logits.row_argmax(0),
                    entropies,
                };
            }
        }
        unreachable!("last level always accepts");
    }

    /// Evaluates the ladder on labeled samples, one [`Self::infer`] per
    /// sample (the sequential reference; see [`Self::evaluate_cached`] for
    /// the batched, memoized path).
    pub fn evaluate(&self, samples: &[Sample]) -> LadderStats {
        let mut stats = LadderStats {
            per_level: vec![(0, 0); self.levels.len()],
        };
        for s in samples {
            let out = self.infer(&s.image);
            let entry = &mut stats.per_level[out.level];
            entry.0 += 1;
            entry.1 += (out.prediction == s.label) as usize;
        }
        stats
    }

    /// Creates an empty [`LadderCache`] sized for this ladder and
    /// `n_samples` calibration samples.
    pub fn cache(&self, n_samples: usize) -> LadderCache {
        LadderCache::new(self.levels.len(), n_samples)
    }

    /// Batched ladder evaluation through a [`LadderCache`]: level-by-level
    /// wide GEMM sweeps, inferring only samples that reach a level and are
    /// not already memoized there. Bit-identical to [`Self::evaluate`].
    pub fn evaluate_cached(
        &self,
        samples: &[Sample],
        cache: &mut LadderCache,
        par: Parallelism,
    ) -> LadderStats {
        cache.evaluate(&self.prepared, samples, &self.thresholds, par)
    }

    /// [`Self::evaluate`] through the batched pipeline without keeping the
    /// memo around.
    pub fn evaluate_batched(&self, samples: &[Sample], par: Parallelism) -> LadderStats {
        self.evaluate_cached(samples, &mut self.cache(samples.len()), par)
    }

    /// [`Self::evaluate_batched`] with fault accounting (DESIGN.md §5):
    /// returns the statistics together with a [`DegradationReport`] of
    /// every sample that hit non-finite values on its way up the ladder.
    pub fn evaluate_guarded(
        &self,
        samples: &[Sample],
        par: Parallelism,
    ) -> (LadderStats, DegradationReport) {
        self.cache(samples.len())
            .evaluate_guarded(&self.prepared, samples, &self.thresholds, par)
    }

    /// Collapses the ladder into the paper's two-level [`CascadeStats`],
    /// treating level 0 as "low" and everything above as "high" (useful to
    /// compare against [`crate::MultiEffortVit`]).
    pub fn evaluate_as_two_level(&self, samples: &[Sample]) -> CascadeStats {
        let ladder = self.evaluate(samples);
        let mut stats = CascadeStats::default();
        for (i, &(n, c)) in ladder.per_level.iter().enumerate() {
            if i == 0 {
                stats.n_low += n;
                stats.c_low += c;
                stats.i_low += n - c;
            } else {
                stats.n_high += n;
                stats.c_high += c;
                stats.i_high += n - c;
            }
        }
        stats
    }
}

/// One memoized inference: a sample's logits at one ladder level.
#[derive(Debug, Clone)]
struct LevelEntry {
    logits: Matrix,
    entropy: f32,
    prediction: usize,
    /// Whether the logits are all finite — a fault flag for the
    /// degradation contract of DESIGN.md §5.
    finite: bool,
}

/// N-level extension of [`CascadeCache`](crate::CascadeCache): per-level
/// logits, entropies and predictions memoized per sample, filled lazily as
/// samples escalate.
///
/// A threshold sweep over a ladder re-runs no inference for levels a
/// sample already visited — only samples newly escalated past a gate
/// re-infer at the next level up. The memo is keyed by `(level, sample
/// index)`; callers must pass the same sample slice the cache was sized
/// for (checked by length).
///
/// ## Invariants
///
/// * `entries[l][i]`, when filled, holds exactly the level-`l` model's
///   logits for sample `i` (bit-identical to `levels[l].infer`), with
///   `entropy`/`prediction` derived from those logits.
/// * Entries are only ever added, never changed: two evaluations that
///   route a sample through the same levels observe the same memo.
/// * Gates use the ladder's strict `entropy < threshold` rule, so cached
///   and uncached evaluation agree bitwise.
#[derive(Debug, Clone)]
pub struct LadderCache {
    entries: Vec<Vec<Option<LevelEntry>>>,
}

impl LadderCache {
    /// Creates an empty cache for `levels` ladder levels and `n_samples`
    /// samples.
    pub fn new(levels: usize, n_samples: usize) -> Self {
        Self {
            entries: vec![vec![None; n_samples]; levels],
        }
    }

    /// Number of ladder levels the cache is sized for.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Number of samples the cache is sized for.
    pub fn len(&self) -> usize {
        self.entries.first().map_or(0, Vec::len)
    }

    /// Whether the cache is sized for zero samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many samples have memoized inference at `level`.
    pub fn cached_count(&self, level: usize) -> usize {
        self.entries[level].iter().filter(|e| e.is_some()).count()
    }

    /// Approximate heap bytes held by the memoized logit rows — the part
    /// of the cache that grows as samples ascend the ladder.
    pub fn logits_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .flatten()
            .map(|e| e.logits.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Clears every memoized entry in place, keeping the cache's level and
    /// sample dimensions (and its slot allocation) for reuse.
    ///
    /// This is the memory-bounding API for long-lived consumers: a cache
    /// sized for one calibration window can be reset between windows
    /// instead of reallocated, and resetting guarantees the memo never
    /// outgrows `levels x n_samples` entries no matter how many
    /// evaluations run through it. A reset cache behaves exactly like a
    /// freshly constructed one (the memo only affects *what is re-run*,
    /// never the results — see the evaluation invariants above).
    pub fn reset(&mut self) {
        for level in &mut self.entries {
            for slot in level.iter_mut() {
                *slot = None;
            }
        }
    }

    /// The memoized logits of sample `i` at `level`, if that level was
    /// ever reached by that sample.
    pub fn logits(&self, level: usize, i: usize) -> Option<&Matrix> {
        self.entries[level][i].as_ref().map(|e| &e.logits)
    }

    /// The memoized normalized entropy of sample `i` at `level`, if
    /// available.
    pub fn entropy(&self, level: usize, i: usize) -> Option<f32> {
        self.entries[level][i].as_ref().map(|e| e.entropy)
    }

    /// Evaluates an effort ladder against `thresholds`, batching each
    /// level's sweep over exactly the samples that reach it and are not
    /// yet memoized.
    ///
    /// The gate matches [`EffortLadder::infer`] — strict `entropy <
    /// thresholds[level]`, last level accepts everything — and inference
    /// goes through [`forward_batch`](PreparedModel::forward_batch) on the
    /// prepared level views, so the statistics are bit-identical to the
    /// sequential [`EffortLadder::evaluate`] for every parallelism, batch
    /// split and prior cache state.
    ///
    /// # Panics
    ///
    /// Panics if the model/threshold/sample counts do not match the cache
    /// dimensions.
    pub fn evaluate(
        &mut self,
        levels: &[PreparedModel],
        samples: &[Sample],
        thresholds: &[f32],
        par: Parallelism,
    ) -> LadderStats {
        self.evaluate_guarded(levels, samples, thresholds, par).0
    }

    /// [`Self::evaluate`] with fault accounting (DESIGN.md §5).
    ///
    /// Degradation contract for the ladder:
    ///
    /// * A non-finite entropy at a gated level never passes the strict
    ///   `entropy < threshold` gate, so a faulted level auto-escalates
    ///   (event with `served_by: None` — escalation was the recovery).
    /// * If the **exit** level's logits are non-finite, the prediction of
    ///   the deepest earlier level with finite logits is served instead
    ///   (event with `served_by: Some(level)`), while the sample stays
    ///   attributed to the faulty exit level in the statistics — its cost
    ///   was spent. Only when *every* visited level is faulty does the
    ///   exit level's own prediction stand (event with `served_by: None`).
    ///
    /// For healthy models the report is empty and the statistics are
    /// bit-identical to [`EffortLadder::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if the model/threshold/sample counts do not match the cache
    /// dimensions.
    pub fn evaluate_guarded(
        &mut self,
        levels: &[PreparedModel],
        samples: &[Sample],
        thresholds: &[f32],
        par: Parallelism,
    ) -> (LadderStats, DegradationReport) {
        assert_eq!(levels.len(), self.depth(), "level count mismatch");
        assert_eq!(
            thresholds.len(),
            levels.len() - 1,
            "need one threshold per gate (levels - 1)"
        );
        assert_eq!(
            samples.len(),
            self.len(),
            "cache sized for a different sample set"
        );

        let mut active: Vec<usize> = (0..samples.len()).collect();
        let mut exit_level = vec![0usize; samples.len()];
        for (level, model) in levels.iter().enumerate() {
            if active.is_empty() {
                break;
            }
            let missing: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| self.entries[level][i].is_none())
                .collect();
            if !missing.is_empty() {
                let images: Vec<&Sample> = missing.iter().map(|&i| &samples[i]).collect();
                let logits = batched_logits_with(model, &images, |s| &s.image, par);
                for (&i, logits) in missing.iter().zip(logits) {
                    self.entries[level][i] = Some(LevelEntry {
                        entropy: normalized_entropy(&logits),
                        prediction: logits.row_argmax(0),
                        finite: logits.is_all_finite(),
                        logits,
                    });
                }
            }
            let is_last = level == levels.len() - 1;
            let mut still_active = Vec::new();
            for &i in &active {
                let entry = self.entries[level][i].as_ref().expect("filled above");
                // A NaN entropy fails the strict `<` gate, so faulted
                // levels escalate without a special case.
                if is_last || entry.entropy < thresholds[level] {
                    exit_level[i] = level;
                } else {
                    still_active.push(i);
                }
            }
            active = still_active;
        }

        // Correctness and fault accounting, in sample order. Every sample
        // visited exactly levels `0..=exit_level[i]` this evaluation.
        let mut report = DegradationReport::default();
        let mut correct = vec![false; samples.len()];
        for (i, sample) in samples.iter().enumerate() {
            let exit = exit_level[i];
            for level in 0..exit {
                let entry = self.entries[level][i].as_ref().expect("visited");
                if !entry.entropy.is_finite() {
                    report.events.push(DegradationEvent {
                        sample: i,
                        level,
                        served_by: None,
                    });
                }
            }
            let entry = self.entries[exit][i].as_ref().expect("visited");
            if entry.finite {
                correct[i] = entry.prediction == sample.label;
            } else {
                let fallback = (0..exit)
                    .rev()
                    .find(|&l| self.entries[l][i].as_ref().is_some_and(|e| e.finite));
                let prediction = match fallback {
                    Some(l) => self.entries[l][i].as_ref().expect("found").prediction,
                    None => entry.prediction,
                };
                correct[i] = prediction == sample.label;
                report.events.push(DegradationEvent {
                    sample: i,
                    level: exit,
                    served_by: fallback,
                });
            }
        }

        let mut stats = LadderStats {
            per_level: vec![(0, 0); levels.len()],
        };
        for i in 0..samples.len() {
            let entry = &mut stats.per_level[exit_level[i]];
            entry.0 += 1;
            entry.1 += correct[i] as usize;
        }
        (stats, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    fn models(seed: u64) -> Vec<VisionTransformer> {
        let cfg = VitConfig::test_small();
        let base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
        [1usize, 2, 4]
            .iter()
            .map(|&e| {
                let mut m = base.clone();
                m.set_active_attentions(&(0..e).collect::<Vec<_>>());
                m
            })
            .collect()
    }

    fn samples(seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], 20, seed)
    }

    #[test]
    fn two_level_ladder_matches_multi_effort_vit() {
        let ms = models(0);
        let ladder = EffortLadder::new(vec![ms[0].clone(), ms[2].clone()], vec![0.6]);
        let cascade = crate::MultiEffortVit::new(ms[0].clone(), ms[2].clone(), 0.6);
        let set = samples(1);
        let a = ladder.evaluate_as_two_level(&set);
        let b = cascade.evaluate(&set);
        assert_eq!(a, b);
    }

    #[test]
    fn every_input_is_classified_exactly_once() {
        let ladder = EffortLadder::new(models(2), vec![0.3, 0.6]);
        let set = samples(3);
        let stats = ladder.evaluate(&set);
        assert_eq!(stats.total(), set.len());
        let fractions = stats.level_fractions();
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_thresholds_send_everything_to_the_top() {
        let ladder = EffortLadder::new(models(4), vec![0.0, 0.0]);
        let stats = ladder.evaluate(&samples(5));
        assert_eq!(stats.per_level[0].0, 0);
        assert_eq!(stats.per_level[1].0, 0);
        assert!(stats.per_level[2].0 > 0);
        assert_eq!(stats.mean_inferences(), 3.0);
    }

    #[test]
    fn unit_thresholds_stop_at_the_bottom() {
        let ladder = EffortLadder::new(models(6), vec![1.0, 1.0]);
        let stats = ladder.evaluate(&samples(7));
        assert_eq!(stats.per_level[0].0, stats.total());
        assert_eq!(stats.mean_inferences(), 1.0);
    }

    #[test]
    fn mean_inferences_between_one_and_depth() {
        let ladder = EffortLadder::new(models(8), vec![0.5, 0.8]);
        let stats = ladder.evaluate(&samples(9));
        let m = stats.mean_inferences();
        assert!((1.0..=3.0).contains(&m), "mean inferences {m}");
    }

    #[test]
    fn cached_evaluation_matches_sequential_reference() {
        let ms = models(12);
        let set = samples(13);
        for ths in [[0.0, 0.0], [0.4, 0.7], [1.0, 1.0]] {
            let ladder = EffortLadder::new(ms.clone(), ths.to_vec());
            let reference = ladder.evaluate(&set);
            for par in [Parallelism::Off, Parallelism::Fixed(3)] {
                let batched = ladder.evaluate_batched(&set, par);
                assert_eq!(reference, batched, "thresholds {ths:?} under {par:?}");
            }
        }
    }

    #[test]
    fn cache_memoizes_across_threshold_sweep() {
        let ms = models(14);
        let set = samples(15);
        let ladder = EffortLadder::new(ms, vec![0.5, 0.8]);
        let mut cache = ladder.cache(set.len());
        assert_eq!(cache.depth(), 3);
        assert_eq!(cache.len(), set.len());

        // A fully permissive bottom gate touches only level 0.
        let loose = cache.evaluate(
            ladder.prepared_levels(),
            &set,
            &[1.0, 1.0],
            Parallelism::Off,
        );
        let loose_ladder = EffortLadder::new(ladder.levels().to_vec(), vec![1.0, 1.0]);
        assert_eq!(loose, loose_ladder.evaluate(&set));
        assert_eq!(cache.cached_count(0), set.len());
        assert_eq!(cache.cached_count(1), 0);

        // Tightening to zero escalates everything, populating the upper
        // levels while reusing every level-0 entry.
        let level0_bits: Vec<u32> = (0..set.len())
            .map(|i| cache.entropy(0, i).expect("level 0 filled").to_bits())
            .collect();
        let tight = cache.evaluate(
            ladder.prepared_levels(),
            &set,
            &[0.0, 0.0],
            Parallelism::Off,
        );
        let tight_ladder = EffortLadder::new(ladder.levels().to_vec(), vec![0.0, 0.0]);
        assert_eq!(tight, tight_ladder.evaluate(&set));
        assert_eq!(cache.cached_count(1), set.len());
        assert_eq!(cache.cached_count(2), set.len());
        for (i, &bits) in level0_bits.iter().enumerate() {
            assert_eq!(cache.entropy(0, i).expect("still filled").to_bits(), bits);
        }

        // A repeat evaluation answers entirely from the memo.
        let again = cache.evaluate(
            ladder.prepared_levels(),
            &set,
            &[0.0, 0.0],
            Parallelism::Off,
        );
        assert_eq!(tight, again);
    }

    #[test]
    fn cached_entries_match_direct_inference() {
        let ms = models(16);
        let set = samples(17);
        let ladder = EffortLadder::new(ms, vec![0.0, 0.0]);
        let mut cache = ladder.cache(set.len());
        cache.evaluate(
            ladder.prepared_levels(),
            &set,
            ladder.thresholds(),
            Parallelism::Fixed(2),
        );
        for (level, model) in ladder.levels().iter().enumerate() {
            for (i, s) in set.iter().enumerate() {
                let direct = model.infer(&s.image);
                assert_eq!(cache.logits(level, i), Some(&direct));
                assert_eq!(
                    cache.entropy(level, i).expect("filled").to_bits(),
                    pivot_nn::normalized_entropy(&direct).to_bits()
                );
            }
        }
    }

    #[test]
    fn guarded_ladder_is_fault_free_on_healthy_models() {
        let ladder = EffortLadder::new(models(20), vec![0.4, 0.7]);
        let set = samples(21);
        let (stats, report) = ladder.evaluate_guarded(&set, Parallelism::Off);
        assert!(report.is_empty());
        assert_eq!(stats, ladder.evaluate(&set));
    }

    #[test]
    fn faulted_middle_level_escalates_and_faulted_top_falls_back() {
        use crate::faults::{FaultInjector, FaultKind};
        let mut ms = models(22);
        let set = samples(23);

        // Faulted middle level: every sample passing through it escalates
        // (NaN entropy fails the gate) and the healthy top serves it.
        let mut mid_faulty = ms.clone();
        FaultInjector::new(24).inject_params(&mut mid_faulty[1], FaultKind::StuckNan, 10_000);
        // Gates that would otherwise keep many samples at the middle.
        let ladder = EffortLadder::new(mid_faulty, vec![0.0, 1.0]);
        let (stats, report) = ladder.evaluate_guarded(&set, Parallelism::Off);
        assert_eq!(
            stats.per_level[1].0, 0,
            "no sample may exit at the faulty level"
        );
        assert_eq!(stats.per_level[2].0, set.len());
        assert_eq!(report.non_finite_at(1), set.len());
        assert_eq!(report.fallbacks(), 0);

        // Faulted top level: escalated samples fall back to the deepest
        // healthy level below (level 1 here), but stay attributed to the
        // top in the statistics.
        FaultInjector::new(25).inject_params(&mut ms[2], FaultKind::StuckNan, 10_000);
        let ladder = EffortLadder::new(ms.clone(), vec![0.0, 0.0]);
        let (stats, report) = ladder.evaluate_guarded(&set, Parallelism::Off);
        assert_eq!(stats.per_level[2].0, set.len());
        assert_eq!(report.fallbacks(), set.len());
        for e in &report.events {
            assert_eq!((e.level, e.served_by), (2, Some(1)));
        }
        // Served accuracy equals the healthy level-1 model's accuracy.
        let mid_correct = set
            .iter()
            .filter(|s| ms[1].infer(&s.image).row_argmax(0) == s.label)
            .count();
        assert_eq!(stats.per_level[2].1, mid_correct);
    }

    #[test]
    fn reset_cache_is_bounded_and_behaves_like_fresh() {
        let ms = models(40);
        let set = samples(41);
        let ladder = EffortLadder::new(ms, vec![0.0, 0.0]);
        let mut cache = ladder.cache(set.len());
        let first = cache.evaluate(
            ladder.prepared_levels(),
            &set,
            ladder.thresholds(),
            Parallelism::Off,
        );
        let filled_bytes = cache.logits_bytes();
        assert!(filled_bytes > 0);
        assert_eq!(cache.cached_count(2), set.len());

        // Reset keeps the dimensions but frees every memoized entry...
        cache.reset();
        assert_eq!(cache.depth(), 3);
        assert_eq!(cache.len(), set.len());
        assert_eq!(cache.logits_bytes(), 0);
        for level in 0..3 {
            assert_eq!(cache.cached_count(level), 0);
        }

        // ...and re-evaluating reproduces the fresh-cache results exactly,
        // with the footprint returning to the same bound instead of
        // growing across reuse cycles.
        let again = cache.evaluate(
            ladder.prepared_levels(),
            &set,
            ladder.thresholds(),
            Parallelism::Off,
        );
        assert_eq!(first, again);
        assert_eq!(cache.logits_bytes(), filled_bytes);
        for _ in 0..3 {
            cache.reset();
            cache.evaluate(
                ladder.prepared_levels(),
                &set,
                ladder.thresholds(),
                Parallelism::Off,
            );
            assert_eq!(cache.logits_bytes(), filled_bytes, "memo must not grow");
        }
    }

    #[test]
    #[should_panic(expected = "different sample set")]
    fn cache_rejects_mismatched_sample_count() {
        let ms = models(18);
        let set = samples(19);
        let ladder = EffortLadder::new(ms, vec![0.4, 0.7]);
        let mut cache = ladder.cache(set.len() + 1);
        ladder.evaluate_cached(&set, &mut cache, Parallelism::Off);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_thresholds_panic() {
        let _ = EffortLadder::new(models(10), vec![0.8, 0.4]);
    }

    #[test]
    #[should_panic(expected = "one threshold per gate")]
    fn wrong_threshold_count_panics() {
        let _ = EffortLadder::new(models(11), vec![0.5]);
    }

    #[test]
    fn same_backbone_levels_share_one_weight_copy() {
        // All three levels derive from one backbone via attention skipping,
        // so every layer deduplicates: the ladder holds 1x the backbone
        // weights instead of 3x, in both kernels.
        for (ladder, label) in [
            (EffortLadder::new(models(30), vec![0.4, 0.7]), "f32"),
            (EffortLadder::new_int8(models(30), vec![0.4, 0.7]), "int8"),
        ] {
            let single = ladder.prepared_levels()[0].weight_bytes();
            assert_eq!(ladder.weight_bytes(), 3 * single, "{label}");
            assert_eq!(ladder.unique_weight_bytes(), single, "{label}");
            let stats = ladder.share_stats();
            assert_eq!(stats.hits, 2 * stats.misses, "{label}");
            assert_eq!(stats.unique_bytes, single, "{label}");
            assert_eq!(stats.hit_bytes, 2 * single, "{label}");
            assert_eq!(stats.total_bytes(), ladder.weight_bytes(), "{label}");
        }
    }

    #[test]
    fn faulted_level_stops_sharing_but_reports_identically() {
        use crate::faults::{FaultInjector, FaultKind};
        let mut ms = models(31);
        FaultInjector::new(32).inject_params(&mut ms[1], FaultKind::StuckNan, 10_000);
        let ladder = EffortLadder::new(ms.clone(), vec![0.0, 1.0]);
        // The mutated middle level no longer hashes to the backbone's
        // layers, so the resident footprint exceeds one backbone copy...
        let single = ladder.prepared_levels()[0].weight_bytes();
        assert!(ladder.unique_weight_bytes() > single);
        // ...while the untouched levels 0 and 2 still share everything.
        assert!(ladder.share_stats().hits > 0);
        assert!(ladder.unique_weight_bytes() < ladder.weight_bytes());

        // Fault accounting through the shared store is identical to
        // independently prepared levels.
        let independent: Vec<PreparedModel> = ms.iter().map(|m| m.prepare()).collect();
        let set = samples(33);
        let (shared_stats, shared_report) = ladder.evaluate_guarded(&set, Parallelism::Off);
        let mut cache = LadderCache::new(ms.len(), set.len());
        let (ind_stats, ind_report) =
            cache.evaluate_guarded(&independent, &set, ladder.thresholds(), Parallelism::Off);
        assert!(!shared_report.is_empty(), "fault must surface");
        assert_eq!(shared_stats, ind_stats);
        assert_eq!(shared_report, ind_report);
    }

    #[test]
    fn int8_ladder_classifies_every_input_once() {
        let reference = EffortLadder::new(models(21), vec![0.3, 0.6]);
        let ladder = EffortLadder::new_int8(models(21), vec![0.3, 0.6]);
        assert!(ladder.is_int8());
        assert!(!reference.is_int8());
        let set = samples(22);
        let stats = ladder.evaluate(&set);
        assert_eq!(stats.total(), set.len());
        // Same-grid weights: the int8 ladder's per-level routing can only
        // drift from the fake-quant reference by samples whose gate
        // entropy sits inside the quantization-noise band.
        let ref_stats = reference.evaluate(&set);
        let drift: usize = stats
            .per_level
            .iter()
            .zip(&ref_stats.per_level)
            .map(|(&(n, _), &(rn, _))| n.abs_diff(rn))
            .sum();
        assert!(
            drift <= set.len() / 4,
            "routing drift {drift}/{}",
            set.len()
        );
    }

    mod sharing_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// The deduplication contract of the content-addressed store:
            /// a ladder whose levels Arc-share one backbone copy is
            /// bit-identical — logits, entropies, predictions, statistics
            /// and degradation report — to the same levels each prepared
            /// independently, across kernels, skip patterns, thresholds,
            /// ragged batch sizes and parallelism.
            #[test]
            fn shared_store_ladder_is_bit_identical_to_independent_levels(
                seed in 0u64..1_000,
                int8_sel in 0usize..2,
                efforts_sel in 0usize..6,
                raw_ths in collection::vec(0.0f32..=1.0, 3usize),
                n_pairs in 1usize..8,
                par_sel in 0usize..3,
            ) {
                let int8 = int8_sel == 1;
                let efforts: &[usize] = [
                    &[1usize, 2][..],
                    &[1, 4],
                    &[2, 3, 4],
                    &[1, 2, 3, 4],
                    &[1, 3],
                    &[2, 4],
                ][efforts_sel];
                let par = [Parallelism::Off, Parallelism::Fixed(2), Parallelism::Fixed(5)]
                    [par_sel];

                let cfg = VitConfig::test_small();
                let base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
                let ms: Vec<VisionTransformer> = efforts
                    .iter()
                    .map(|&e| {
                        let mut m = base.clone();
                        m.set_active_attentions(&(0..e).collect::<Vec<_>>());
                        m
                    })
                    .collect();
                let mut ths: Vec<f32> = raw_ths[..ms.len() - 1].to_vec();
                ths.sort_by(f32::total_cmp);

                let ladder = if int8 {
                    EffortLadder::new_int8(ms.clone(), ths.clone())
                } else {
                    EffortLadder::new(ms.clone(), ths.clone())
                };
                // Same backbone: every level past the first hits the store
                // and the resident footprint stays below the naive sum.
                prop_assert!(ladder.share_stats().hits > 0);
                prop_assert!(ladder.unique_weight_bytes() < ladder.weight_bytes());
                prop_assert_eq!(
                    ladder.unique_weight_bytes(),
                    ladder.prepared_levels()[0].weight_bytes()
                );

                let independent: Vec<PreparedModel> = ms
                    .iter()
                    .map(|m| if int8 { m.prepare_int8() } else { m.prepare() })
                    .collect();
                let set = Dataset::generate_difficulty_stripes(
                    &DatasetConfig::small(),
                    &[0.2, 0.8],
                    n_pairs,
                    seed + 1,
                );

                let mut shared_cache = ladder.cache(set.len());
                let (shared_stats, shared_report) = shared_cache.evaluate_guarded(
                    ladder.prepared_levels(),
                    &set,
                    ladder.thresholds(),
                    par,
                );
                let mut ind_cache = LadderCache::new(ms.len(), set.len());
                let (ind_stats, ind_report) =
                    ind_cache.evaluate_guarded(&independent, &set, &ths, par);

                prop_assert_eq!(shared_stats, ind_stats);
                prop_assert_eq!(shared_report, ind_report);
                for level in 0..ms.len() {
                    for i in 0..set.len() {
                        prop_assert_eq!(
                            shared_cache.logits(level, i),
                            ind_cache.logits(level, i)
                        );
                        prop_assert_eq!(
                            shared_cache.entropy(level, i).map(f32::to_bits),
                            ind_cache.entropy(level, i).map(f32::to_bits)
                        );
                    }
                }
            }
        }
    }
}
