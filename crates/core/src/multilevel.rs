//! Multi-level effort cascades — the natural extension of the paper's
//! two-effort scheme (Section 5 positions PIVOT as a framework for future
//! ViT-hardware co-optimization; a deeper effort ladder is the first step).
//!
//! An [`EffortLadder`] holds `N >= 2` efforts with `N - 1` increasing
//! entropy thresholds: an input ascends the ladder until its entropy at
//! some level falls below that level's threshold (the last level accepts
//! everything). With `N = 2` this is exactly the paper's low/high cascade.

use crate::cascade::CascadeStats;
use pivot_data::Sample;
use pivot_nn::normalized_entropy;
use pivot_tensor::Matrix;
use pivot_vit::VisionTransformer;

/// Outcome of one multi-level inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome {
    /// Index of the level that produced the prediction.
    pub level: usize,
    /// Predicted class.
    pub prediction: usize,
    /// Entropy observed at each visited level.
    pub entropies: Vec<f32>,
}

/// Per-level statistics of a ladder evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LadderStats {
    /// `(classified, correct)` per level.
    pub per_level: Vec<(usize, usize)>,
}

impl LadderStats {
    /// Total inputs evaluated.
    pub fn total(&self) -> usize {
        self.per_level.iter().map(|&(n, _)| n).sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = self.per_level.iter().map(|&(_, c)| c).sum();
        correct as f64 / total as f64
    }

    /// Fraction of inputs classified at each level.
    pub fn level_fractions(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.per_level
            .iter()
            .map(|&(n, _)| n as f64 / total)
            .collect()
    }

    /// Average number of model evaluations per input (1 = every input
    /// exits at the first level).
    pub fn mean_inferences(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .per_level
            .iter()
            .enumerate()
            .map(|(i, &(n, _))| (i + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }
}

/// An `N`-level effort ladder with entropy gates between levels.
///
/// # Example
///
/// ```
/// use pivot_core::multilevel::EffortLadder;
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let cfg = VitConfig::test_small();
/// let mut rng = Rng::new(0);
/// let mut low = VisionTransformer::new(&cfg, &mut rng);
/// low.set_active_attentions(&[0]);
/// let mut mid = low.clone();
/// mid.set_active_attentions(&[0, 1]);
/// let high = low.clone();
/// let ladder = EffortLadder::new(vec![low, mid, high], vec![0.4, 0.7]);
/// let out = ladder.infer(&Matrix::zeros(16, 16));
/// assert!(out.level < 3);
/// ```
#[derive(Debug, Clone)]
pub struct EffortLadder {
    levels: Vec<VisionTransformer>,
    thresholds: Vec<f32>,
}

impl EffortLadder {
    /// Creates a ladder from models ordered low effort -> high effort and
    /// `levels.len() - 1` thresholds.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given, the threshold count is
    /// not `levels - 1`, a threshold is outside `[0, 1]`, or thresholds are
    /// not non-decreasing (a later gate must not be stricter: otherwise an
    /// input could bypass a level it would have accepted).
    pub fn new(levels: Vec<VisionTransformer>, thresholds: Vec<f32>) -> Self {
        assert!(levels.len() >= 2, "a ladder needs at least two levels");
        assert_eq!(
            thresholds.len(),
            levels.len() - 1,
            "need one threshold per gate (levels - 1)"
        );
        let mut prev = 0.0f32;
        for &t in &thresholds {
            assert!((0.0..=1.0).contains(&t), "threshold {t} out of [0, 1]");
            assert!(t >= prev, "thresholds must be non-decreasing");
            prev = t;
        }
        Self { levels, thresholds }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The level models, low to high effort.
    pub fn levels(&self) -> &[VisionTransformer] {
        &self.levels
    }

    /// The gate thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Ascends the ladder until a level is confident enough (or the last
    /// level is reached).
    pub fn infer(&self, image: &Matrix) -> LadderOutcome {
        let mut entropies = Vec::new();
        for (i, model) in self.levels.iter().enumerate() {
            let logits = model.infer(image);
            let entropy = normalized_entropy(&logits);
            entropies.push(entropy);
            let is_last = i == self.levels.len() - 1;
            if is_last || entropy < self.thresholds[i] {
                return LadderOutcome {
                    level: i,
                    prediction: logits.row_argmax(0),
                    entropies,
                };
            }
        }
        unreachable!("last level always accepts");
    }

    /// Evaluates the ladder on labeled samples.
    pub fn evaluate(&self, samples: &[Sample]) -> LadderStats {
        let mut stats = LadderStats {
            per_level: vec![(0, 0); self.levels.len()],
        };
        for s in samples {
            let out = self.infer(&s.image);
            let entry = &mut stats.per_level[out.level];
            entry.0 += 1;
            entry.1 += (out.prediction == s.label) as usize;
        }
        stats
    }

    /// Collapses the ladder into the paper's two-level [`CascadeStats`],
    /// treating level 0 as "low" and everything above as "high" (useful to
    /// compare against [`crate::MultiEffortVit`]).
    pub fn evaluate_as_two_level(&self, samples: &[Sample]) -> CascadeStats {
        let ladder = self.evaluate(samples);
        let mut stats = CascadeStats::default();
        for (i, &(n, c)) in ladder.per_level.iter().enumerate() {
            if i == 0 {
                stats.n_low += n;
                stats.c_low += c;
                stats.i_low += n - c;
            } else {
                stats.n_high += n;
                stats.c_high += c;
                stats.i_high += n - c;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    fn models(seed: u64) -> Vec<VisionTransformer> {
        let cfg = VitConfig::test_small();
        let base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
        [1usize, 2, 4]
            .iter()
            .map(|&e| {
                let mut m = base.clone();
                m.set_active_attentions(&(0..e).collect::<Vec<_>>());
                m
            })
            .collect()
    }

    fn samples(seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], 20, seed)
    }

    #[test]
    fn two_level_ladder_matches_multi_effort_vit() {
        let ms = models(0);
        let ladder = EffortLadder::new(vec![ms[0].clone(), ms[2].clone()], vec![0.6]);
        let cascade = crate::MultiEffortVit::new(ms[0].clone(), ms[2].clone(), 0.6);
        let set = samples(1);
        let a = ladder.evaluate_as_two_level(&set);
        let b = cascade.evaluate(&set);
        assert_eq!(a, b);
    }

    #[test]
    fn every_input_is_classified_exactly_once() {
        let ladder = EffortLadder::new(models(2), vec![0.3, 0.6]);
        let set = samples(3);
        let stats = ladder.evaluate(&set);
        assert_eq!(stats.total(), set.len());
        let fractions = stats.level_fractions();
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_thresholds_send_everything_to_the_top() {
        let ladder = EffortLadder::new(models(4), vec![0.0, 0.0]);
        let stats = ladder.evaluate(&samples(5));
        assert_eq!(stats.per_level[0].0, 0);
        assert_eq!(stats.per_level[1].0, 0);
        assert!(stats.per_level[2].0 > 0);
        assert_eq!(stats.mean_inferences(), 3.0);
    }

    #[test]
    fn unit_thresholds_stop_at_the_bottom() {
        let ladder = EffortLadder::new(models(6), vec![1.0, 1.0]);
        let stats = ladder.evaluate(&samples(7));
        assert_eq!(stats.per_level[0].0, stats.total());
        assert_eq!(stats.mean_inferences(), 1.0);
    }

    #[test]
    fn mean_inferences_between_one_and_depth() {
        let ladder = EffortLadder::new(models(8), vec![0.5, 0.8]);
        let stats = ladder.evaluate(&samples(9));
        let m = stats.mean_inferences();
        assert!((1.0..=3.0).contains(&m), "mean inferences {m}");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_thresholds_panic() {
        let _ = EffortLadder::new(models(10), vec![0.8, 0.4]);
    }

    #[test]
    #[should_panic(expected = "one threshold per gate")]
    fn wrong_threshold_count_panics() {
        let _ = EffortLadder::new(models(11), vec![0.5]);
    }
}
