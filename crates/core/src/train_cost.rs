//! Training-cost (GPU hours) model for Fig. 4c.
//!
//! The paper fine-tunes every effort for 30 epochs and compares the summed
//! cost against training the full ViT from scratch (the standard 300-epoch
//! DeiT recipe), finding the multi-effort preparation 3x (DeiT-S) / 2x
//! (LVViT-S) cheaper. Per-epoch cost is proportional to the per-image
//! compute time of the configuration being trained (backward passes scale
//! with the same work), which PIVOT-Sim already models.

use crate::PathConfig;
use pivot_sim::{Simulator, VitGeometry};

/// Epoch counts of the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainCostModel {
    /// Epochs to train the full ViT from scratch (DeiT recipe: 300).
    pub scratch_epochs: f64,
    /// Fine-tuning epochs per effort (paper: 30).
    pub finetune_epochs: f64,
}

impl Default for TrainCostModel {
    fn default() -> Self {
        Self {
            scratch_epochs: 300.0,
            finetune_epochs: 30.0,
        }
    }
}

impl TrainCostModel {
    /// Relative GPU hours to fine-tune one effort path, normalized so the
    /// full-effort model's per-epoch cost is 1 epoch-unit.
    pub fn effort_cost(&self, sim: &Simulator, geom: &VitGeometry, path: &PathConfig) -> f64 {
        let full = sim.simulate(geom, &vec![true; geom.depth]).delay_ms;
        let this = sim.simulate(geom, &path.to_mask()).delay_ms;
        self.finetune_epochs * this / full
    }

    /// Relative GPU hours to prepare all effort paths, in scratch-training
    /// units (1.0 = the cost of training the ViT from scratch).
    pub fn all_efforts_cost(
        &self,
        sim: &Simulator,
        geom: &VitGeometry,
        paths: &[PathConfig],
    ) -> f64 {
        let total: f64 = paths.iter().map(|p| self.effort_cost(sim, geom, p)).sum();
        total / self.scratch_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_sim::AcceleratorConfig;

    fn deep_paths(depth: usize, efforts: &[usize]) -> Vec<PathConfig> {
        // Skips concentrated in deep layers, like Phase 1 selects.
        efforts
            .iter()
            .map(|&e| PathConfig::new(depth, &(0..e).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn deit_s_efforts_are_at_least_2x_cheaper_than_scratch() {
        // Paper Fig. 4c: 7 efforts (3..=9) cost ~1/3 of scratch training.
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let paths = deep_paths(12, &[3, 4, 5, 6, 7, 8, 9]);
        let cost = TrainCostModel::default().all_efforts_cost(&sim, &geom, &paths);
        assert!(
            (0.2..0.5).contains(&cost),
            "DeiT-S all-efforts cost {cost}, paper ~0.33"
        );
    }

    #[test]
    fn lvvit_s_efforts_are_about_2x_cheaper() {
        // Paper Fig. 4c: 9 efforts (4..=12) cost ~1/2 of scratch training.
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::lvvit_s();
        let paths = deep_paths(16, &[4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let cost = TrainCostModel::default().all_efforts_cost(&sim, &geom, &paths);
        assert!(
            (0.3..0.65).contains(&cost),
            "LVViT-S all-efforts cost {cost}, paper ~0.5"
        );
    }

    #[test]
    fn smaller_efforts_train_faster() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let model = TrainCostModel::default();
        let small = model.effort_cost(&sim, &geom, &deep_paths(12, &[3])[0]);
        let big = model.effort_cost(&sim, &geom, &deep_paths(12, &[9])[0]);
        assert!(small < big);
    }

    #[test]
    fn full_effort_costs_exactly_finetune_epochs() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let model = TrainCostModel::default();
        let cost = model.effort_cost(&sim, &geom, &PathConfig::full(12));
        assert!((cost - model.finetune_epochs).abs() < 1e-9);
    }
}
