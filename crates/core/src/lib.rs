//! PIVOT's co-optimization framework: input-aware attention-path selection.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrates in the rest of the workspace:
//!
//! * [`path`] — attention-skip path configurations and enumeration.
//! * [`score`] — the Path-Score of Algorithm 1, computed from a
//!   [`pivot_cka::CkaMatrix`].
//! * [`phase1`] — optimal-path selection per effort (Fig. 2b).
//! * [`cascade`] — the entropy-gated low/high effort inference engine
//!   (Fig. 2a) and its accuracy calculator (`C_L`, `I_L`, `C_H`, `I_H`,
//!   `F_L`, `F_H`).
//! * [`cache`] — the entropy cache: low-effort logits computed once per
//!   sample set, serving `F_L` queries and threshold sweeps in O(N).
//! * [`batched`] — chunked `forward_batch` inference over sample sets
//!   against a [`pivot_vit::PreparedModel`] view (weights materialized
//!   once per sweep): one wide GEMM per layer per chunk, bit-identical to
//!   per-sample inference.
//! * [`guarded`] — guarded prepared evaluation over raw image slices with
//!   an effort cap: the per-request cascade primitive online serving
//!   (`pivot-serve`) builds on.
//! * [`parallel`] — the deterministic persistent worker pool behind
//!   every batched evaluation ([`Parallelism`], [`par_map`]).
//! * [`phase2`] — the hardware-in-the-loop search for the optimal effort
//!   combination under LEC and delay constraints (Fig. 2c), with
//!   `pivot-sim` in the loop.
//! * [`pipeline`] — the end-to-end flow: train a teacher, build the CKA
//!   matrix, select and fine-tune every effort.
//! * [`search_space`] — design-space accounting (Fig. 4b).
//! * [`train_cost`] — GPU-hours model for training all efforts (Fig. 4c).
//! * [`error`] — the [`PivotError`] structured error unifying the lower
//!   crates' typed failures.
//! * [`faults`] — deterministic fault injection (bit flips, NaN, stuck-at)
//!   for accuracy-under-fault experiments.

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod batched;
pub mod cache;
pub mod cascade;
pub mod error;
pub mod faults;
pub mod guarded;
pub mod multilevel;
pub mod parallel;
pub mod path;
pub mod phase1;
pub mod phase2;
pub mod pipeline;
pub mod score;
pub mod search_space;
pub mod train_cost;

pub use batched::{
    batched_logits, batched_logits_rematerializing, batched_logits_rematerializing_with,
    batched_logits_with, EVAL_BATCH,
};
pub use cache::{CascadeCache, DegradationEvent, DegradationReport};
pub use cascade::{stays_low, CascadeOutcome, CascadeStats, MultiEffortVit};
pub use error::PivotError;
pub use faults::{FaultInjector, FaultKind, InjectedFault, StallSchedule};
pub use guarded::{evaluate_guarded_slice, GuardedOutcome};
pub use multilevel::{EffortLadder, LadderCache, LadderOutcome, LadderStats};
pub use parallel::{par_map, Parallelism};
pub use path::PathConfig;
pub use phase1::{select_optimal_path, select_optimal_path_with, Phase1Result, ScoredPath};
pub use phase2::{EffortModel, Phase2Config, Phase2Result, Phase2Search};
pub use pipeline::{
    compute_cka_matrix, compute_cka_matrix_int8, compute_cka_matrix_prepared, PipelineConfig,
    PivotArtifacts, PivotPipeline,
};
pub use score::path_score;
pub use train_cost::TrainCostModel;
