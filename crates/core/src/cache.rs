//! Entropy cache: low-effort logits computed once, served everywhere.
//!
//! Phase 2's threshold iteration and the cascade's `F_L` queries all need
//! the same quantity — the normalized entropy of the **low-effort** logits
//! of every calibration sample. Re-running low-effort inference per probed
//! threshold makes a sweep O(thresholds x N x forward-pass);
//! [`CascadeCache`] computes the logits once (on the
//! [`par_map`](crate::parallel::par_map) worker pool), derives entropies
//! and argmax predictions, and then answers every threshold query in O(N)
//! with no model in the loop.
//!
//! ## Invariants
//!
//! * `low_logits[i]`, `entropies[i]` and `low_predictions[i]` all describe
//!   sample `i` of the set the cache was built from, in input order.
//! * `entropies[i]` is exactly `normalized_entropy(&low_logits[i])` — the
//!   cache stores derived values, it never re-derives them differently.
//! * A cache is tied to one (model, sample set) pair; callers index it
//!   with the same sample slice they built it from (checked by length).
//! * Queries are pure reads: building with any [`Parallelism`] yields
//!   bit-identical contents, so every downstream result is deterministic.

use crate::batched::{batched_logits, batched_logits_with};
use crate::cascade::{stays_low, CascadeStats};
use crate::parallel::Parallelism;
use pivot_data::Sample;
use pivot_nn::normalized_entropies;
use pivot_tensor::Matrix;
use pivot_vit::{PreparedModel, PreparedStore, VisionTransformer};

/// One sample that produced non-finite values during a guarded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Index of the affected sample, in evaluation order.
    pub sample: usize,
    /// Effort level whose logits were non-finite (0 = low, 1 = high for
    /// the two-level cascade; ladder levels for [`LadderCache`]).
    ///
    /// [`LadderCache`]: crate::multilevel::LadderCache
    pub level: usize,
    /// The effort level whose prediction was served instead, or `None`
    /// when no fallback prediction was substituted — either the faulty
    /// level was not the serving one (a faulted low effort whose sample
    /// escalated to a healthy high effort), or every visited level was
    /// faulty and the exit level's own prediction stood.
    pub served_by: Option<usize>,
}

/// Fault accounting for one guarded evaluation: which samples hit
/// non-finite values, at which effort level, and who served them instead.
///
/// An empty report means the evaluation was fault-free and its statistics
/// are bit-identical to the unguarded path (DESIGN.md §5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Every degradation event, in sample order.
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// Whether the evaluation was completely fault-free.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of degradation events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of samples served by a fallback prediction (the faulty level
    /// was the serving one and an earlier level's prediction stood in).
    pub fn fallbacks(&self) -> usize {
        self.events.iter().filter(|e| e.served_by.is_some()).count()
    }

    /// Number of events whose non-finite logits came from `level`.
    pub fn non_finite_at(&self, level: usize) -> usize {
        self.events.iter().filter(|e| e.level == level).count()
    }

    /// Number of samples that escalated because of a fault rather than an
    /// entropy gate (events with `served_by: None` below the exit level).
    pub fn escalations(&self) -> usize {
        self.events.iter().filter(|e| e.served_by.is_none()).count()
    }

    /// Appends every event of `other`, preserving `other`'s internal
    /// order after the events already present.
    ///
    /// This is the aggregation primitive for long-lived consumers (the
    /// serving engine's health counters, multi-evaluation sweeps): each
    /// per-request/per-batch report merges into one running report whose
    /// counters ([`Self::fallbacks`], [`Self::non_finite_at`], ...) then
    /// describe the whole history. Sample indices stay *local* to the
    /// evaluation that produced them — a merged report counts events, it
    /// does not re-index samples across evaluations.
    pub fn merge(&mut self, other: DegradationReport) {
        self.events.extend(other.events);
    }
}

impl std::iter::Sum for DegradationReport {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut total = DegradationReport::default();
        for report in iter {
            total.merge(report);
        }
        total
    }
}

impl std::fmt::Display for DegradationReport {
    /// One-line health summary, e.g.
    /// `3 degradation events (1 fault escalation, 2 fallbacks)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "no degradation events");
        }
        write!(
            f,
            "{} degradation event{} ({} fault escalation{}, {} fallback{})",
            self.len(),
            if self.len() == 1 { "" } else { "s" },
            self.escalations(),
            if self.escalations() == 1 { "" } else { "s" },
            self.fallbacks(),
            if self.fallbacks() == 1 { "" } else { "s" },
        )
    }
}

/// Cached low-effort inference over one sample set.
///
/// # Example
///
/// ```
/// use pivot_core::{CascadeCache, Parallelism};
/// use pivot_data::{Dataset, DatasetConfig};
/// use pivot_tensor::Rng;
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(0));
/// let samples =
///     Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.3], 8, 1);
/// let cache = CascadeCache::build(&model, &samples, Parallelism::Auto);
/// assert_eq!(cache.len(), samples.len());
/// assert_eq!(cache.f_low_at(1.0), 1.0); // inclusive top boundary
/// ```
#[derive(Debug, Clone)]
pub struct CascadeCache {
    low_logits: Vec<Matrix>,
    entropies: Vec<f32>,
    low_predictions: Vec<usize>,
}

impl CascadeCache {
    /// Runs low-effort inference over `samples` — batched through
    /// [`PreparedModel::forward_batch`] on the worker pool — and caches
    /// logits, normalized entropies and argmax predictions.
    ///
    /// Prepares the model internally (weights materialized once for the
    /// whole build). Callers that already hold a prepared view should use
    /// [`CascadeCache::build_prepared`] to avoid re-preparing.
    pub fn build(low: &VisionTransformer, samples: &[Sample], par: Parallelism) -> Self {
        Self::build_prepared(&low.prepare(), samples, par)
    }

    /// [`CascadeCache::build`] on the packed int8 inference path: the
    /// low-effort model is [prepared as
    /// int8](VisionTransformer::prepare_int8) and every cached logit row
    /// comes from the integer GEMM. Entropies and predictions track the
    /// fake-quant [`CascadeCache::build`] within the documented int8
    /// tolerance.
    pub fn build_int8(low: &VisionTransformer, samples: &[Sample], par: Parallelism) -> Self {
        Self::build_prepared(&low.prepare_int8(), samples, par)
    }

    /// [`CascadeCache::build`] with the low effort prepared through a
    /// shared content-addressed `store`: layers already materialized by
    /// another participant (an earlier cache, a prepared high effort) are
    /// Arc-shared instead of re-packed. Bit-identical to
    /// [`CascadeCache::build`].
    pub fn build_in(
        low: &VisionTransformer,
        samples: &[Sample],
        par: Parallelism,
        store: &PreparedStore,
    ) -> Self {
        Self::build_prepared(&low.prepare_in(store), samples, par)
    }

    /// [`CascadeCache::build_int8`] through a shared content-addressed
    /// `store` (see [`CascadeCache::build_in`]).
    pub fn build_int8_in(
        low: &VisionTransformer,
        samples: &[Sample],
        par: Parallelism,
        store: &PreparedStore,
    ) -> Self {
        Self::build_prepared(&low.prepare_int8_in(store), samples, par)
    }

    /// [`CascadeCache::build`] against an already-prepared inference view.
    pub fn build_prepared(low: &PreparedModel, samples: &[Sample], par: Parallelism) -> Self {
        let low_logits = batched_logits(low, samples, par);
        let entropies = normalized_entropies(&low_logits);
        let low_predictions = low_logits.iter().map(|l| l.row_argmax(0)).collect();
        Self {
            low_logits,
            entropies,
            low_predictions,
        }
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.entropies.len()
    }

    /// Whether the cache holds no samples.
    pub fn is_empty(&self) -> bool {
        self.entropies.is_empty()
    }

    /// The cached low-effort logits, in sample order. Empty after
    /// [`Self::compact`].
    pub fn low_logits(&self) -> &[Matrix] {
        &self.low_logits
    }

    /// Approximate heap bytes held by the cached logits — the part of the
    /// cache that scales with `num_classes` per sample and dominates its
    /// footprint. Entropies and predictions are a few bytes per sample.
    pub fn logits_bytes(&self) -> usize {
        self.low_logits
            .iter()
            .map(|m| m.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Drops the cached per-sample logit rows, keeping only the derived
    /// entropies and argmax predictions.
    ///
    /// Every query the cascade engines use — [`Self::f_low_at`],
    /// [`Self::escalated`], [`Self::threshold_reaching`],
    /// [`Self::evaluate_guarded_prepared`] and friends — reads only the
    /// derived values, so evaluation results are unchanged by compaction;
    /// only [`Self::low_logits`] (empty afterwards) observes it. This is
    /// the memory-bounding API for long-lived servers that build one cache
    /// per calibration window: a compacted cache holds O(N) floats instead
    /// of O(N x num_classes) logit rows.
    pub fn compact(&mut self) {
        self.low_logits = Vec::new();
    }

    /// The cached normalized entropies, in sample order.
    pub fn entropies(&self) -> &[f32] {
        &self.entropies
    }

    /// The cached low-effort argmax prediction of sample `i`.
    pub fn low_prediction(&self, i: usize) -> usize {
        self.low_predictions[i]
    }

    /// Fraction of cached samples the low effort would classify at
    /// `threshold` (`F_L`), in O(N) with no inference. Returns 0.0 for an
    /// empty cache.
    pub fn f_low_at(&self, threshold: f32) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let below = self
            .entropies
            .iter()
            .filter(|&&e| stays_low(e, threshold))
            .count();
        below as f64 / self.len() as f64
    }

    /// `F_L` at each of `thresholds` — a whole sweep for one cache build.
    pub fn f_low_curve(&self, thresholds: &[f32]) -> Vec<f64> {
        thresholds.iter().map(|&th| self.f_low_at(th)).collect()
    }

    /// Indices of the samples that escalate to the high effort at
    /// `threshold`, in sample order.
    pub fn escalated(&self, threshold: f32) -> Vec<usize> {
        self.entropies
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| (!stays_low(e, threshold)).then_some(i))
            .collect()
    }

    /// Phase 2's incremental threshold iteration on cached entropies: the
    /// smallest multiple of `step` (capped at 1.0) whose `F_L` reaches
    /// `lec`. Because the top boundary is inclusive, `F_L(1.0) = 1.0` and
    /// the iteration always terminates at or before 1.0.
    ///
    /// Every probe is clamped to at most 1.0 *inside* the loop: a step that
    /// does not divide 1.0 (e.g. 0.03) accumulates to 0.99999994 rather
    /// than 1.0 in `f32`, and probing that value would miss the inclusive
    /// `Th = 1.0` gate — the final probe must be exactly `1.0` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn threshold_reaching(&self, lec: f64, step: f32) -> f32 {
        assert!(step > 0.0, "threshold step must be positive");
        let mut threshold = step.min(1.0);
        while self.f_low_at(threshold) < lec && threshold < 1.0 {
            threshold = (threshold + step).min(1.0);
        }
        threshold
    }

    /// Evaluates the cascade against ground-truth labels at `threshold`:
    /// low-effort outcomes come from the cache, only the escalated samples
    /// run high-effort inference (batched, on the worker pool).
    /// Statistics are accumulated in sample order, so the result is
    /// bit-identical for any [`Parallelism`].
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not the set the cache was built from (length
    /// check).
    pub fn evaluate(
        &self,
        high: &VisionTransformer,
        samples: &[Sample],
        threshold: f32,
        par: Parallelism,
    ) -> CascadeStats {
        self.evaluate_guarded(high, samples, threshold, par).0
    }

    /// [`Self::evaluate`] against an already-prepared high-effort view.
    pub fn evaluate_prepared(
        &self,
        high: &PreparedModel,
        samples: &[Sample],
        threshold: f32,
        par: Parallelism,
    ) -> CascadeStats {
        self.evaluate_guarded_prepared(high, samples, threshold, par)
            .0
    }

    /// [`Self::evaluate`] with fault accounting (DESIGN.md §5).
    ///
    /// Degradation contract:
    ///
    /// * A **low-effort fault** surfaces as a non-finite cached entropy;
    ///   [`stays_low`] escalates it at every threshold, so the high effort
    ///   serves the sample (event with `served_by: None` — no fallback was
    ///   needed, escalation itself was the recovery).
    /// * A **high-effort fault** surfaces as non-finite high logits; the
    ///   cached low-effort prediction is served instead (event with
    ///   `served_by: Some(0)`). The sample stays counted under `n_high` —
    ///   the high-effort cost was spent — with the fallback prediction's
    ///   correctness, so `n_high == c_high + i_high` still holds.
    ///
    /// For healthy models the report is empty and the statistics are
    /// bit-identical to the unguarded history of this engine.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not the set the cache was built from (length
    /// check).
    pub fn evaluate_guarded(
        &self,
        high: &VisionTransformer,
        samples: &[Sample],
        threshold: f32,
        par: Parallelism,
    ) -> (CascadeStats, DegradationReport) {
        self.evaluate_guarded_prepared(&high.prepare(), samples, threshold, par)
    }

    /// [`Self::evaluate_guarded`] against an already-prepared high-effort
    /// view — the form the cascade engines and Phase-2 sweeps use so the
    /// high model's weights are materialized once per model instead of once
    /// per evaluation call.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not the set the cache was built from (length
    /// check).
    pub fn evaluate_guarded_prepared(
        &self,
        high: &PreparedModel,
        samples: &[Sample],
        threshold: f32,
        par: Parallelism,
    ) -> (CascadeStats, DegradationReport) {
        assert_eq!(
            samples.len(),
            self.len(),
            "cache built from a different sample set"
        );
        let escalated = self.escalated(threshold);
        let escalated_samples: Vec<&Sample> = escalated.iter().map(|&i| &samples[i]).collect();
        let high_logits = batched_logits_with(high, &escalated_samples, |s| &s.image, par);
        let high_finite: Vec<bool> = high_logits.iter().map(|l| l.is_all_finite()).collect();
        let high_correct: Vec<bool> = escalated
            .iter()
            .zip(&high_logits)
            .zip(&high_finite)
            .map(|((&i, logits), &finite)| {
                if finite {
                    logits.row_argmax(0) == samples[i].label
                } else {
                    // Graceful degradation: serve the cached low-effort
                    // prediction instead of garbage argmax over NaNs.
                    self.low_predictions[i] == samples[i].label
                }
            })
            .collect();

        let mut stats = CascadeStats::default();
        let mut report = DegradationReport::default();
        let mut next_escalated = 0;
        for (i, sample) in samples.iter().enumerate() {
            if next_escalated < escalated.len() && escalated[next_escalated] == i {
                if !self.entropies[i].is_finite() {
                    report.events.push(DegradationEvent {
                        sample: i,
                        level: 0,
                        served_by: None,
                    });
                }
                if !high_finite[next_escalated] {
                    report.events.push(DegradationEvent {
                        sample: i,
                        level: 1,
                        served_by: Some(0),
                    });
                }
                stats.n_high += 1;
                if high_correct[next_escalated] {
                    stats.c_high += 1;
                } else {
                    stats.i_high += 1;
                }
                next_escalated += 1;
            } else {
                stats.n_low += 1;
                if self.low_predictions[i] == sample.label {
                    stats.c_low += 1;
                } else {
                    stats.i_low += 1;
                }
            }
        }
        (stats, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiEffortVit;
    use pivot_data::{Dataset, DatasetConfig};
    use pivot_nn::normalized_entropy;
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    fn model(seed: u64, active: &[usize]) -> VisionTransformer {
        let mut m = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(seed));
        m.set_active_attentions(active);
        m
    }

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], n / 2, seed)
    }

    #[test]
    fn cache_matches_direct_inference() {
        let low = model(0, &[0]);
        let set = samples(12, 1);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        for (i, s) in set.iter().enumerate() {
            let logits = low.infer(&s.image);
            assert!(cache.low_logits()[i].approx_eq(&logits, 0.0));
            assert_eq!(
                cache.entropies()[i].to_bits(),
                normalized_entropy(&logits).to_bits()
            );
            assert_eq!(cache.low_prediction(i), logits.row_argmax(0));
        }
    }

    #[test]
    fn build_is_identical_across_parallelism() {
        let low = model(2, &[0, 1]);
        let set = samples(14, 3);
        let seq = CascadeCache::build(&low, &set, Parallelism::Off);
        for par in [
            Parallelism::Auto,
            Parallelism::Fixed(3),
            Parallelism::Fixed(16),
        ] {
            let p = CascadeCache::build(&low, &set, par);
            for i in 0..seq.len() {
                assert_eq!(seq.entropies()[i].to_bits(), p.entropies()[i].to_bits());
                assert!(seq.low_logits()[i].approx_eq(&p.low_logits()[i], 0.0));
            }
        }
    }

    #[test]
    fn f_low_agrees_with_multi_effort_vit() {
        let low = model(4, &[0]);
        let high = model(5, &[0, 1]);
        let set = samples(20, 6);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        let cascade = MultiEffortVit::new(low, high, 0.5);
        for th in [0.0, 0.3, 0.62, 0.97, 1.0] {
            assert_eq!(cache.f_low_at(th), cascade.f_low_at(&set, th), "Th={th}");
        }
    }

    #[test]
    fn empty_cache_reports_zero_fraction() {
        let low = model(7, &[0]);
        let cache = CascadeCache::build(&low, &[], Parallelism::Auto);
        assert!(cache.is_empty());
        assert_eq!(cache.f_low_at(0.5), 0.0);
        assert!(cache.escalated(0.5).is_empty());
    }

    #[test]
    fn threshold_reaching_respects_lec_and_cap() {
        let low = model(8, &[0]);
        let set = samples(20, 9);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        let th = cache.threshold_reaching(0.5, 0.02);
        assert!(th <= 1.0);
        assert!(cache.f_low_at(th) >= 0.5 || (th - 1.0).abs() < 1e-6);
        // An unreachable LEC caps at 1.0, where the inclusive gate gives
        // F_L = 1 and the constraint is met after all.
        let capped = cache.threshold_reaching(2.0, 0.3);
        assert_eq!(capped, 1.0);
        assert_eq!(cache.f_low_at(capped), 1.0);
    }

    #[test]
    fn threshold_reaching_clamps_non_dividing_steps_to_exactly_one() {
        // A zero-head low model emits identical logits for every sample, so
        // every normalized entropy is ~1.0 and only the inclusive Th = 1.0
        // gate classifies anything at the low effort.
        let mut low = model(26, &[0]);
        let n = low.params_mut().len();
        for pi in [n - 2, n - 1] {
            low.params_mut()[pi].value.map_in_place(|_| 0.0);
        }
        let set = samples(10, 27);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        assert!(cache.entropies().iter().all(|&e| e > 0.999));
        assert_eq!(cache.f_low_at(0.99), 0.0);
        // 0.03 does not divide 1.0: accumulating it in f32 never lands on
        // 1.0 exactly, so without the in-loop clamp the sweep would probe
        // 0.99999994-style values and miss the inclusive gate. The final
        // probe must be exactly 1.0 bitwise.
        let th = cache.threshold_reaching(0.5, 0.03);
        assert_eq!(th.to_bits(), 1.0f32.to_bits());
        assert_eq!(cache.f_low_at(th), 1.0);
        // A step larger than the whole range clamps on the first probe.
        assert_eq!(
            cache.threshold_reaching(0.5, 7.0).to_bits(),
            1.0f32.to_bits()
        );
    }

    #[test]
    fn prepared_build_and_evaluate_match_unprepared() {
        let low = model(28, &[0]);
        let high = model(29, &[0, 1]);
        let set = samples(14, 30);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        let cache_p = CascadeCache::build_prepared(&low.prepare(), &set, Parallelism::Fixed(3));
        for i in 0..cache.len() {
            assert_eq!(
                cache.entropies()[i].to_bits(),
                cache_p.entropies()[i].to_bits()
            );
            assert_eq!(cache.low_logits()[i], cache_p.low_logits()[i]);
        }
        let high_p = high.prepare();
        for th in [0.0, 0.5, 1.0] {
            assert_eq!(
                cache.evaluate(&high, &set, th, Parallelism::Off),
                cache_p.evaluate_prepared(&high_p, &set, th, Parallelism::Fixed(3)),
                "Th={th}"
            );
        }
    }

    #[test]
    fn evaluate_matches_cascade_evaluate() {
        let low = model(10, &[0]);
        let high = model(11, &[0, 1]);
        let set = samples(16, 12);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        for th in [0.0, 0.4, 0.8, 1.0] {
            let cascade = MultiEffortVit::new(low.clone(), high.clone(), th);
            let direct = cascade.evaluate(&set);
            let cached = cache.evaluate(&high, &set, th, Parallelism::Fixed(3));
            assert_eq!(direct, cached, "Th={th}");
        }
    }

    #[test]
    fn guarded_evaluation_is_fault_free_on_healthy_models() {
        let low = model(15, &[0]);
        let high = model(16, &[0, 1]);
        let set = samples(16, 17);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        for th in [0.0, 0.5, 1.0] {
            let (stats, report) = cache.evaluate_guarded(&high, &set, th, Parallelism::Off);
            assert!(report.is_empty(), "healthy models must not degrade");
            assert_eq!(stats, cache.evaluate(&high, &set, th, Parallelism::Off));
        }
    }

    #[test]
    fn faulted_high_effort_falls_back_to_cached_low_predictions() {
        let low = model(18, &[0]);
        let mut high = model(19, &[0, 1]);
        crate::faults::FaultInjector::new(20).inject_params(
            &mut high,
            crate::faults::FaultKind::StuckNan,
            10_000,
        );
        let set = samples(12, 21);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        // Th = 0 escalates everything into the faulted high effort.
        let (stats, report) = cache.evaluate_guarded(&high, &set, 0.0, Parallelism::Off);
        assert_eq!(stats.n_high, set.len());
        assert_eq!(stats.n_high, stats.c_high + stats.i_high);
        assert_eq!(report.fallbacks(), set.len(), "every sample must fall back");
        assert_eq!(report.non_finite_at(1), set.len());
        assert_eq!(report.non_finite_at(0), 0);
        // The served accuracy is exactly the low effort's accuracy — the
        // fallback predictions are the cached ones.
        let low_correct = set
            .iter()
            .enumerate()
            .filter(|(i, s)| cache.low_prediction(*i) == s.label)
            .count();
        assert_eq!(stats.c_high, low_correct);
        for e in &report.events {
            assert_eq!(e.served_by, Some(0));
        }
    }

    #[test]
    fn faulted_low_effort_escalates_and_is_reported() {
        let mut low = model(22, &[0]);
        crate::faults::FaultInjector::new(23).inject_params(
            &mut low,
            crate::faults::FaultKind::StuckNan,
            10_000,
        );
        let high = model(24, &[0, 1]);
        let set = samples(10, 25);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        assert!(cache.entropies().iter().all(|e| !e.is_finite()));
        // Even at the inclusive Th = 1.0 boundary, faulted samples escalate
        // so the healthy high effort can serve them.
        let (stats, report) = cache.evaluate_guarded(&high, &set, 1.0, Parallelism::Off);
        assert_eq!(stats.n_high, set.len());
        assert_eq!(report.non_finite_at(0), set.len());
        assert_eq!(report.fallbacks(), 0, "escalation is the recovery");
        // The healthy high effort serves its own (real) predictions.
        let high_correct = set
            .iter()
            .filter(|s| high.infer(&s.image).row_argmax(0) == s.label)
            .count();
        assert_eq!(stats.c_high, high_correct);
    }

    #[test]
    fn f_low_curve_is_monotone() {
        let low = model(13, &[0]);
        let set = samples(18, 14);
        let cache = CascadeCache::build(&low, &set, Parallelism::Off);
        let thresholds = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let curve = cache.f_low_curve(&thresholds);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*curve.last().expect("non-empty"), 1.0);
    }

    #[test]
    fn merge_and_sum_aggregate_reports() {
        let mut a = DegradationReport {
            events: vec![DegradationEvent {
                sample: 0,
                level: 0,
                served_by: None,
            }],
        };
        let b = DegradationReport {
            events: vec![
                DegradationEvent {
                    sample: 1,
                    level: 1,
                    served_by: Some(0),
                },
                DegradationEvent {
                    sample: 2,
                    level: 1,
                    served_by: Some(0),
                },
            ],
        };
        a.merge(b.clone());
        assert_eq!(a.len(), 3);
        assert_eq!(a.escalations(), 1);
        assert_eq!(a.fallbacks(), 2);
        assert_eq!(a.non_finite_at(1), 2);
        // Merging an empty report is a no-op; merging into an empty report
        // reproduces the source.
        let before = a.clone();
        a.merge(DegradationReport::default());
        assert_eq!(a, before);
        let summed: DegradationReport =
            vec![before.clone(), DegradationReport::default(), b.clone()]
                .into_iter()
                .sum();
        assert_eq!(summed.len(), before.len() + b.len());
        assert_eq!(summed.fallbacks(), before.fallbacks() + b.fallbacks());
    }

    #[test]
    fn report_display_summarizes_counts() {
        assert_eq!(
            DegradationReport::default().to_string(),
            "no degradation events"
        );
        let report = DegradationReport {
            events: vec![
                DegradationEvent {
                    sample: 0,
                    level: 0,
                    served_by: None,
                },
                DegradationEvent {
                    sample: 1,
                    level: 1,
                    served_by: Some(0),
                },
            ],
        };
        assert_eq!(
            report.to_string(),
            "2 degradation events (1 fault escalation, 1 fallback)"
        );
    }

    #[test]
    fn compacted_cache_evaluates_identically_with_bounded_memory() {
        let low = model(40, &[0]);
        let high = model(41, &[0, 1]);
        let set = samples(16, 42);
        let full = CascadeCache::build(&low, &set, Parallelism::Off);
        let mut compacted = full.clone();
        assert!(compacted.logits_bytes() > 0);
        compacted.compact();
        // The heavy per-sample logit rows are gone...
        assert_eq!(compacted.logits_bytes(), 0);
        assert!(compacted.low_logits().is_empty());
        // ...and every cascade-facing query is unchanged.
        assert_eq!(compacted.len(), full.len());
        let high_p = high.prepare();
        for th in [0.0, 0.4, 0.8, 1.0] {
            assert_eq!(compacted.f_low_at(th), full.f_low_at(th));
            assert_eq!(compacted.escalated(th), full.escalated(th));
            let (stats, report) =
                compacted.evaluate_guarded_prepared(&high_p, &set, th, Parallelism::Off);
            let (full_stats, full_report) =
                full.evaluate_guarded_prepared(&high_p, &set, th, Parallelism::Off);
            assert_eq!(stats, full_stats, "Th={th}");
            assert_eq!(report, full_report, "Th={th}");
        }
        assert_eq!(
            compacted.threshold_reaching(0.5, 0.02),
            full.threshold_reaching(0.5, 0.02)
        );
    }

    #[test]
    fn int8_guarded_prepared_degrades_on_faulted_high_effort() {
        // Satellite contract: PR 3's guarded tests predate the packed-int8
        // path. A stuck-NaN-faulted high effort prepared as Int8 must
        // surface non-finite logits through the integer GEMM (poisoned
        // weight columns) and fall back to the cached low predictions with
        // full accounting, exactly like the f32 path.
        let low = model(44, &[0]);
        let mut high = model(45, &[0, 1]);
        crate::faults::FaultInjector::new(46).inject_params(
            &mut high,
            crate::faults::FaultKind::StuckNan,
            10_000,
        );
        let set = samples(12, 47);
        let cache = CascadeCache::build_int8(&low, &set, Parallelism::Off);
        let high_int8 = high.prepare_int8();
        assert!(high_int8.is_int8());
        // Th = 0 escalates everything into the faulted int8 high effort.
        let (stats, report) =
            cache.evaluate_guarded_prepared(&high_int8, &set, 0.0, Parallelism::Off);
        assert_eq!(stats.n_high, set.len());
        assert_eq!(stats.n_high, stats.c_high + stats.i_high);
        assert_eq!(report.fallbacks(), set.len(), "every sample must fall back");
        assert_eq!(report.non_finite_at(1), set.len());
        assert_eq!(report.non_finite_at(0), 0);
        // Served accuracy is exactly the int8 low effort's cached accuracy.
        let low_correct = set
            .iter()
            .enumerate()
            .filter(|(i, s)| cache.low_prediction(*i) == s.label)
            .count();
        assert_eq!(stats.c_high, low_correct);
    }

    #[test]
    fn int8_guarded_prepared_escalates_on_faulted_low_effort() {
        // Int8 mirror of the faulted-low contract: NaN-poisoned low weights
        // must produce non-finite cached entropies through the packed
        // kernel, so every sample escalates to the healthy int8 high
        // effort even at the inclusive Th = 1.0 boundary.
        let mut low = model(48, &[0]);
        crate::faults::FaultInjector::new(49).inject_params(
            &mut low,
            crate::faults::FaultKind::StuckNan,
            10_000,
        );
        let high = model(50, &[0, 1]);
        let set = samples(10, 51);
        let cache = CascadeCache::build_int8(&low, &set, Parallelism::Off);
        assert!(
            cache.entropies().iter().all(|e| !e.is_finite()),
            "int8 packing must not launder NaN weights to finite entropies"
        );
        let high_int8 = high.prepare_int8();
        let (stats, report) =
            cache.evaluate_guarded_prepared(&high_int8, &set, 1.0, Parallelism::Off);
        assert_eq!(stats.n_high, set.len());
        assert_eq!(report.non_finite_at(0), set.len());
        assert_eq!(report.fallbacks(), 0, "escalation is the recovery");
        let high_correct = set
            .iter()
            .filter(|s| high_int8.infer(&s.image).row_argmax(0) == s.label)
            .count();
        assert_eq!(stats.c_high, high_correct);
    }

    #[test]
    fn int8_cache_tracks_fake_quant_entropies() {
        let low = model(15, &[0]);
        let set = samples(16, 16);
        let reference = CascadeCache::build(&low, &set, Parallelism::Off);
        let int8 = CascadeCache::build_int8(&low, &set, Parallelism::Off);
        assert_eq!(int8.len(), reference.len());
        for (q, r) in int8.entropies().iter().zip(reference.entropies()) {
            assert!(q.is_finite());
            assert!((q - r).abs() < 0.05, "int8 entropy {q} vs fake-quant {r}");
        }
    }
}
