//! End-to-end PIVOT flow: teacher training, CKA capture, Phase-1 selection
//! and per-effort fine-tuning.

use crate::error::PivotError;
use crate::phase1::{select_optimal_path, Phase1Result};
use crate::EffortModel;
use pivot_cka::{stack_flattened, CkaMatrix};
use pivot_data::{Dataset, Sample};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{TrainConfig, Trainer, VisionTransformer, VitConfig};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model geometry to train.
    pub vit: VitConfig,
    /// Efforts to prepare (the paper uses 3..=9 for DeiT-S, 4..=12 for
    /// LVViT-S).
    pub efforts: Vec<usize>,
    /// Teacher (full-effort) training hyper-parameters.
    pub teacher_train: TrainConfig,
    /// Per-effort fine-tuning hyper-parameters (the paper fine-tunes each
    /// effort for 30 epochs with distillation and `L_En`).
    pub finetune: TrainConfig,
    /// Calibration batch size for the CKA matrix (paper: 256 images).
    pub cka_batch: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// A fast configuration around the tiny DeiT stand-in, used by tests
    /// and the quickstart example.
    pub fn tiny() -> Self {
        Self {
            vit: VitConfig::tiny(),
            efforts: vec![3, 6, 9, 12],
            teacher_train: TrainConfig {
                epochs: 12,
                batch_size: 16,
                lr: 2e-3,
                distill_weight: 0.0,
                entropy_weight: 0.05,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 1,
            },
            finetune: TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 1e-3,
                distill_weight: 0.5,
                entropy_weight: 0.1,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 2,
            },
            cka_batch: 128,
            seed: 0,
        }
    }

    /// Validates the configuration, returning a typed error instead of
    /// panicking.
    pub fn try_validate(&self) -> Result<(), PivotError> {
        self.vit.try_validate()?;
        if self.efforts.is_empty() {
            return Err(PivotError::invalid_config(
                "pipeline config",
                "need at least one effort",
            ));
        }
        for &e in &self.efforts {
            if e > self.vit.depth {
                return Err(PivotError::invalid_config(
                    "pipeline config",
                    format!("effort {e} exceeds depth {}", self.vit.depth),
                ));
            }
        }
        if self.cka_batch <= 1 {
            return Err(PivotError::invalid_config(
                "pipeline config",
                "CKA needs at least two samples",
            ));
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — the original fail-fast
    /// behavior, kept for API compatibility; fallible callers should use
    /// [`Self::try_validate`].
    // Panicking compat wrapper over the Result-returning validation path.
    #[allow(clippy::panic)]
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug, Clone)]
pub struct PivotArtifacts {
    /// The trained full-effort teacher (also the evaluation baseline).
    pub teacher: VisionTransformer,
    /// The CKA matrix captured from the teacher (paper Fig. 3a).
    pub cka: CkaMatrix,
    /// Phase-1 results per requested effort (ranked paths included).
    pub phase1: Vec<Phase1Result>,
    /// Fine-tuned models per effort, ascending by effort.
    pub efforts: Vec<EffortModel>,
}

/// Runs teacher training, CKA capture, Phase-1 path selection and
/// per-effort fine-tuning.
///
/// # Example
///
/// ```no_run
/// use pivot_core::{PipelineConfig, PivotPipeline};
/// use pivot_data::{Dataset, DatasetConfig};
///
/// let data = Dataset::generate(&DatasetConfig::standard(), 0);
/// let artifacts = PivotPipeline::new(PipelineConfig::tiny()).run(&data);
/// assert_eq!(artifacts.efforts.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PivotPipeline {
    config: PipelineConfig,
}

impl PivotPipeline {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full flow on a dataset.
    pub fn run(&self, data: &Dataset) -> PivotArtifacts {
        let cfg = &self.config;

        // 1. Train the teacher (the full-effort baseline).
        let mut teacher = VisionTransformer::new(&cfg.vit, &mut Rng::new(cfg.seed));
        Trainer::new(cfg.teacher_train).train(&mut teacher, None, data);

        // 2. CKA matrix from the teacher on a calibration batch.
        let batch: Vec<&Sample> = data.train.iter().take(cfg.cka_batch).collect();
        let cka = compute_cka_matrix(&teacher, &batch);

        // 3-4. Phase 1 per effort + fine-tuning with distillation and L_En.
        let mut efforts = Vec::with_capacity(cfg.efforts.len());
        let mut phase1 = Vec::with_capacity(cfg.efforts.len());
        let mut sorted_efforts = cfg.efforts.clone();
        sorted_efforts.sort_unstable();
        for &effort in &sorted_efforts {
            let result = select_optimal_path(effort, &cka);
            let mut student = teacher.clone();
            student.set_active_attentions(result.optimal.path.active());
            if effort < cfg.vit.depth {
                Trainer::new(cfg.finetune).train(&mut student, Some(&teacher), data);
            }
            efforts.push(EffortModel {
                effort,
                path: result.optimal.path.clone(),
                score: result.optimal.score,
                model: student,
            });
            phase1.push(result);
        }

        PivotArtifacts {
            teacher,
            cka,
            phase1,
            efforts,
        }
    }
}

/// Computes the paper's CKA matrix (`CKA(MLP_i, A_j)`) from a model's
/// traced activations on a calibration batch.
///
/// The model is [prepared](VisionTransformer::prepare) once up front, so
/// the whole batch of traced forward passes shares one fake-quant weight
/// materialization instead of refitting quantizers per sample.
///
/// # Panics
///
/// Panics if the batch is empty.
pub fn compute_cka_matrix(model: &VisionTransformer, batch: &[&Sample]) -> CkaMatrix {
    compute_cka_matrix_prepared(&model.prepare(), batch)
}

/// [`compute_cka_matrix`] on the packed int8 inference path: traced
/// activations come from the integer GEMM
/// ([`VisionTransformer::prepare_int8`]). CKA is a similarity statistic
/// over whole activation matrices, so the per-row activation quantization
/// noise perturbs scores well below the margins Phase 1 selects on; the
/// fake-quant [`compute_cka_matrix`] stays the accuracy reference.
pub fn compute_cka_matrix_int8(model: &VisionTransformer, batch: &[&Sample]) -> CkaMatrix {
    compute_cka_matrix_prepared(&model.prepare_int8(), batch)
}

/// The shared body of [`compute_cka_matrix`] and
/// [`compute_cka_matrix_int8`]: traced forward passes against an
/// already-frozen view.
///
/// # Panics
///
/// Panics if the batch is empty.
pub fn compute_cka_matrix_prepared(
    prepared: &pivot_vit::PreparedModel,
    batch: &[&Sample],
) -> CkaMatrix {
    assert!(!batch.is_empty(), "CKA batch must be non-empty");
    let depth = prepared.config().depth;
    let mut mlp_acts: Vec<Vec<Matrix>> = vec![Vec::with_capacity(batch.len()); depth];
    let mut attn_acts: Vec<Vec<Matrix>> = vec![Vec::with_capacity(batch.len()); depth];
    for sample in batch {
        let trace = prepared.infer_traced(&sample.image);
        for (i, (a, m)) in trace
            .attention_out
            .into_iter()
            .zip(trace.mlp_out)
            .enumerate()
        {
            attn_acts[i].push(a);
            mlp_acts[i].push(m);
        }
    }
    let mlp_reps: Vec<Matrix> = mlp_acts.iter().map(|acts| stack_flattened(acts)).collect();
    let attn_reps: Vec<Matrix> = attn_acts.iter().map(|acts| stack_flattened(acts)).collect();
    CkaMatrix::compute(&mlp_reps, &attn_reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::DatasetConfig;

    fn small_pipeline_config() -> PipelineConfig {
        PipelineConfig {
            vit: VitConfig::test_small(),
            efforts: vec![1, 2, 4],
            teacher_train: TrainConfig {
                epochs: 6,
                batch_size: 16,
                lr: 2e-3,
                distill_weight: 0.0,
                entropy_weight: 0.0,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 1,
            },
            finetune: TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 1e-3,
                distill_weight: 0.5,
                entropy_weight: 0.1,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 2,
            },
            cka_batch: 32,
            seed: 0,
        }
    }

    fn small_data() -> Dataset {
        Dataset::generate(
            &DatasetConfig {
                classes: 4,
                image_size: 16,
                train_per_class: 20,
                test_per_class: 8,
                difficulty: (0.0, 0.8),
            },
            3,
        )
    }

    #[test]
    fn try_validate_returns_typed_errors_without_panicking() {
        assert!(small_pipeline_config().try_validate().is_ok());

        let mut no_efforts = small_pipeline_config();
        no_efforts.efforts.clear();
        let e = no_efforts.try_validate().unwrap_err();
        assert!(e.to_string().contains("at least one effort"), "{e}");

        let mut too_deep = small_pipeline_config();
        too_deep.efforts.push(99);
        let e = too_deep.try_validate().unwrap_err();
        assert!(e.to_string().contains("exceeds depth"), "{e}");

        let mut bad_vit = small_pipeline_config();
        bad_vit.vit.patch_size = 0;
        let e = bad_vit.try_validate().unwrap_err();
        assert!(e.to_string().contains("ViT config"), "{e}");

        let mut bad_cka = small_pipeline_config();
        bad_cka.cka_batch = 1;
        assert!(bad_cka.try_validate().is_err());
    }

    #[test]
    fn pipeline_produces_all_artifacts() {
        let data = small_data();
        let artifacts = PivotPipeline::new(small_pipeline_config()).run(&data);
        assert_eq!(artifacts.efforts.len(), 3);
        assert_eq!(artifacts.cka.depth(), 4);
        // Efforts ascending and realized in the models.
        for (e, em) in artifacts.efforts.iter().enumerate() {
            assert_eq!(em.model.effort(), em.effort);
            assert_eq!(em.path.effort(), em.effort);
            if e > 0 {
                assert!(em.effort > artifacts.efforts[e - 1].effort);
            }
        }
        // The full effort equals the teacher's configuration.
        let full = artifacts.efforts.last().expect("efforts");
        assert_eq!(full.effort, 4);
    }

    #[test]
    fn cka_matrix_values_are_valid() {
        let data = small_data();
        let mut model = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(0));
        Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .train(&mut model, None, &data);
        let batch: Vec<&Sample> = data.train.iter().take(24).collect();
        let cka = compute_cka_matrix(&model, &batch);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let v = cka.get(i, j);
                assert!((0.0..=1.0).contains(&v), "CKA({i},{j}) = {v}");
            }
        }
        // Residual streams are strongly correlated in a trained ViT; the
        // matrix must not be all zeros.
        assert!(cka.get(0, 1) > 0.01);
    }

    #[test]
    fn int8_cka_matrix_tracks_fake_quant_reference() {
        let model =
            VisionTransformer::new(&VitConfig::test_small(), &mut pivot_tensor::Rng::new(17));
        let data = small_data();
        let batch: Vec<&Sample> = data.train.iter().take(16).collect();
        let reference = compute_cka_matrix(&model, &batch);
        let int8 = compute_cka_matrix_int8(&model, &batch);
        assert_eq!(int8.depth(), reference.depth());
        for i in 0..int8.depth() {
            for j in 0..int8.depth() {
                let q = int8.get(i, j);
                let r = reference.get(i, j);
                assert!((0.0..=1.0).contains(&q), "CKA({i},{j}) = {q}");
                // CKA is a normalized similarity over whole activation
                // matrices, so per-row activation quantization noise
                // perturbs it far less than individual logits.
                assert!((q - r).abs() < 0.05, "CKA({i},{j}) int8 {q} vs {r}");
            }
        }
    }

    #[test]
    fn lower_efforts_keep_reasonable_accuracy_via_distillation() {
        let data = small_data();
        let artifacts = PivotPipeline::new(small_pipeline_config()).run(&data);
        let teacher_acc = artifacts.teacher.accuracy(&data.test);
        let low = &artifacts.efforts[0];
        let low_acc = low.model.accuracy(&data.test);
        // The distilled 1-attention model must retain a useful fraction of
        // the teacher's accuracy (not collapse to chance = 0.25).
        assert!(
            low_acc > teacher_acc * 0.5,
            "effort {} accuracy {low_acc} vs teacher {teacher_acc}",
            low.effort
        );
    }
}
