//! Guarded prepared evaluation over a slice of raw images — the
//! per-request form of the cascade that online consumers (the `pivot-serve`
//! engine) build on.
//!
//! [`CascadeCache::evaluate_guarded_prepared`](crate::CascadeCache::evaluate_guarded_prepared)
//! answers the *offline* question: given a calibration set with labels and
//! a pre-built entropy cache, what are the cascade's aggregate statistics?
//! A server answers a different question per batch: given a transient slice
//! of unlabeled images that will never be seen again, what does the cascade
//! *predict* for each — under an effort cap the overload controller may
//! have imposed — and which predictions were degraded by faults?
//!
//! [`evaluate_guarded_slice`] is that primitive. It reuses the exact
//! machinery of the offline path — [`batched_logits_with`] chunked GEMMs on
//! the worker pool, the [`stays_low`] gate, non-finite-aware fallback — so
//! on healthy models its per-sample predictions and entropies are
//! **bit-identical** to what the offline cache-based evaluation computes
//! for the same images, for every batch split and [`Parallelism`].
//!
//! ## Gate and degradation contract
//!
//! Levels are ordered low → high effort, with `levels - 1` thresholds.
//! A sample ascends while `!stays_low(entropy, threshold[level])` and the
//! level is below `max_level` (the effort cap); the cap level accepts
//! everything. With two levels and `max_level = 1` the routing is exactly
//! the paper cascade's. Faults follow DESIGN.md §5, per sample:
//!
//! * a non-finite entropy at a gate level never stays low, so a faulted
//!   level auto-escalates (event with `served_by: None`);
//! * non-finite logits at the *exit* level are served by the deepest
//!   earlier visited level with finite logits (event with `served_by:
//!   Some(level)`); if every visited level is faulty the exit level's own
//!   argmax stands (event with `served_by: None`).

use crate::batched::batched_logits_with;
use crate::cache::{DegradationEvent, DegradationReport};
use crate::cascade::stays_low;
use crate::parallel::Parallelism;
use pivot_nn::normalized_entropy;
use pivot_tensor::Matrix;
use pivot_vit::PreparedModel;

/// What one sample's guarded cascade walk produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedOutcome {
    /// Predicted class (after any fault fallback).
    pub prediction: usize,
    /// Effort level the sample exited at (whose cost was spent).
    pub level: usize,
    /// Normalized entropy of the exit level's logits (NaN if faulted).
    pub entropy: f32,
    /// Normalized entropy observed at level 0 (the cascade's low effort),
    /// which every sample visits regardless of where it exits. This is
    /// the signal an online threshold controller tunes against: the gate
    /// decision `stays_low(low_entropy, Th)` for any candidate `Th` is
    /// computable from it without re-running inference. NaN if level 0
    /// was faulted.
    pub low_entropy: f32,
    /// Whether the sample exited at the effort cap while its entropy
    /// still demanded escalation — the signature of an overload-degraded
    /// answer. Always `false` when the cap is the full ladder top and for
    /// samples the gate genuinely accepted.
    pub capped: bool,
    /// Whether the exit level's logits were finite. When `false`, the
    /// prediction came from `fault_fallback` (or, if that is `None`, from
    /// the faulty logits' own argmax — the last resort).
    pub exit_finite: bool,
    /// The earlier level whose prediction was served instead of the
    /// faulty exit level's, if any.
    pub fault_fallback: Option<usize>,
}

/// Per-level observation retained while a sample ascends.
#[derive(Debug, Clone, Copy)]
struct LevelObs {
    entropy: f32,
    prediction: usize,
    finite: bool,
}

/// Runs the guarded cascade over a slice of images against prepared
/// effort levels, capping ascent at `max_level`, and returns one
/// [`GuardedOutcome`] per image (in input order) plus the batch's
/// [`DegradationReport`] (sample indices local to this slice).
///
/// Each level's inference is one batched sweep over exactly the samples
/// that reached it, so a size-`B` slice costs the same GEMM work as the
/// offline cache path would spend on those `B` samples.
///
/// `thresholds` is a **per-batch parameter**, not a ladder constant: an
/// online caller may pass a different gate threshold on every invocation
/// (the `pivot-serve` adaptive threshold controller retunes `Th` between
/// batches), and each outcome additionally carries the level-0 entropy
/// ([`GuardedOutcome::low_entropy`]) so the controller can evaluate any
/// candidate threshold against observed traffic without extra inference.
///
/// # Panics
///
/// Panics if `levels` is empty, `thresholds.len() != levels.len() - 1`,
/// or `max_level >= levels.len()`.
pub fn evaluate_guarded_slice(
    levels: &[PreparedModel],
    thresholds: &[f32],
    max_level: usize,
    images: &[&Matrix],
    par: Parallelism,
) -> (Vec<GuardedOutcome>, DegradationReport) {
    assert!(!levels.is_empty(), "need at least one effort level");
    assert_eq!(
        thresholds.len(),
        levels.len() - 1,
        "need one threshold per gate (levels - 1)"
    );
    assert!(max_level < levels.len(), "effort cap beyond ladder top");

    let n = images.len();
    let mut visited: Vec<Vec<LevelObs>> = vec![Vec::new(); n];
    let mut exit = vec![0usize; n];
    let mut active: Vec<usize> = (0..n).collect();
    for (level, model) in levels.iter().enumerate().take(max_level + 1) {
        if active.is_empty() {
            break;
        }
        let level_images: Vec<&Matrix> = active.iter().map(|&i| images[i]).collect();
        let logits = batched_logits_with(model, &level_images, |m| *m, par);
        for (&i, logits) in active.iter().zip(&logits) {
            visited[i].push(LevelObs {
                entropy: normalized_entropy(logits),
                prediction: logits.row_argmax(0),
                finite: logits.is_all_finite(),
            });
        }
        let is_cap = level == max_level;
        active.retain(|&i| {
            let obs = visited[i].last().expect("pushed above");
            if is_cap || stays_low(obs.entropy, thresholds[level]) {
                exit[i] = level;
                false
            } else {
                true
            }
        });
    }

    let mut outcomes = Vec::with_capacity(n);
    let mut report = DegradationReport::default();
    for (i, walk) in visited.iter().enumerate() {
        let exit_level = exit[i];
        for (level, obs) in walk.iter().enumerate().take(exit_level) {
            if !obs.entropy.is_finite() {
                report.events.push(DegradationEvent {
                    sample: i,
                    level,
                    served_by: None,
                });
            }
        }
        let top = walk[exit_level];
        let mut fault_fallback = None;
        let prediction = if top.finite {
            top.prediction
        } else {
            fault_fallback = (0..exit_level).rev().find(|&l| walk[l].finite);
            report.events.push(DegradationEvent {
                sample: i,
                level: exit_level,
                served_by: fault_fallback,
            });
            match fault_fallback {
                Some(l) => walk[l].prediction,
                None => top.prediction,
            }
        };
        let capped = exit_level == max_level
            && max_level < levels.len() - 1
            && !stays_low(top.entropy, thresholds[max_level]);
        outcomes.push(GuardedOutcome {
            prediction,
            level: exit_level,
            entropy: top.entropy,
            low_entropy: walk[0].entropy,
            capped,
            exit_finite: top.finite,
            fault_fallback,
        });
    }
    (outcomes, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CascadeCache;
    use crate::cascade::CascadeStats;
    use crate::faults::{FaultInjector, FaultKind};
    use pivot_data::{Dataset, DatasetConfig, Sample};
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};

    fn model(seed: u64, active: &[usize]) -> VisionTransformer {
        let mut m = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(seed));
        m.set_active_attentions(active);
        m
    }

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], n / 2, seed)
    }

    fn images(set: &[Sample]) -> Vec<&Matrix> {
        set.iter().map(|s| &s.image).collect()
    }

    /// Folds slice outcomes into offline-style [`CascadeStats`] using the
    /// ground-truth labels (level 0 = low, everything above = high).
    fn to_cascade_stats(outcomes: &[GuardedOutcome], set: &[Sample]) -> CascadeStats {
        let mut stats = CascadeStats::default();
        for (o, s) in outcomes.iter().zip(set) {
            let correct = o.prediction == s.label;
            if o.level == 0 {
                stats.n_low += 1;
                stats.c_low += correct as usize;
                stats.i_low += !correct as usize;
            } else {
                stats.n_high += 1;
                stats.c_high += correct as usize;
                stats.i_high += !correct as usize;
            }
        }
        stats
    }

    #[test]
    fn healthy_two_level_slice_is_bit_identical_to_offline_cache_path() {
        let low = model(0, &[0]);
        let high = model(1, &[0, 1]);
        let set = samples(18, 2);
        let (low_p, high_p) = (low.prepare(), high.prepare());
        let cache = CascadeCache::build_prepared(&low_p, &set, Parallelism::Off);
        for th in [0.0, 0.35, 0.7, 1.0] {
            let (outcomes, report) = evaluate_guarded_slice(
                &[low_p.clone(), high_p.clone()],
                &[th],
                1,
                &images(&set),
                Parallelism::Off,
            );
            assert!(report.is_empty(), "healthy models must not degrade");
            let (offline_stats, offline_report) =
                cache.evaluate_guarded_prepared(&high_p, &set, th, Parallelism::Off);
            assert!(offline_report.is_empty());
            assert_eq!(to_cascade_stats(&outcomes, &set), offline_stats, "Th={th}");
            // Per-sample routing and low-level entropies agree bitwise
            // with the offline cache.
            for (i, o) in outcomes.iter().enumerate() {
                let escalated = !crate::cascade::stays_low(cache.entropies()[i], th);
                assert_eq!(o.level, escalated as usize, "sample {i} Th={th}");
                assert!(!o.capped);
                assert!(o.exit_finite);
                if o.level == 0 {
                    assert_eq!(o.entropy.to_bits(), cache.entropies()[i].to_bits());
                    assert_eq!(o.prediction, cache.low_prediction(i));
                }
            }
        }
    }

    #[test]
    fn slice_evaluation_is_bit_identical_across_parallelism() {
        let low = model(3, &[0]);
        let high = model(4, &[0, 1]);
        let set = samples(40, 5);
        let levels = [low.prepare(), high.prepare()];
        let (seq, seq_report) =
            evaluate_guarded_slice(&levels, &[0.5], 1, &images(&set), Parallelism::Off);
        for par in [Parallelism::Fixed(3), Parallelism::Fixed(16)] {
            let (par_out, par_report) =
                evaluate_guarded_slice(&levels, &[0.5], 1, &images(&set), par);
            assert_eq!(par_report, seq_report);
            for (a, b) in seq.iter().zip(&par_out) {
                assert_eq!(a.prediction, b.prediction);
                assert_eq!(a.level, b.level);
                assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
            }
        }
    }

    #[test]
    fn effort_cap_zero_serves_everything_low_and_flags_capped() {
        let low = model(6, &[0]);
        let high = model(7, &[0, 1]);
        let set = samples(16, 8);
        let levels = [low.prepare(), high.prepare()];
        let th = 0.5;
        let (full, _) = evaluate_guarded_slice(&levels, &[th], 1, &images(&set), Parallelism::Off);
        let (capped, report) =
            evaluate_guarded_slice(&levels, &[th], 0, &images(&set), Parallelism::Off);
        assert!(report.is_empty());
        let mut would_escalate = 0;
        for (c, f) in capped.iter().zip(&full) {
            assert_eq!(c.level, 0, "cap 0 must never run the high effort");
            // A capped walk and a full walk agree on the low-level gate:
            // `capped` is set exactly for the samples the full walk
            // escalated.
            assert_eq!(c.capped, f.level == 1);
            would_escalate += c.capped as usize;
            if f.level == 0 {
                assert_eq!(c.prediction, f.prediction);
                assert_eq!(c.entropy.to_bits(), f.entropy.to_bits());
            }
        }
        assert!(would_escalate > 0, "test set must exercise escalation");
    }

    #[test]
    fn three_level_ladder_respects_intermediate_cap() {
        let levels: Vec<_> = [&[0usize][..], &[0, 1], &[0, 1, 2, 3]]
            .iter()
            .map(|active| model(9, active).prepare())
            .collect();
        let ths = [0.0, 0.0]; // send everything as high as allowed
        let set = samples(10, 10);
        for cap in 0..3 {
            let (outcomes, report) =
                evaluate_guarded_slice(&levels, &ths, cap, &images(&set), Parallelism::Off);
            assert!(report.is_empty());
            for o in &outcomes {
                assert_eq!(o.level, cap, "zero thresholds pin every exit at the cap");
                assert_eq!(o.capped, cap < 2);
            }
        }
    }

    #[test]
    fn faulted_high_effort_falls_back_with_cascade_identical_accounting() {
        let low = model(11, &[0]);
        let mut high = model(12, &[0, 1]);
        FaultInjector::new(13).inject_params(&mut high, FaultKind::StuckNan, 10_000);
        let set = samples(12, 14);
        let (low_p, high_p) = (low.prepare(), high.prepare());
        let cache = CascadeCache::build_prepared(&low_p, &set, Parallelism::Off);
        // Th = 0 escalates everything into the faulted high effort.
        let (outcomes, report) = evaluate_guarded_slice(
            &[low_p, high_p.clone()],
            &[0.0],
            1,
            &images(&set),
            Parallelism::Off,
        );
        let (offline_stats, offline_report) =
            cache.evaluate_guarded_prepared(&high_p, &set, 0.0, Parallelism::Off);
        assert_eq!(to_cascade_stats(&outcomes, &set), offline_stats);
        assert_eq!(report, offline_report);
        assert_eq!(report.fallbacks(), set.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.level, 1);
            assert!(!o.exit_finite);
            assert_eq!(o.fault_fallback, Some(0));
            assert_eq!(o.prediction, cache.low_prediction(i));
        }
    }

    #[test]
    fn faulted_low_effort_escalates_to_healthy_high() {
        let mut low = model(15, &[0]);
        FaultInjector::new(16).inject_params(&mut low, FaultKind::StuckNan, 10_000);
        let high = model(17, &[0, 1]);
        let set = samples(10, 18);
        let (low_p, high_p) = (low.prepare(), high.prepare());
        // Even at the inclusive Th = 1.0 boundary, NaN entropies escalate.
        let (outcomes, report) = evaluate_guarded_slice(
            &[low_p, high_p.clone()],
            &[1.0],
            1,
            &images(&set),
            Parallelism::Off,
        );
        assert_eq!(report.non_finite_at(0), set.len());
        assert_eq!(report.fallbacks(), 0, "escalation is the recovery");
        for (o, s) in outcomes.iter().zip(&set) {
            assert_eq!(o.level, 1);
            assert!(o.exit_finite);
            assert_eq!(o.prediction, high_p.infer(&s.image).row_argmax(0));
        }
    }

    /// `low_entropy` is always the level-0 observation: bit-equal to
    /// `entropy` for samples that exit low, and bit-equal to the offline
    /// cache's low-effort entropy for every sample regardless of exit.
    #[test]
    fn low_entropy_is_the_level_zero_observation_for_every_exit() {
        let low = model(23, &[0]);
        let high = model(24, &[0, 1]);
        let set = samples(20, 25);
        let low_p = low.prepare();
        let cache = CascadeCache::build_prepared(&low_p, &set, Parallelism::Off);
        let (outcomes, _) = evaluate_guarded_slice(
            &[low_p, high.prepare()],
            &[0.5],
            1,
            &images(&set),
            Parallelism::Off,
        );
        let mut escalated = 0;
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.low_entropy.to_bits(), cache.entropies()[i].to_bits());
            if o.level == 0 {
                assert_eq!(o.low_entropy.to_bits(), o.entropy.to_bits());
            } else {
                escalated += 1;
            }
        }
        assert!(escalated > 0, "test set must exercise escalation");
    }

    #[test]
    fn empty_slice_yields_empty_results() {
        let low = model(19, &[0]);
        let high = model(20, &[0, 1]);
        let (outcomes, report) = evaluate_guarded_slice(
            &[low.prepare(), high.prepare()],
            &[0.5],
            1,
            &[],
            Parallelism::Off,
        );
        assert!(outcomes.is_empty());
        assert!(report.is_empty());
    }

    #[test]
    #[should_panic(expected = "effort cap beyond ladder top")]
    fn cap_beyond_top_panics() {
        let low = model(21, &[0]);
        let high = model(22, &[0, 1]);
        let _ = evaluate_guarded_slice(
            &[low.prepare(), high.prepare()],
            &[0.5],
            2,
            &[],
            Parallelism::Off,
        );
    }
}
