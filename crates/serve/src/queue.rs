//! The bounded admission queue: backpressure at the door, coalescing at
//! the exit.
//!
//! Admission is a hard capacity check — a full queue rejects with a typed
//! [`SubmitError::Rejected`] carrying the observed depth, so overload
//! surfaces to callers immediately instead of accumulating as unbounded
//! buffering (the failure mode the ISSUE's robustness contract forbids).
//! The exit side coalesces: the engine thread blocks until work arrives,
//! then holds the batch open for a configurable window so concurrent
//! arrivals share one `forward_batch`-wide GEMM.

use crate::clock::ServeClock;
use crate::request::{ServeResponse, SubmitError};
use pivot_tensor::Matrix;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One admitted request waiting for (or undergoing) execution.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Request id (matches the ticket handed to the caller).
    pub id: u64,
    /// The input image.
    pub image: Matrix,
    /// Engine-clock admission time.
    pub enqueued_ns: u64,
    /// Engine-clock deadline; resolution after this is a timeout.
    pub deadline_ns: u64,
    /// Per-request response channel.
    pub reply: Sender<ServeResponse>,
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<Pending>,
    open: bool,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded MPSC admission queue with condvar-driven batch formation.
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    arrived: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates an open queue admitting at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "admission queue needs capacity >= 1");
        Self {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                open: true,
            }),
            arrived: Condvar::new(),
            capacity,
        }
    }

    /// Admits a request, or rejects it with backpressure. Never blocks.
    pub fn push(&self, pending: Pending) -> Result<(), SubmitError> {
        let mut inner = lock(&self.inner);
        if !inner.open {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.capacity {
            return Err(SubmitError::Rejected {
                queue_depth: inner.queue.len(),
            });
        }
        inner.queue.push_back(pending);
        drop(inner);
        self.arrived.notify_one();
        Ok(())
    }

    /// Requests currently waiting (not yet handed to the engine).
    pub fn depth(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Stops admissions; waiting batch-formers wake so the engine can
    /// drain what remains and observe the closed+empty terminal state.
    pub fn close(&self) {
        lock(&self.inner).open = false;
        self.arrived.notify_all();
    }

    /// Blocks until at least one request is available (or the queue is
    /// closed), then holds the batch open up to `window` of wall time for
    /// concurrent arrivals to coalesce, and returns up to `max_batch`
    /// live requests in admission order. Returns `None` exactly when the
    /// queue is closed **and** drained — the engine's termination signal.
    ///
    /// Requests whose deadline (on `clock`) has already expired are shed
    /// at batch formation: they are pulled out of the queue *before* the
    /// live take, prepended to the returned batch (the engine resolves
    /// them as timeouts without inference), and do **not** count toward
    /// `max_batch` — a stale head never blocks a viable micro-batch. The
    /// purge runs again after the coalescing window so requests that
    /// expire while the batch is held open are shed too.
    ///
    /// A closed queue skips the coalescing wait: drain proceeds at full
    /// speed in `max_batch`-sized bites.
    pub fn next_batch(
        &self,
        max_batch: usize,
        window: Duration,
        clock: &ServeClock,
    ) -> Option<Vec<Pending>> {
        let mut inner = lock(&self.inner);
        let mut expired = Vec::new();
        loop {
            Self::purge_expired(&mut inner.queue, clock, &mut expired);
            if !inner.queue.is_empty() || !expired.is_empty() {
                break;
            }
            if !inner.open {
                return None;
            }
            inner = self
                .arrived
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.open && !window.is_zero() {
            let hold_until = Instant::now() + window;
            while inner.queue.len() < max_batch && inner.open {
                let left = hold_until.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (guard, timeout) = self
                    .arrived
                    .wait_timeout(inner, left)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            Self::purge_expired(&mut inner.queue, clock, &mut expired);
        }
        let take = inner.queue.len().min(max_batch);
        expired.extend(inner.queue.drain(..take));
        Some(expired)
    }

    /// Moves every deadline-expired request (on `clock`) from `queue` into
    /// `expired`, preserving admission order in both.
    fn purge_expired(
        queue: &mut VecDeque<Pending>,
        clock: &ServeClock,
        expired: &mut Vec<Pending>,
    ) {
        let now = clock.now_ns();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].deadline_ns <= now {
                if let Some(p) = queue.remove(i) {
                    expired.push(p);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Non-blocking batch formation for deterministic stepping in tests:
    /// returns up to `max_batch` requests immediately (possibly none).
    #[cfg(test)]
    pub fn try_drain(&self, max_batch: usize) -> Vec<Pending> {
        let mut inner = lock(&self.inner);
        let take = inner.queue.len().min(max_batch);
        inner.queue.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn pending(id: u64) -> (Pending, std::sync::mpsc::Receiver<ServeResponse>) {
        pending_due(id, u64::MAX)
    }

    fn pending_due(
        id: u64,
        deadline_ns: u64,
    ) -> (Pending, std::sync::mpsc::Receiver<ServeResponse>) {
        let (tx, rx) = channel();
        (
            Pending {
                id,
                image: Matrix::zeros(2, 2),
                enqueued_ns: 0,
                deadline_ns,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_with_observed_depth() {
        let q = AdmissionQueue::new(2);
        assert!(q.push(pending(0).0).is_ok());
        assert!(q.push(pending(1).0).is_ok());
        assert_eq!(
            q.push(pending(2).0),
            Err(SubmitError::Rejected { queue_depth: 2 })
        );
        assert_eq!(q.depth(), 2);
        // Draining frees capacity again.
        assert_eq!(q.try_drain(1).len(), 1);
        assert!(q.push(pending(3).0).is_ok());
    }

    #[test]
    fn closed_queue_rejects_as_shutting_down() {
        let q = AdmissionQueue::new(4);
        assert!(q.push(pending(0).0).is_ok());
        q.close();
        assert_eq!(q.push(pending(1).0), Err(SubmitError::ShuttingDown));
        // The already-admitted request still drains...
        let clock = ServeClock::manual();
        let batch = q
            .next_batch(8, Duration::ZERO, &clock)
            .expect("one pending");
        assert_eq!(batch.len(), 1);
        // ...and the closed+empty queue reports termination.
        assert!(q.next_batch(8, Duration::ZERO, &clock).is_none());
    }

    #[test]
    fn batches_preserve_admission_order_and_cap() {
        let q = AdmissionQueue::new(16);
        for i in 0..5 {
            q.push(pending(i).0).expect("capacity");
        }
        let clock = ServeClock::manual();
        let batch = q
            .next_batch(3, Duration::ZERO, &clock)
            .expect("pending work");
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        let rest = q
            .next_batch(3, Duration::ZERO, &clock)
            .expect("pending work");
        assert_eq!(rest.iter().map(|p| p.id).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn coalescing_window_gathers_concurrent_arrivals() {
        let q = Arc::new(AdmissionQueue::new(16));
        q.push(pending(0).0).expect("capacity");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 1..4 {
                    std::thread::sleep(Duration::from_millis(5));
                    q.push(pending(i).0).expect("capacity");
                }
            })
        };
        // A generous window lets the trickled arrivals coalesce into one
        // batch (the batch fills to max_batch and returns early).
        let batch = q
            .next_batch(4, Duration::from_secs(5), &ServeClock::manual())
            .expect("pending work");
        producer.join().expect("producer");
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn blocked_former_wakes_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let former = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.next_batch(4, Duration::from_millis(1), &ServeClock::manual())
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(former.join().expect("former").is_none());
    }

    /// The stale-head bugfix: requests that expired in the queue are shed
    /// at batch formation and do not count toward `max_batch`, so an
    /// expired head never displaces viable work from a micro-batch.
    #[test]
    fn expired_head_does_not_block_a_viable_micro_batch() {
        let clock = ServeClock::manual();
        let q = AdmissionQueue::new(16);
        // Two requests already past their deadline at formation time...
        q.push(pending_due(0, 5).0).expect("capacity");
        q.push(pending_due(1, 5).0).expect("capacity");
        // ...ahead of three live ones.
        for i in 2..5 {
            q.push(pending(i).0).expect("capacity");
        }
        clock.advance(Duration::from_nanos(10));
        // max_batch 3: the batch carries BOTH expired (for timeout
        // resolution) and a full live take of 3.
        let batch = q.next_batch(3, Duration::ZERO, &clock).expect("pending");
        assert_eq!(
            batch.iter().map(|p| p.id).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        let now = clock.now_ns();
        assert_eq!(batch.iter().filter(|p| p.deadline_ns <= now).count(), 2);
        assert_eq!(q.depth(), 0);
    }

    /// Expired requests buried mid-queue are purged too, not just a
    /// contiguous head run.
    #[test]
    fn expired_mid_queue_requests_are_shed_in_order() {
        let clock = ServeClock::manual();
        let q = AdmissionQueue::new(16);
        q.push(pending(0).0).expect("capacity");
        q.push(pending_due(1, 5).0).expect("capacity");
        q.push(pending(2).0).expect("capacity");
        clock.advance(Duration::from_nanos(10));
        let batch = q.next_batch(1, Duration::ZERO, &clock).expect("pending");
        // One expired (id 1, pulled from the middle) + one live (the cap).
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), [1, 0]);
        assert_eq!(q.depth(), 1, "live id 2 stays queued");
    }

    /// A queue holding only expired work still forms a batch (of expired
    /// requests) so they resolve as timeouts instead of rotting.
    #[test]
    fn all_expired_queue_still_forms_a_shedding_batch() {
        let clock = ServeClock::manual();
        let q = AdmissionQueue::new(4);
        q.push(pending_due(0, 5).0).expect("capacity");
        q.push(pending_due(1, 5).0).expect("capacity");
        clock.advance(Duration::from_nanos(10));
        let batch = q.next_batch(8, Duration::ZERO, &clock).expect("pending");
        assert_eq!(batch.len(), 2);
        assert_eq!(q.depth(), 0);
    }
}
