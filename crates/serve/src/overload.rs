//! The overload controller: a hysteretic effort-downshift state machine.
//!
//! PIVOT's premise is that effort is negotiable and deadlines are not.
//! When the queue ages past its budget — the engine is not keeping up —
//! blowing deadlines helps nobody; serving *cheaper* answers restores
//! balance, because the cascade's lower efforts cost a fraction of the
//! GEMM work (PAPER.md Phase 2 trades exactly this). The controller
//! watches the age of the oldest queued request at every batch and moves
//! a single cap through the effort ladder:
//!
//! * **Downshift** (one level per overloaded observation): oldest age
//!   exceeds the budget → the cap drops, ultimately to level 0
//!   (low-effort-only). Escalation-worthy samples then resolve as
//!   `Degraded` instead of timing out.
//! * **Recover** (hysteretic): only after `recover_after` *consecutive*
//!   observations with age at or below `recover_ratio x budget` does the
//!   cap rise one level. A single calm batch never re-opens the expensive
//!   path — the asymmetry that prevents cap flapping at the boundary.
//! * Ages between the calm line and the budget hold the cap and reset the
//!   calm streak.

use std::time::Duration;

/// Tuning of the overload state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Oldest-queued-age budget: one observation above this downshifts
    /// the cap one level.
    pub queue_budget: Duration,
    /// Fraction of the budget at or below which an observation counts as
    /// calm (recovery evidence). Clamped to `[0, 1]` at construction.
    pub recover_ratio: f64,
    /// Consecutive calm observations required per upshift step.
    pub recover_after: usize,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            queue_budget: Duration::from_millis(50),
            recover_ratio: 0.5,
            recover_after: 8,
        }
    }
}

/// The state machine. One instance per engine, observed once per batch.
#[derive(Debug, Clone)]
pub struct OverloadController {
    top: usize,
    cap: usize,
    budget_ns: u64,
    calm_line_ns: u64,
    recover_after: usize,
    calm_streak: usize,
    downshifts: u64,
    upshifts: u64,
}

impl OverloadController {
    /// Creates a controller for a ladder whose highest level is `top`
    /// (i.e. `levels - 1`), starting at full effort.
    ///
    /// # Panics
    ///
    /// Panics if `recover_after` is zero (recovery would be instant and
    /// the hysteresis contract meaningless).
    pub fn new(top: usize, policy: OverloadPolicy) -> Self {
        assert!(policy.recover_after >= 1, "recover_after must be >= 1");
        let budget_ns = policy.queue_budget.as_nanos() as u64;
        let ratio = policy.recover_ratio.clamp(0.0, 1.0);
        Self {
            top,
            cap: top,
            budget_ns,
            calm_line_ns: (budget_ns as f64 * ratio) as u64,
            recover_after: policy.recover_after,
            calm_streak: 0,
            downshifts: 0,
            upshifts: 0,
        }
    }

    /// Feeds one queue-age observation and returns the effort cap to use
    /// for the batch about to execute.
    pub fn observe(&mut self, oldest_age: Duration) -> usize {
        let age_ns = oldest_age.as_nanos() as u64;
        if age_ns > self.budget_ns {
            if self.cap > 0 {
                self.cap -= 1;
                self.downshifts += 1;
            }
            self.calm_streak = 0;
        } else if age_ns <= self.calm_line_ns {
            if self.cap < self.top {
                self.calm_streak += 1;
                if self.calm_streak >= self.recover_after {
                    self.cap += 1;
                    self.upshifts += 1;
                    self.calm_streak = 0;
                }
            }
        } else {
            // The gray zone between calm and overloaded: hold the cap,
            // restart the recovery clock.
            self.calm_streak = 0;
        }
        self.cap
    }

    /// The current effort cap (highest ladder level the engine may run).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether the engine currently serves below full effort.
    pub fn is_degraded(&self) -> bool {
        self.cap < self.top
    }

    /// Total downshift steps taken.
    pub fn downshifts(&self) -> u64 {
        self.downshifts
    }

    /// Total upshift (recovery) steps taken.
    pub fn upshifts(&self) -> u64 {
        self.upshifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(top: usize) -> OverloadController {
        OverloadController::new(
            top,
            OverloadPolicy {
                queue_budget: Duration::from_millis(100),
                recover_ratio: 0.5,
                recover_after: 3,
            },
        )
    }

    #[test]
    fn sustained_overload_staircases_down_to_low_only() {
        let mut c = controller(3);
        assert_eq!(c.cap(), 3);
        let over = Duration::from_millis(150);
        assert_eq!(c.observe(over), 2);
        assert_eq!(c.observe(over), 1);
        assert_eq!(c.observe(over), 0);
        // The floor holds: low-effort-only is the terminal degradation.
        assert_eq!(c.observe(over), 0);
        assert_eq!(c.downshifts(), 3);
        assert!(c.is_degraded());
    }

    #[test]
    fn recovery_is_hysteretic_not_instant() {
        let mut c = controller(2);
        let over = Duration::from_millis(200);
        let calm = Duration::from_millis(10);
        c.observe(over);
        assert_eq!(c.cap(), 1);
        // Two calm observations are not enough (recover_after = 3)...
        assert_eq!(c.observe(calm), 1);
        assert_eq!(c.observe(calm), 1);
        // ...the third restores one level, and the streak restarts.
        assert_eq!(c.observe(calm), 2);
        assert_eq!(c.upshifts(), 1);
        assert!(!c.is_degraded());
        // At full effort, calm observations are a no-op.
        assert_eq!(c.observe(calm), 2);
        assert_eq!(c.upshifts(), 1);
    }

    #[test]
    fn gray_zone_holds_cap_and_resets_the_streak() {
        let mut c = controller(2);
        c.observe(Duration::from_millis(200)); // cap -> 1
        let calm = Duration::from_millis(10);
        let gray = Duration::from_millis(80); // between 50 (calm line) and 100 (budget)
        c.observe(calm);
        c.observe(calm);
        // The gray observation wipes the two-calm streak...
        assert_eq!(c.observe(gray), 1);
        // ...so recovery needs three fresh calm ticks again.
        c.observe(calm);
        c.observe(calm);
        assert_eq!(c.cap(), 1);
        assert_eq!(c.observe(calm), 2);
    }

    #[test]
    fn overload_mid_recovery_cancels_progress() {
        let mut c = controller(1);
        c.observe(Duration::from_millis(200)); // cap -> 0
        c.observe(Duration::from_millis(1));
        c.observe(Duration::from_millis(1));
        // A fresh overload both wipes the streak and (already at 0) keeps
        // the floor.
        assert_eq!(c.observe(Duration::from_millis(300)), 0);
        c.observe(Duration::from_millis(1));
        c.observe(Duration::from_millis(1));
        assert_eq!(c.cap(), 0);
        assert_eq!(c.observe(Duration::from_millis(1)), 1);
    }

    #[test]
    #[should_panic(expected = "recover_after")]
    fn zero_recovery_window_is_rejected() {
        let _ = OverloadController::new(
            1,
            OverloadPolicy {
                recover_after: 0,
                ..OverloadPolicy::default()
            },
        );
    }
}
