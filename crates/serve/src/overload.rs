//! The overload controller: a hysteretic effort-downshift state machine.
//!
//! PIVOT's premise is that effort is negotiable and deadlines are not.
//! When the queue ages past its budget — the engine is not keeping up —
//! blowing deadlines helps nobody; serving *cheaper* answers restores
//! balance, because the cascade's lower efforts cost a fraction of the
//! GEMM work (PAPER.md Phase 2 trades exactly this). The controller
//! watches the age of the oldest queued request at every batch and moves
//! a single cap through the effort ladder:
//!
//! * **Downshift** (one level per overloaded observation): oldest age
//!   exceeds the budget → the cap drops, ultimately to level 0
//!   (low-effort-only). Escalation-worthy samples then resolve as
//!   `Degraded` instead of timing out.
//! * **Recover** (hysteretic): only after `recover_after` *consecutive*
//!   observations with age strictly below `recover_ratio x budget` does
//!   the cap rise one level. A single calm batch never re-opens the
//!   expensive path — the asymmetry that prevents cap flapping at the
//!   boundary.
//! * Ages between the calm line and the budget hold the cap and reset the
//!   calm streak.
//!
//! # Interval convention
//!
//! The three zones partition the age axis as **calm = `[0, calm_line)`**,
//! **hold = `[calm_line, budget]`**, **overload = `(budget, ∞)`** — calm is
//! half-open on the right, hold is closed on both ends. The closed hold
//! zone makes the boundary cases unambiguous:
//!
//! * `age == budget` is *at* budget, not over it: the cap holds and the
//!   calm streak resets. Only strictly exceeding the budget downshifts.
//! * `age == calm_line` is *not* calm: sitting exactly on the line is
//!   evidence of equilibrium, not of slack, so it holds and resets the
//!   streak rather than crediting recovery.
//! * With `recover_ratio = 1.0` the hold zone collapses to the single
//!   point `{budget}`. An exactly-at-budget age then holds the cap — it
//!   never counts as recovery evidence while one nanosecond more
//!   downshifts, which is the flapping hazard this convention removes.
//! * With `recover_ratio = 0.0` the calm zone `[0, 0)` is empty and
//!   recovery is unreachable by construction: the cap ratchets down only.
//!   Use a positive ratio when upshift is desired.

use std::time::Duration;

/// Tuning of the overload state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Oldest-queued-age budget: one observation above this downshifts
    /// the cap one level.
    pub queue_budget: Duration,
    /// Fraction of the budget strictly below which an observation counts
    /// as calm (recovery evidence). Clamped to `[0, 1]` at construction;
    /// `0.0` makes recovery unreachable (see the module-level interval
    /// convention).
    pub recover_ratio: f64,
    /// Consecutive calm observations required per upshift step.
    pub recover_after: usize,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            queue_budget: Duration::from_millis(50),
            recover_ratio: 0.5,
            recover_after: 8,
        }
    }
}

/// The state machine. One instance per engine, observed once per batch.
#[derive(Debug, Clone)]
pub struct OverloadController {
    top: usize,
    cap: usize,
    budget_ns: u64,
    calm_line_ns: u64,
    recover_after: usize,
    calm_streak: usize,
    downshifts: u64,
    upshifts: u64,
}

impl OverloadController {
    /// Creates a controller for a ladder whose highest level is `top`
    /// (i.e. `levels - 1`), starting at full effort.
    ///
    /// # Panics
    ///
    /// Panics if `recover_after` is zero (recovery would be instant and
    /// the hysteresis contract meaningless).
    pub fn new(top: usize, policy: OverloadPolicy) -> Self {
        assert!(policy.recover_after >= 1, "recover_after must be >= 1");
        let budget_ns = policy.queue_budget.as_nanos() as u64;
        let ratio = policy.recover_ratio.clamp(0.0, 1.0);
        Self {
            top,
            cap: top,
            budget_ns,
            calm_line_ns: (budget_ns as f64 * ratio) as u64,
            recover_after: policy.recover_after,
            calm_streak: 0,
            downshifts: 0,
            upshifts: 0,
        }
    }

    /// Feeds one queue-age observation and returns the effort cap to use
    /// for the batch about to execute.
    ///
    /// Zones follow the module-level interval convention: strictly over
    /// budget downshifts, strictly under the calm line credits the
    /// recovery streak, and the closed band `[calm_line, budget]` holds
    /// the cap while resetting the streak.
    pub fn observe(&mut self, oldest_age: Duration) -> usize {
        let age_ns = oldest_age.as_nanos() as u64;
        if age_ns > self.budget_ns {
            if self.cap > 0 {
                self.cap -= 1;
                self.downshifts += 1;
            }
            self.calm_streak = 0;
        } else if age_ns < self.calm_line_ns {
            if self.cap < self.top {
                self.calm_streak += 1;
                if self.calm_streak >= self.recover_after {
                    self.cap += 1;
                    self.upshifts += 1;
                    self.calm_streak = 0;
                }
            }
        } else {
            // The gray zone between calm and overloaded: hold the cap,
            // restart the recovery clock.
            self.calm_streak = 0;
        }
        self.cap
    }

    /// The current effort cap (highest ladder level the engine may run).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether the engine currently serves below full effort.
    pub fn is_degraded(&self) -> bool {
        self.cap < self.top
    }

    /// Total downshift steps taken.
    pub fn downshifts(&self) -> u64 {
        self.downshifts
    }

    /// Total upshift (recovery) steps taken.
    pub fn upshifts(&self) -> u64 {
        self.upshifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(top: usize) -> OverloadController {
        OverloadController::new(
            top,
            OverloadPolicy {
                queue_budget: Duration::from_millis(100),
                recover_ratio: 0.5,
                recover_after: 3,
            },
        )
    }

    #[test]
    fn sustained_overload_staircases_down_to_low_only() {
        let mut c = controller(3);
        assert_eq!(c.cap(), 3);
        let over = Duration::from_millis(150);
        assert_eq!(c.observe(over), 2);
        assert_eq!(c.observe(over), 1);
        assert_eq!(c.observe(over), 0);
        // The floor holds: low-effort-only is the terminal degradation.
        assert_eq!(c.observe(over), 0);
        assert_eq!(c.downshifts(), 3);
        assert!(c.is_degraded());
    }

    #[test]
    fn recovery_is_hysteretic_not_instant() {
        let mut c = controller(2);
        let over = Duration::from_millis(200);
        let calm = Duration::from_millis(10);
        c.observe(over);
        assert_eq!(c.cap(), 1);
        // Two calm observations are not enough (recover_after = 3)...
        assert_eq!(c.observe(calm), 1);
        assert_eq!(c.observe(calm), 1);
        // ...the third restores one level, and the streak restarts.
        assert_eq!(c.observe(calm), 2);
        assert_eq!(c.upshifts(), 1);
        assert!(!c.is_degraded());
        // At full effort, calm observations are a no-op.
        assert_eq!(c.observe(calm), 2);
        assert_eq!(c.upshifts(), 1);
    }

    #[test]
    fn gray_zone_holds_cap_and_resets_the_streak() {
        let mut c = controller(2);
        c.observe(Duration::from_millis(200)); // cap -> 1
        let calm = Duration::from_millis(10);
        let gray = Duration::from_millis(80); // between 50 (calm line) and 100 (budget)
        c.observe(calm);
        c.observe(calm);
        // The gray observation wipes the two-calm streak...
        assert_eq!(c.observe(gray), 1);
        // ...so recovery needs three fresh calm ticks again.
        c.observe(calm);
        c.observe(calm);
        assert_eq!(c.cap(), 1);
        assert_eq!(c.observe(calm), 2);
    }

    #[test]
    fn overload_mid_recovery_cancels_progress() {
        let mut c = controller(1);
        c.observe(Duration::from_millis(200)); // cap -> 0
        c.observe(Duration::from_millis(1));
        c.observe(Duration::from_millis(1));
        // A fresh overload both wipes the streak and (already at 0) keeps
        // the floor.
        assert_eq!(c.observe(Duration::from_millis(300)), 0);
        c.observe(Duration::from_millis(1));
        c.observe(Duration::from_millis(1));
        assert_eq!(c.cap(), 0);
        assert_eq!(c.observe(Duration::from_millis(1)), 1);
    }

    /// Pins the interval convention at `recover_ratio = 1.0`, where the
    /// hold zone collapses to exactly `{budget}`: at-budget holds (never
    /// recovery evidence), one nanosecond more downshifts, one less is
    /// calm.
    #[test]
    fn ratio_one_at_budget_holds_instead_of_recovering() {
        let budget = Duration::from_millis(100);
        let mut c = OverloadController::new(
            2,
            OverloadPolicy {
                queue_budget: budget,
                recover_ratio: 1.0,
                recover_after: 1,
            },
        );
        c.observe(budget + Duration::from_nanos(1)); // strictly over: downshift
        assert_eq!(c.cap(), 1);
        assert_eq!(c.downshifts(), 1);
        // Exactly at budget: hold, even with recover_after = 1. Before the
        // boundary fix this counted as calm and flapped the cap back up.
        for _ in 0..5 {
            assert_eq!(c.observe(budget), 1);
        }
        assert_eq!(c.upshifts(), 0);
        // One nanosecond under budget is strictly under the (ratio-1.0)
        // calm line: recovery evidence.
        assert_eq!(c.observe(budget - Duration::from_nanos(1)), 2);
        assert_eq!(c.upshifts(), 1);
    }

    /// Pins `age == calm_line` and `age == budget` in the generic (ratio
    /// 0.5) geometry: both land in the closed hold zone and reset the
    /// streak.
    #[test]
    fn boundary_ages_hold_and_reset_the_streak() {
        let mut c = controller(2); // budget 100ms, calm line 50ms, recover_after 3
        c.observe(Duration::from_millis(200)); // cap -> 1
        let calm = Duration::from_millis(10);
        let at_calm_line = Duration::from_millis(50);
        let at_budget = Duration::from_millis(100);

        // Exactly at the calm line: hold + streak reset.
        c.observe(calm);
        c.observe(calm);
        assert_eq!(c.observe(at_calm_line), 1);
        // Exactly at the budget: hold + streak reset (no downshift).
        c.observe(calm);
        c.observe(calm);
        assert_eq!(c.observe(at_budget), 1);
        assert_eq!(c.downshifts(), 1);
        // Three fresh strictly-calm ticks recover.
        c.observe(calm);
        c.observe(calm);
        assert_eq!(c.observe(calm), 2);
        // Just under the calm line is calm; the line itself is not.
        c.observe(Duration::from_millis(300)); // cap -> 1
        c.observe(Duration::from_millis(49));
        c.observe(Duration::from_millis(49));
        assert_eq!(c.observe(Duration::from_millis(49)), 2);
    }

    /// With `recover_ratio = 0.0` the calm zone is empty: the cap only
    /// ratchets down, and even a zero-age observation holds.
    #[test]
    fn ratio_zero_makes_recovery_unreachable() {
        let mut c = OverloadController::new(
            1,
            OverloadPolicy {
                queue_budget: Duration::from_millis(100),
                recover_ratio: 0.0,
                recover_after: 1,
            },
        );
        c.observe(Duration::from_millis(200)); // cap -> 0
        for _ in 0..10 {
            assert_eq!(c.observe(Duration::ZERO), 0);
        }
        assert_eq!(c.upshifts(), 0);
    }

    #[test]
    #[should_panic(expected = "recover_after")]
    fn zero_recovery_window_is_rejected() {
        let _ = OverloadController::new(
            1,
            OverloadPolicy {
                recover_after: 0,
                ..OverloadPolicy::default()
            },
        );
    }
}
