//! Aggregate server health: the accounting ledger the robustness contract
//! is audited against.
//!
//! Every submission increments exactly one admission counter and — if
//! admitted — exactly one resolution counter, so at drain the identity
//! `submitted == shed + completed + degraded + timed_out + failed` holds.
//! The ledger also merges every batch's
//! [`DegradationReport`](pivot_core::DegradationReport), folding the
//! offline fault-accounting vocabulary (DESIGN.md §5) into the online one.

use pivot_core::DegradationReport;
use std::fmt;

/// Snapshot of the server's cumulative counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthStats {
    /// Requests offered to `submit` (admitted or not).
    pub submitted: u64,
    /// Requests rejected at admission (queue full or shutting down).
    pub shed: u64,
    /// Requests served at gate-chosen effort with finite logits.
    pub completed: u64,
    /// Requests served below fidelity (effort-capped or fault fallback).
    pub degraded: u64,
    /// Requests whose deadline expired before a useful answer existed.
    pub timed_out: u64,
    /// Requests that failed with a typed error (batch panic).
    pub failed: u64,
    /// Inference batches executed (including panicked ones).
    pub batches: u64,
    /// Batches that panicked and were isolated.
    pub panics: u64,
    /// Injected stall faults honored by the engine.
    pub stalls: u64,
    /// Overload-controller downshift steps.
    pub downshifts: u64,
    /// Overload-controller upshift (recovery) steps.
    pub upshifts: u64,
    /// Effort cap in force after the most recent batch.
    pub effort_cap: usize,
    /// Gate threshold (`Th`) in force after the most recent executed
    /// batch — Phase 2's static pick unless the adaptive controller is
    /// retuning it. `1.0` for a single-level ladder (no gate).
    pub threshold: f32,
    /// Adaptive-threshold retunes applied by the controller.
    pub retunes: u64,
    /// Adaptive-threshold retunes held because the overload cap was
    /// engaged (the precedence contract: the cap outranks the gate).
    pub th_holds: u64,
    /// Merged fault accounting across every executed batch.
    pub report: DegradationReport,
}

impl HealthStats {
    /// Requests that reached a terminal state after admission.
    pub fn resolved(&self) -> u64 {
        self.completed + self.degraded + self.timed_out + self.failed
    }

    /// Whether the ledger balances: every submission is either shed or
    /// resolved. True at any quiescent point and always after drain.
    pub fn accounted(&self) -> bool {
        self.submitted == self.shed + self.resolved()
    }
}

impl fmt::Display for HealthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "submitted {} = shed {} + completed {} + degraded {} + timed_out {} + failed {} \
             | {} batches ({} panicked, {} stalled), effort cap {} \
             ({} down / {} up), Th {:.3} ({} retunes / {} held), {}",
            self.submitted,
            self.shed,
            self.completed,
            self.degraded,
            self.timed_out,
            self.failed,
            self.batches,
            self.panics,
            self.stalls,
            self.effort_cap,
            self.downshifts,
            self.upshifts,
            self.threshold,
            self.retunes,
            self.th_holds,
            self.report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity_detects_leaks() {
        let mut h = HealthStats {
            submitted: 10,
            shed: 2,
            completed: 5,
            degraded: 1,
            timed_out: 1,
            failed: 1,
            ..HealthStats::default()
        };
        assert_eq!(h.resolved(), 8);
        assert!(h.accounted());
        // A lost request breaks the ledger.
        h.completed -= 1;
        assert!(!h.accounted());
    }

    #[test]
    fn display_reads_as_a_ledger_line() {
        let h = HealthStats {
            submitted: 3,
            completed: 3,
            batches: 1,
            effort_cap: 1,
            ..HealthStats::default()
        };
        let line = h.to_string();
        assert!(line.contains("submitted 3"), "{line}");
        assert!(line.contains("completed 3"), "{line}");
        assert!(line.contains("no degradation events"), "{line}");
    }
}
