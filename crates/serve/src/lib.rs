//! # pivot-serve — deadline-aware online serving for PIVOT cascades
//!
//! The offline crates answer "what accuracy does this cascade buy per
//! FLOP?"; this crate answers the production question: "what happens when
//! requests arrive faster than the cascade can run?" Its answer is the
//! robustness contract the `serve_bench` smoke audits:
//!
//! * **Bounded admission** — a full queue sheds at the door with a typed
//!   [`SubmitError::Rejected`] carrying the observed depth. Overload is
//!   backpressure, never unbounded buffering.
//! * **Micro-batch coalescing** — concurrent arrivals within a
//!   configurable window share one `forward_batch`-wide GEMM, so serving
//!   keeps the throughput the batched kernels were built for.
//! * **Deadlines over effort** — requests carry deadlines; a request that
//!   cannot be answered in time resolves as [`ServeOutcome::TimedOut`],
//!   and under sustained queue pressure the [`OverloadController`]
//!   downshifts the cascade's effort cap (ultimately to low-effort-only)
//!   so answers degrade instead of dying, recovering hysteretically when
//!   pressure lifts.
//! * **Adaptive gating under drift** — the entropy gate's threshold need
//!   not stay at Phase 2's offline pick: an optional
//!   [`ThresholdController`] retunes `Th` from a sliding window of
//!   observed low-effort entropies to hold `F_L >= LEC` as the traffic's
//!   difficulty mix drifts, deferring to the overload cap whenever it is
//!   engaged (the cap outranks the gate — DESIGN.md §7).
//! * **Typed terminal states** — every admitted request resolves as
//!   exactly one of completed / degraded / timed-out / failed, and the
//!   ledger identity `submitted == shed + completed + degraded +
//!   timed_out + failed` holds at drain ([`HealthStats::accounted`]).
//! * **Panic isolation** — a panicking inference batch fails only its own
//!   requests ([`ServeError::BatchPanicked`]); the serve loop survives.
//! * **Determinism where it matters** — healthy-path responses are
//!   bit-identical to the offline guarded evaluation
//!   ([`pivot_core::evaluate_guarded_slice`]), and every timing-dependent
//!   path is testable on a virtual [`ServeClock`] with deterministic
//!   [`StallSchedule`](pivot_core::StallSchedule) chaos.
//!
//! ```
//! use pivot_data::{Dataset, DatasetConfig};
//! use pivot_serve::{Server, ServeConfig, ServeOutcome};
//! use pivot_tensor::Rng;
//! use pivot_vit::{VisionTransformer, VitConfig};
//! use std::time::Duration;
//!
//! let mut low = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(1));
//! low.set_active_attentions(&[0]);
//! let mut high = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(2));
//! high.set_active_attentions(&[0, 1]);
//!
//! let server = Server::spawn(
//!     vec![low.prepare(), high.prepare()],
//!     vec![0.5],
//!     ServeConfig::default(),
//! );
//! let sample = Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.5], 1, 3)
//!     .remove(0);
//! let ticket = server
//!     .submit(sample.image, Duration::from_secs(5))
//!     .expect("admitted");
//! let response = ticket.wait().expect("drain contract");
//! assert!(matches!(
//!     response.outcome,
//!     ServeOutcome::Completed(_) | ServeOutcome::Degraded(_)
//! ));
//! let health = server.shutdown();
//! assert!(health.accounted());
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod clock;
mod engine;
mod health;
mod overload;
mod queue;
mod replay;
mod request;
mod server;
mod threshold;

pub use clock::ServeClock;
pub use engine::ChaosConfig;
pub use health::HealthStats;
pub use overload::{OverloadController, OverloadPolicy};
pub use replay::ReplayEngine;
pub use request::{ServeError, ServeOutcome, ServeResponse, Served, SubmitError, Ticket};
pub use server::{ServeConfig, Server};
pub use threshold::{ThresholdController, ThresholdPolicy};
