//! The adaptive threshold controller: closing Phase 2's loop online.
//!
//! Phase 2 picks a static gate threshold `Th` offline so that the
//! low-effort exit fraction `F_L` meets the Low-Exit Constraint
//! (`F_L >= LEC`) on a *calibration* mix. When the difficulty of live
//! traffic drifts, entropies shift, the static gate escalates too much
//! (or too little) and `F_L` collapses — the exact failure ROADMAP's
//! top open item describes. This controller re-solves Phase 2's
//! one-dimensional search continuously, on observed traffic:
//!
//! * **Window** — a bounded ring buffer of the most recent low-effort
//!   entropies (every sample visits level 0, so every request
//!   contributes one observation; non-finite entropies from faulted
//!   batches are skipped).
//! * **Quantile by grid walk** — each retune sorts the window into a
//!   reusable scratch buffer and walks the same threshold grid as
//!   [`CascadeCache::threshold_reaching`](pivot_core::CascadeCache::threshold_reaching):
//!   the smallest multiple of `step` (final probe clamped bitwise to
//!   `1.0`) whose windowed `F_L` reaches `lec`, under the exact
//!   [`stays_low`] gate semantics the cascade executes. On a stationary
//!   mix this converges to within one grid step of the offline answer —
//!   pinned by test.
//! * **Tick cadence** — retunes fire every `tick_batches` completed
//!   batches, and only once the window holds `min_fill` observations, so
//!   a cold start never swings the gate on a handful of samples.
//! * **Overload precedence** — the effort cap outranks the gate. While
//!   the [`OverloadController`](crate::OverloadController) holds the cap
//!   below the ladder top, a due retune is *held* (counted, not applied):
//!   entropies observed under a cap still enter the window, but moving
//!   `Th` while the cap is already shedding effort would double-degrade
//!   and fight the cap's hysteresis. Retuning resumes at full effort.

use pivot_core::stays_low;
use std::collections::VecDeque;

/// Tuning of the adaptive threshold control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    /// Target low-exit fraction (`F_L >= lec`), in `(0, 1]`.
    pub lec: f64,
    /// Sliding-window capacity (most recent low-effort entropies).
    pub window: usize,
    /// Retune every this many completed batches.
    pub tick_batches: u64,
    /// Minimum window occupancy before the first retune.
    pub min_fill: usize,
    /// Threshold grid step (mirrors Phase 2's sweep step).
    pub step: f32,
    /// Lowest threshold the controller may set.
    pub floor: f32,
    /// Highest threshold the controller may set.
    pub ceil: f32,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        Self {
            lec: 0.7,
            window: 256,
            tick_batches: 1,
            min_fill: 64,
            step: 0.01,
            floor: 0.0,
            ceil: 1.0,
        }
    }
}

impl ThresholdPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `lec` is outside `(0, 1]`, `window` or `tick_batches` is
    /// zero, `min_fill` exceeds `window`, `step` is not strictly positive,
    /// or the clamp range is not `0 <= floor <= ceil <= 1`.
    pub fn validate(&self) {
        assert!(
            self.lec > 0.0 && self.lec <= 1.0,
            "lec must be in (0, 1], got {}",
            self.lec
        );
        assert!(self.window >= 1, "window must be >= 1");
        assert!(self.tick_batches >= 1, "tick_batches must be >= 1");
        assert!(
            self.min_fill <= self.window,
            "min_fill ({}) cannot exceed window ({})",
            self.min_fill,
            self.window
        );
        assert!(
            self.step.is_finite() && self.step > 0.0,
            "step must be finite and positive, got {}",
            self.step
        );
        assert!(
            (0.0..=1.0).contains(&self.floor)
                && (0.0..=1.0).contains(&self.ceil)
                && self.floor <= self.ceil,
            "clamp range must satisfy 0 <= floor <= ceil <= 1, got [{}, {}]",
            self.floor,
            self.ceil
        );
    }
}

/// The control loop state: one instance per engine, fed once per request
/// and ticked once per batch.
#[derive(Debug, Clone)]
pub struct ThresholdController {
    policy: ThresholdPolicy,
    th: f32,
    window: VecDeque<f32>,
    scratch: Vec<f32>,
    batches_since_tick: u64,
    retunes: u64,
    holds: u64,
}

impl ThresholdController {
    /// Creates a controller starting at `initial_th` (typically Phase 2's
    /// offline threshold) under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`ThresholdPolicy::validate`])
    /// or `initial_th` is outside `[0, 1]`.
    pub fn new(initial_th: f32, policy: ThresholdPolicy) -> Self {
        policy.validate();
        assert!(
            (0.0..=1.0).contains(&initial_th),
            "initial threshold must be in [0, 1], got {initial_th}"
        );
        Self {
            policy,
            th: initial_th,
            window: VecDeque::with_capacity(policy.window),
            scratch: Vec::with_capacity(policy.window),
            batches_since_tick: 0,
            retunes: 0,
            holds: 0,
        }
    }

    /// Feeds one observed low-effort entropy into the sliding window.
    /// Non-finite observations (faulted level-0 logits) are skipped —
    /// they carry no difficulty signal.
    pub fn observe(&mut self, low_entropy: f32) {
        if !low_entropy.is_finite() {
            return;
        }
        if self.window.len() == self.policy.window {
            self.window.pop_front();
        }
        self.window.push_back(low_entropy);
    }

    /// Marks one completed batch and returns the threshold to use for the
    /// next one. A due tick retunes — unless `overloaded` is set (the
    /// effort cap is below the ladder top), in which case the retune is
    /// held per the precedence contract and counted in [`Self::holds`].
    pub fn end_batch(&mut self, overloaded: bool) -> f32 {
        self.batches_since_tick += 1;
        if self.batches_since_tick < self.policy.tick_batches
            || self.window.len() < self.policy.min_fill.max(1)
        {
            return self.th;
        }
        self.batches_since_tick = 0;
        if overloaded {
            self.holds += 1;
            return self.th;
        }
        self.retune();
        self.th
    }

    /// Phase 2's grid walk over the *window*: the smallest multiple of
    /// `step` (final probe clamped bitwise to 1.0, exactly like
    /// `CascadeCache::threshold_reaching`) whose windowed `F_L` reaches
    /// `lec`, clamped into `[floor, ceil]`.
    fn retune(&mut self) {
        self.scratch.clear();
        self.scratch.extend(self.window.iter().copied());
        self.scratch.sort_by(f32::total_cmp);
        let n = self.scratch.len();
        let f_low_at = |scratch: &[f32], th: f32| -> f64 {
            // Sorted scratch: the stays_low count is a partition point.
            // The inclusive top boundary (Th = 1.0 admits e == 1.0)
            // matches the gate's semantics bit for bit.
            let below = if th >= 1.0 {
                scratch.partition_point(|&e| e <= 1.0)
            } else {
                scratch.partition_point(|&e| e < th)
            };
            debug_assert_eq!(below, scratch.iter().filter(|&&e| stays_low(e, th)).count());
            below as f64 / n as f64
        };
        let mut th = self.policy.step.min(1.0);
        while f_low_at(&self.scratch, th) < self.policy.lec && th < 1.0 {
            th = (th + self.policy.step).min(1.0);
        }
        self.th = th.clamp(self.policy.floor, self.policy.ceil);
        self.retunes += 1;
    }

    /// The gate threshold currently in force.
    pub fn threshold(&self) -> f32 {
        self.th
    }

    /// Retunes actually applied.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Due retunes held because the engine was overload-degraded.
    pub fn holds(&self) -> u64 {
        self.holds
    }

    /// Observations currently in the sliding window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ThresholdPolicy {
        ThresholdPolicy {
            lec: 0.5,
            window: 8,
            tick_batches: 1,
            min_fill: 4,
            step: 0.1,
            floor: 0.0,
            ceil: 1.0,
        }
    }

    #[test]
    fn holds_initial_threshold_until_min_fill() {
        let mut c = ThresholdController::new(0.42, policy());
        c.observe(0.1);
        c.observe(0.2);
        assert_eq!(c.end_batch(false), 0.42, "below min_fill: hold");
        assert_eq!(c.retunes(), 0);
        c.observe(0.1);
        c.observe(0.2);
        // min_fill reached: the grid walk fires.
        let th = c.end_batch(false);
        assert_eq!(c.retunes(), 1);
        // Half the window below th at lec 0.5: 0.2 < th works; smallest
        // grid multiple beating {0.1, 0.1, 0.2, 0.2} at lec 0.5 is 0.2
        // (0.1 < 0.2 counts two of four).
        assert!((th - 0.2).abs() < 1e-6, "got {th}");
    }

    #[test]
    fn tick_cadence_skips_intermediate_batches() {
        let mut c = ThresholdController::new(
            0.5,
            ThresholdPolicy {
                tick_batches: 3,
                min_fill: 1,
                ..policy()
            },
        );
        for _ in 0..8 {
            c.observe(0.05);
        }
        assert_eq!(c.end_batch(false), 0.5);
        assert_eq!(c.end_batch(false), 0.5);
        assert_eq!(c.retunes(), 0, "ticks 1 and 2 of 3 hold");
        let th = c.end_batch(false);
        assert_eq!(c.retunes(), 1, "tick 3 retunes");
        assert!((th - 0.1).abs() < 1e-6, "all entropies at 0.05: one step");
    }

    #[test]
    fn window_slides_and_tracks_the_recent_mix() {
        let mut c = ThresholdController::new(0.5, policy());
        // Fill with easy traffic...
        for _ in 0..8 {
            c.observe(0.1);
        }
        assert!((c.end_batch(false) - 0.2).abs() < 1e-6);
        // ...then hard traffic displaces it completely (window 8).
        for _ in 0..8 {
            c.observe(0.75);
        }
        let th = c.end_batch(false);
        assert!((th - 0.8).abs() < 1e-6, "gate follows the window: {th}");
        assert_eq!(c.window_len(), 8);
    }

    #[test]
    fn overload_holds_a_due_retune_and_counts_it() {
        let mut c = ThresholdController::new(0.5, policy());
        for _ in 0..8 {
            c.observe(0.75);
        }
        assert_eq!(c.end_batch(true), 0.5, "overloaded tick holds Th");
        assert_eq!(c.holds(), 1);
        assert_eq!(c.retunes(), 0);
        // Pressure lifts: the next tick applies the pending evidence.
        assert!((c.end_batch(false) - 0.8).abs() < 1e-6);
        assert_eq!(c.retunes(), 1);
    }

    #[test]
    fn non_finite_observations_are_skipped() {
        let mut c = ThresholdController::new(0.5, policy());
        c.observe(f32::NAN);
        c.observe(f32::INFINITY);
        assert_eq!(c.window_len(), 0);
        for _ in 0..4 {
            c.observe(0.3);
        }
        assert_eq!(c.window_len(), 4);
        assert!((c.end_batch(false) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn clamp_range_bounds_the_retuned_threshold() {
        let mut c = ThresholdController::new(
            0.5,
            ThresholdPolicy {
                floor: 0.3,
                ceil: 0.6,
                ..policy()
            },
        );
        for _ in 0..8 {
            c.observe(0.9);
        }
        assert!((c.end_batch(false) - 0.6).abs() < 1e-6, "ceil binds");
        let mut c = ThresholdController::new(
            0.5,
            ThresholdPolicy {
                floor: 0.3,
                ceil: 0.6,
                ..policy()
            },
        );
        for _ in 0..8 {
            c.observe(0.01);
        }
        assert!((c.end_batch(false) - 0.3).abs() < 1e-6, "floor binds");
    }

    #[test]
    fn all_hard_window_tops_out_at_exactly_one() {
        let mut c = ThresholdController::new(
            0.5,
            ThresholdPolicy {
                lec: 1.0,
                step: 0.03, // does not divide 1.0: final probe must clamp
                ..policy()
            },
        );
        for _ in 0..8 {
            c.observe(0.999);
        }
        let th = c.end_batch(false);
        assert_eq!(th.to_bits(), 1.0f32.to_bits(), "bitwise 1.0, not 0.9999");
    }

    #[test]
    #[should_panic(expected = "min_fill")]
    fn min_fill_beyond_window_is_rejected() {
        let _ = ThresholdController::new(
            0.5,
            ThresholdPolicy {
                window: 4,
                min_fill: 8,
                ..policy()
            },
        );
    }

    #[test]
    #[should_panic(expected = "initial threshold")]
    fn out_of_range_initial_threshold_is_rejected() {
        let _ = ThresholdController::new(1.5, policy());
    }
}
