//! Deterministic single-threaded replay driver over the engine core.
//!
//! [`Server`](crate::Server) runs the engine on a worker thread behind the
//! admission queue — right for production, wrong for experiments that must
//! replay bit-identically: thread scheduling decides batch boundaries, and
//! a wall clock decides coalescing. [`ReplayEngine`] removes both sources
//! of nondeterminism. The caller forms every batch explicitly, time is a
//! [`ServeClock::manual`] the caller advances, and each `process` call
//! resolves synchronously — same classification, overload, threshold and
//! chaos machinery as the live server, same health ledger, zero threads.
//!
//! This is the harness the drift benchmark and the controller acceptance
//! tests drive: every `F_L` trajectory it produces is a pure function of
//! (ladder, config, request stream, clock script).

use crate::clock::ServeClock;
use crate::engine::{ChaosConfig, EngineCore};
use crate::health::HealthStats;
use crate::overload::OverloadController;
use crate::queue::Pending;
use crate::request::ServeResponse;
use crate::server::ServeConfig;
use crate::threshold::ThresholdController;
use pivot_tensor::Matrix;
use pivot_vit::PreparedModel;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A synchronous, deterministic engine: batches in, typed responses out,
/// on a virtual clock the caller scripts.
pub struct ReplayEngine {
    core: EngineCore,
    clock: ServeClock,
    health: Arc<Mutex<HealthStats>>,
    next_id: u64,
}

impl ReplayEngine {
    /// Builds a replay engine over an effort ladder on a fresh manual
    /// clock. `config`'s overload, threshold and parallelism fields are
    /// honored; its queue fields (`queue_capacity`, `max_batch`,
    /// `batch_window`) are ignored — the caller forms batches explicitly.
    ///
    /// # Panics
    ///
    /// Same ladder validation as [`Server::spawn`](crate::Server::spawn):
    /// panics if `levels` is empty, thresholds don't match the gate count,
    /// a threshold is outside `[0, 1]`, or adaptive threshold control is
    /// requested on a gateless (single-level) ladder.
    pub fn new(
        levels: Vec<PreparedModel>,
        thresholds: Vec<f32>,
        config: ServeConfig,
        chaos: ChaosConfig,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one effort level");
        assert_eq!(
            thresholds.len(),
            levels.len() - 1,
            "need one threshold per gate (levels - 1)"
        );
        assert!(
            thresholds.iter().all(|t| (0.0..=1.0).contains(t)),
            "entropy thresholds live in [0, 1]"
        );
        assert!(
            config.threshold.is_none() || !thresholds.is_empty(),
            "adaptive threshold control needs at least one gate (two levels)"
        );
        let clock = ServeClock::manual();
        let initial_th = thresholds.first().copied().unwrap_or(1.0);
        let health = Arc::new(Mutex::new(HealthStats {
            effort_cap: levels.len() - 1,
            threshold: initial_th,
            ..HealthStats::default()
        }));
        let controller = OverloadController::new(levels.len() - 1, config.overload);
        let tuner = config
            .threshold
            .map(|policy| ThresholdController::new(initial_th, policy));
        let core = EngineCore::new(
            levels,
            thresholds,
            controller,
            tuner,
            config.parallelism,
            chaos,
            clock.clone(),
            Arc::clone(&health),
        );
        Self {
            core,
            clock,
            health,
            next_id: 0,
        }
    }

    /// The engine's manual clock (shared source — advancing the returned
    /// clone moves engine time).
    pub fn clock(&self) -> ServeClock {
        self.clock.clone()
    }

    /// Executes one batch synchronously: every image becomes a request
    /// admitted *now* with the given relative deadline, and the returned
    /// responses are in input order, one per image. The health ledger
    /// counts each image as submitted, so it balances at every return.
    pub fn process(&mut self, images: &[Matrix], deadline: Duration) -> Vec<ServeResponse> {
        self.process_aged(images, Duration::ZERO, deadline)
    }

    /// Like [`Self::process`], but backdates every request's admission by
    /// `queued_for` — scripting queue pressure without a queue. The
    /// overload controller sees exactly that age, so overload and
    /// recovery trajectories replay deterministically. The deadline is
    /// relative to *now* (not the backdated admission).
    pub fn process_aged(
        &mut self,
        images: &[Matrix],
        queued_for: Duration,
        deadline: Duration,
    ) -> Vec<ServeResponse> {
        let now = self.clock.now_ns();
        let enqueued = now.saturating_sub(queued_for.as_nanos() as u64);
        lock(&self.health).submitted += images.len() as u64;
        let mut receivers = Vec::with_capacity(images.len());
        let batch: Vec<Pending> = images
            .iter()
            .map(|image| {
                let (tx, rx) = channel();
                let id = self.next_id;
                self.next_id += 1;
                receivers.push(rx);
                Pending {
                    id,
                    image: image.clone(),
                    enqueued_ns: enqueued,
                    deadline_ns: now.saturating_add(deadline.as_nanos() as u64),
                    reply: tx,
                }
            })
            .collect();
        self.core.process(batch);
        receivers
            .into_iter()
            .map(|rx| {
                rx.try_recv()
                    .expect("process resolves every request synchronously")
            })
            .collect()
    }

    /// Snapshot of the cumulative health ledger.
    pub fn health(&self) -> HealthStats {
        lock(&self.health).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeOutcome;
    use crate::threshold::ThresholdPolicy;
    use pivot_core::Parallelism;
    use pivot_data::{Dataset, DatasetConfig, DriftSchedule, Sample};
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};
    use std::time::Duration;

    fn ladder() -> (Vec<PreparedModel>, Vec<f32>) {
        let mut low = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(60));
        low.set_active_attentions(&[0]);
        let mut high = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(61));
        high.set_active_attentions(&[0, 1]);
        (vec![low.prepare(), high.prepare()], vec![0.5])
    }

    fn config() -> ServeConfig {
        ServeConfig {
            parallelism: Parallelism::Off,
            ..ServeConfig::default()
        }
    }

    fn samples(n: usize, seed: u64) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], n / 2, seed)
    }

    #[test]
    fn replay_is_deterministic_and_balances_the_ledger() {
        let run = || {
            let (levels, ths) = ladder();
            let mut eng = ReplayEngine::new(levels, ths, config(), ChaosConfig::default());
            let set = samples(16, 62);
            let mut out = Vec::new();
            for chunk in set.chunks(4) {
                let images: Vec<Matrix> = chunk.iter().map(|s| s.image.clone()).collect();
                out.extend(eng.process(&images, Duration::from_secs(1)));
                eng.clock().advance(Duration::from_millis(1));
            }
            (out, eng.health())
        };
        let (a, ha) = run();
        let (b, hb) = run();
        assert_eq!(a, b, "bit-identical replay");
        assert_eq!(ha, hb);
        assert!(ha.accounted(), "ledger balances: {ha}");
        assert_eq!(ha.resolved(), 16);
        assert!(a
            .iter()
            .all(|r| matches!(r.outcome, ServeOutcome::Completed(_))));
    }

    #[test]
    fn expired_deadlines_resolve_as_timeouts() {
        let (levels, ths) = ladder();
        let mut eng = ReplayEngine::new(levels, ths, config(), ChaosConfig::default());
        let set = samples(4, 63);
        let images: Vec<Matrix> = set.iter().map(|s| s.image.clone()).collect();
        let responses = eng.process(&images, Duration::ZERO);
        assert!(responses
            .iter()
            .all(|r| matches!(r.outcome, ServeOutcome::TimedOut { .. })));
        let h = eng.health();
        assert_eq!(h.timed_out, 4);
        assert!(h.accounted());
    }

    fn tuned_config(lec: f64, window: usize, min_fill: usize) -> ServeConfig {
        ServeConfig {
            overload: crate::OverloadPolicy {
                queue_budget: Duration::from_millis(10),
                recover_ratio: 0.5,
                recover_after: 2,
            },
            threshold: Some(ThresholdPolicy {
                lec,
                window,
                tick_batches: 1,
                min_fill,
                step: 0.01,
                floor: 0.0,
                ceil: 1.0,
            }),
            ..config()
        }
    }

    /// The precedence contract, end to end on one engine: while the
    /// overload cap is engaged, the tuner ingests entropies but holds
    /// every due retune (Th frozen, holds counted, cap moving); once calm
    /// observations restore full effort, retuning resumes and applies the
    /// accumulated windowed evidence.
    #[test]
    fn overload_cap_outranks_threshold_retuning() {
        let (levels, ths) = ladder();
        let initial_th = ths[0];
        let mut eng = ReplayEngine::new(
            levels,
            ths,
            tuned_config(0.5, 64, 1),
            ChaosConfig::default(),
        );
        let set = samples(64, 64);
        let images: Vec<Matrix> = set.iter().map(|s| s.image.clone()).collect();
        let deadline = Duration::from_secs(5);

        // Batch 1, fresh (age 0 < calm line): the tuner retunes.
        eng.process(&images[..8], deadline);
        let h = eng.health();
        assert_eq!(h.effort_cap, 1, "calm batch keeps full effort");
        assert_eq!((h.retunes, h.th_holds), (1, 0));
        let tuned_th = h.threshold;
        assert_ne!(tuned_th, initial_th, "observed traffic moved the gate");

        // Batches 2-4 arrive aged past the queue budget: the cap
        // downshifts (and floors), and every due retune is HELD — the
        // threshold does not move while the cap is shedding effort.
        // (Advance the clock first so backdated admission has room.)
        eng.clock().advance(Duration::from_millis(100));
        for chunk in images[8..32].chunks(8) {
            eng.process_aged(chunk, Duration::from_millis(20), deadline);
        }
        let h = eng.health();
        assert_eq!(h.effort_cap, 0, "over-budget observations floored the cap");
        assert!(h.downshifts >= 1);
        assert_eq!(h.retunes, 1, "no retune applied under overload");
        assert_eq!(h.th_holds, 3, "each due tick was held, not dropped");
        assert_eq!(h.threshold, tuned_th, "Th frozen while the cap moves");

        // Pressure lifts: one calm batch is observed while still degraded
        // (cap recovering) — still held. recover_after = 2, so the second
        // calm batch restores the cap *before* end_batch runs, and the
        // tuner resumes retuning on that very batch.
        eng.process(&images[32..40], deadline);
        let h = eng.health();
        assert_eq!(h.effort_cap, 0, "one calm batch is not enough (hysteresis)");
        assert_eq!(h.th_holds, 4);
        eng.process(&images[40..48], deadline);
        let h = eng.health();
        assert_eq!(h.effort_cap, 1, "second calm batch recovered the cap");
        assert_eq!(h.retunes, 2, "retuning resumed at full effort");
        assert!(
            h.accounted(),
            "ledger balances through the whole episode: {h}"
        );
    }

    /// Under a stationary mix the adaptive controller converges to within
    /// one sweep-step of Phase 2's static threshold. With the window
    /// sized to the whole stream the final retune sees exactly the
    /// samples the offline search calibrates on, so the grid walks agree
    /// bitwise — the strongest form of the convergence claim.
    #[test]
    fn stationary_mix_converges_to_phase2_static_threshold() {
        use pivot_core::{CascadeCache, Parallelism};

        let (levels, ths) = ladder();
        let lec = 0.5;
        let step = 0.01f32;
        let n = 128;
        let cfg = DatasetConfig::small();
        let stream =
            Dataset::generate_drift(&cfg, &DriftSchedule::Stationary { difficulty: 0.5 }, n, 65);

        // Phase 2's offline answer on the same mix.
        let cache = CascadeCache::build_prepared(&levels[0], &stream, Parallelism::Off);
        let static_th = cache.threshold_reaching(lec, step);

        // Online: window = min_fill = n, so exactly one retune fires, on
        // the full stream.
        let mut eng =
            ReplayEngine::new(levels, ths, tuned_config(lec, n, n), ChaosConfig::default());
        for chunk in stream.chunks(16) {
            let images: Vec<Matrix> = chunk.iter().map(|s| s.image.clone()).collect();
            eng.process(&images, Duration::from_secs(5));
        }
        let h = eng.health();
        assert_eq!(h.retunes, 1, "window filled exactly once");
        assert!(
            (h.threshold - static_th).abs() <= step + 1e-6,
            "adaptive Th {} vs static Th {static_th}: more than one sweep-step apart",
            h.threshold
        );
        assert_eq!(
            h.threshold.to_bits(),
            static_th.to_bits(),
            "same samples, same grid: the walks agree bitwise"
        );
    }
}
