//! Request, response and typed-error vocabulary of the serving engine.
//!
//! Every admitted request resolves to exactly one [`ServeResponse`] whose
//! [`ServeOutcome`] is one of four terminal states — completed, degraded,
//! timed out, or failed — and every rejected submission gets a synchronous
//! typed [`SubmitError`]. There is no fifth path: the accounting identity
//! `submitted == shed + completed + degraded + timed_out + failed` is the
//! engine's liveness contract (asserted by the `serve_bench` smoke).

use std::error::Error;
use std::fmt;
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// A successfully served prediction and the effort context it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Predicted class.
    pub prediction: usize,
    /// Effort level that produced (and was charged for) the answer.
    pub level: usize,
    /// Normalized entropy of the exit level's logits (NaN if that level
    /// was faulted and a fallback served).
    pub entropy: f32,
    /// The effort cap in force when the request was executed (the ladder
    /// top when the engine is healthy and unloaded).
    pub effort_cap: usize,
    /// The earlier level whose prediction stood in because the exit
    /// level's logits were non-finite, if any (DESIGN.md §5 fallback).
    pub fault_fallback: Option<usize>,
}

/// Terminal state of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Served at the gate-chosen effort with finite logits — bit-identical
    /// to what the offline guarded evaluation computes for this image.
    Completed(Served),
    /// Served, but not at full fidelity: the overload controller capped
    /// the effort below what the entropy gate demanded, or a fault forced
    /// a fallback prediction.
    Degraded(Served),
    /// The deadline expired — either in the queue (never executed) or
    /// because execution finished too late to be useful. Late results are
    /// not delivered as completions.
    TimedOut {
        /// Admission-to-resolution time.
        queued_for: Duration,
    },
    /// Execution failed with a typed error (the request's batch panicked);
    /// the engine itself survived.
    Failed(ServeError),
}

impl ServeOutcome {
    /// The served prediction, if the request produced one.
    pub fn served(&self) -> Option<&Served> {
        match self {
            Self::Completed(s) | Self::Degraded(s) => Some(s),
            Self::TimedOut { .. } | Self::Failed(_) => None,
        }
    }
}

/// The engine's answer to one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The id returned by `submit` for this request.
    pub id: u64,
    /// Terminal state.
    pub outcome: ServeOutcome,
    /// Admission-to-response latency on the engine's clock.
    pub latency: Duration,
}

/// Typed execution failure attached to a [`ServeOutcome::Failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The batch this request was coalesced into panicked during
    /// inference. The panic was isolated: the loop survived and only the
    /// batch's requests fail.
    BatchPanicked {
        /// Index of the panicked batch (for correlation with health
        /// counters and chaos schedules).
        batch: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BatchPanicked { batch } => {
                write!(f, "inference batch {batch} panicked; request failed")
            }
        }
    }
}

impl Error for ServeError {}

/// Typed admission failure: the caller gets backpressure, not buffering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is full; the request was shed at the
    /// door. `queue_depth` is the depth observed at rejection — the signal
    /// a well-behaved client backs off on.
    Rejected {
        /// Queue depth at the moment of rejection.
        queue_depth: usize,
    },
    /// The server is draining and admits no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rejected { queue_depth } => {
                write!(
                    f,
                    "admission queue full (depth {queue_depth}); request shed"
                )
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl Error for SubmitError {}

/// A claim on one in-flight request's eventual [`ServeResponse`].
#[derive(Debug)]
pub struct Ticket {
    /// The request id (matches the eventual response's id).
    pub id: u64,
    pub(crate) rx: Receiver<ServeResponse>,
}

impl Ticket {
    /// Blocks until the response arrives. Returns `None` only if the
    /// server vanished without resolving the request (a bug — the drain
    /// contract resolves every admitted request).
    pub fn wait(self) -> Option<ServeResponse> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll for the response.
    pub fn try_wait(&self) -> Option<ServeResponse> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = SubmitError::Rejected { queue_depth: 64 };
        assert_eq!(
            e.to_string(),
            "admission queue full (depth 64); request shed"
        );
        assert_eq!(
            SubmitError::ShuttingDown.to_string(),
            "server is shutting down"
        );
        assert_eq!(
            ServeError::BatchPanicked { batch: 3 }.to_string(),
            "inference batch 3 panicked; request failed"
        );
    }

    #[test]
    fn served_accessor_distinguishes_terminal_states() {
        let served = Served {
            prediction: 1,
            level: 0,
            entropy: 0.5,
            effort_cap: 1,
            fault_fallback: None,
        };
        assert!(ServeOutcome::Completed(served).served().is_some());
        assert!(ServeOutcome::Degraded(served).served().is_some());
        assert!(ServeOutcome::TimedOut {
            queued_for: Duration::ZERO
        }
        .served()
        .is_none());
        assert!(ServeOutcome::Failed(ServeError::BatchPanicked { batch: 0 })
            .served()
            .is_none());
    }
}
