//! The batch execution core: one coalesced batch in, one typed terminal
//! state per request out, with the loop guaranteed to survive.
//!
//! `process` is deliberately free of threads — the [`Server`](crate::Server)
//! wraps it in a worker loop, and deterministic tests drive it directly on
//! a [`ServeClock::manual`](crate::ServeClock::manual) virtual clock with
//! [`StallSchedule`](pivot_core::StallSchedule) chaos, so every
//! deadline-miss and panic-isolation path replays bit-identically with no
//! wall-clock flakiness.

use crate::clock::ServeClock;
use crate::health::HealthStats;
use crate::overload::OverloadController;
use crate::queue::Pending;
use crate::request::{ServeError, ServeOutcome, ServeResponse, Served};
use crate::threshold::ThresholdController;
use pivot_core::{evaluate_guarded_slice, Parallelism, StallSchedule};
use pivot_tensor::Matrix;
use pivot_vit::PreparedModel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Deterministic chaos injected into the engine, for tests and the
/// `serve_bench` fault scenarios. Default is no chaos.
#[derive(Debug, Default)]
pub struct ChaosConfig {
    /// Per-batch stall faults: each batch draws from the schedule and, on
    /// a hit, charges the drawn duration to the engine clock *before*
    /// inference — simulating a transient slow worker.
    pub stall: Option<StallSchedule>,
    /// Batch indices (0-based, in execution order) that panic instead of
    /// running inference. Exercises the panic-isolation path.
    pub panic_batches: Vec<u64>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine state owned by the worker thread.
pub(crate) struct EngineCore {
    levels: Vec<PreparedModel>,
    thresholds: Vec<f32>,
    controller: OverloadController,
    tuner: Option<ThresholdController>,
    par: Parallelism,
    chaos: ChaosConfig,
    clock: ServeClock,
    health: Arc<Mutex<HealthStats>>,
    batch_index: u64,
}

impl EngineCore {
    // The engine genuinely owns this many collaborators; bundling them
    // into a one-use struct would only rename the argument list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        levels: Vec<PreparedModel>,
        thresholds: Vec<f32>,
        controller: OverloadController,
        tuner: Option<ThresholdController>,
        par: Parallelism,
        chaos: ChaosConfig,
        clock: ServeClock,
        health: Arc<Mutex<HealthStats>>,
    ) -> Self {
        Self {
            levels,
            thresholds,
            controller,
            tuner,
            par,
            chaos,
            clock,
            health,
            batch_index: 0,
        }
    }

    /// Executes one coalesced batch to full resolution: every request in
    /// it gets exactly one [`ServeResponse`], whatever happens.
    pub fn process(&mut self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let batch_id = self.batch_index;
        self.batch_index += 1;

        // 1. Shed requests that already missed their deadline in the
        //    queue: running them would burn GEMM work on unusable answers.
        let now = self.clock.now_ns();
        let (expired, live): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|p| p.deadline_ns <= now);
        for p in &expired {
            self.resolve_timeout(p, now);
        }
        {
            let mut health = lock(&self.health);
            health.timed_out += expired.len() as u64;
        }

        // 2. Observe queue pressure and settle the effort cap for this
        //    batch. The oldest live request's age is the load signal.
        let oldest_age = live
            .iter()
            .map(|p| now.saturating_sub(p.enqueued_ns))
            .max()
            .unwrap_or(0);
        let cap = self.controller.observe(Duration::from_nanos(oldest_age));
        {
            let mut health = lock(&self.health);
            health.batches += 1;
            health.effort_cap = cap;
            health.downshifts = self.controller.downshifts();
            health.upshifts = self.controller.upshifts();
        }
        if live.is_empty() {
            return;
        }

        // 3. Chaos: an injected stall charges the clock before inference.
        if let Some(stall) = self.chaos.stall.as_mut() {
            if let Some(d) = stall.next_stall() {
                self.clock.advance(d);
                lock(&self.health).stalls += 1;
            }
        }

        // 4. Run the guarded cascade with the panic firewall up. The
        //    `AssertUnwindSafe` is sound because on Err we discard every
        //    piece of state the closure touched except the controller and
        //    clock, which are only read before inference starts.
        let must_panic = self.chaos.panic_batches.contains(&batch_id);
        let levels = &self.levels;
        let thresholds = &self.thresholds;
        let par = self.par;
        let images: Vec<&Matrix> = live.iter().map(|p| &p.image).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            assert!(!must_panic, "chaos: injected batch panic");
            evaluate_guarded_slice(levels, thresholds, cap, &images, par)
        }));

        let done = self.clock.now_ns();
        match result {
            Err(_) => {
                // 5a. The whole batch fails typed; the loop survives.
                let mut health = lock(&self.health);
                health.panics += 1;
                health.failed += live.len() as u64;
                drop(health);
                for p in &live {
                    let outcome =
                        ServeOutcome::Failed(ServeError::BatchPanicked { batch: batch_id });
                    self.respond(p, outcome, done);
                }
            }
            Ok((outcomes, report)) => {
                // 5b. Classify each request by its guarded outcome and the
                //     deadline at completion time.
                let mut completed = 0u64;
                let mut degraded = 0u64;
                let mut timed_out = 0u64;
                for (p, o) in live.iter().zip(&outcomes) {
                    if p.deadline_ns <= done {
                        self.resolve_timeout(p, done);
                        timed_out += 1;
                        continue;
                    }
                    let served = Served {
                        prediction: o.prediction,
                        level: o.level,
                        entropy: o.entropy,
                        effort_cap: cap,
                        fault_fallback: o.fault_fallback,
                    };
                    let outcome = if o.capped || !o.exit_finite || o.fault_fallback.is_some() {
                        degraded += 1;
                        ServeOutcome::Degraded(served)
                    } else {
                        completed += 1;
                        ServeOutcome::Completed(served)
                    };
                    self.respond(p, outcome, done);
                }
                // 6. Close the threshold control loop: every executed
                //    sample's level-0 entropy is drift evidence, and a due
                //    control tick retunes the gate for the *next* batch —
                //    unless the overload cap is engaged, which outranks
                //    the tuner (precedence contract: a held retune is
                //    counted, not applied).
                if let Some(tuner) = self.tuner.as_mut() {
                    for o in &outcomes {
                        tuner.observe(o.low_entropy);
                    }
                    let th = tuner.end_batch(self.controller.is_degraded());
                    if let Some(gate) = self.thresholds.first_mut() {
                        *gate = th;
                    }
                }
                let mut health = lock(&self.health);
                health.completed += completed;
                health.degraded += degraded;
                health.timed_out += timed_out;
                health.threshold = self.thresholds.first().copied().unwrap_or(1.0);
                if let Some(tuner) = self.tuner.as_ref() {
                    health.retunes = tuner.retunes();
                    health.th_holds = tuner.holds();
                }
                health.report.merge(report);
            }
        }
    }

    fn resolve_timeout(&self, p: &Pending, now_ns: u64) {
        let queued_for = Duration::from_nanos(now_ns.saturating_sub(p.enqueued_ns));
        self.respond(p, ServeOutcome::TimedOut { queued_for }, now_ns);
    }

    fn respond(&self, p: &Pending, outcome: ServeOutcome, now_ns: u64) {
        let latency = Duration::from_nanos(now_ns.saturating_sub(p.enqueued_ns));
        // A vanished caller (dropped ticket) is not an engine error.
        let _ = p.reply.send(ServeResponse {
            id: p.id,
            outcome,
            latency,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overload::OverloadPolicy;
    use pivot_core::FaultInjector;
    use pivot_data::{Dataset, DatasetConfig, Sample};
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};
    use std::sync::mpsc::{channel, Receiver};

    fn levels() -> (Vec<PreparedModel>, Vec<f32>) {
        let mut low = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(40));
        low.set_active_attentions(&[0]);
        let mut high = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(41));
        high.set_active_attentions(&[0, 1]);
        (vec![low.prepare(), high.prepare()], vec![0.5])
    }

    fn samples(n: usize) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], n / 2, 42)
    }

    fn engine(
        chaos: ChaosConfig,
        clock: ServeClock,
        policy: OverloadPolicy,
    ) -> (EngineCore, Arc<Mutex<HealthStats>>) {
        let (lv, th) = levels();
        let health = Arc::new(Mutex::new(HealthStats::default()));
        let controller = OverloadController::new(lv.len() - 1, policy);
        let core = EngineCore::new(
            lv,
            th,
            controller,
            None,
            Parallelism::Off,
            chaos,
            clock,
            Arc::clone(&health),
        );
        (core, health)
    }

    fn enqueue(
        set: &[Sample],
        clock: &ServeClock,
        deadline: Duration,
    ) -> (Vec<Pending>, Vec<Receiver<ServeResponse>>) {
        let now = clock.now_ns();
        set.iter()
            .enumerate()
            .map(|(i, s)| {
                let (tx, rx) = channel();
                (
                    Pending {
                        id: i as u64,
                        image: s.image.clone(),
                        enqueued_ns: now,
                        deadline_ns: now + deadline.as_nanos() as u64,
                        reply: tx,
                    },
                    rx,
                )
            })
            .unzip()
    }

    #[test]
    fn healthy_batch_completes_everything_and_balances_the_ledger() {
        let clock = ServeClock::manual();
        let (mut core, health) = engine(
            ChaosConfig::default(),
            clock.clone(),
            OverloadPolicy::default(),
        );
        let set = samples(8);
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_secs(1));
        core.process(batch);
        for rx in rxs {
            let resp = rx.try_recv().expect("resolved");
            assert!(matches!(resp.outcome, ServeOutcome::Completed(_)));
        }
        let h = lock(&health).clone();
        assert_eq!(h.completed, 8);
        assert_eq!(h.batches, 1);
        assert_eq!(h.effort_cap, 1);
        assert!(h.report.is_empty());
    }

    #[test]
    fn injected_panic_fails_the_batch_and_spares_the_next() {
        let clock = ServeClock::manual();
        let chaos = ChaosConfig {
            panic_batches: vec![0],
            ..ChaosConfig::default()
        };
        let (mut core, health) = engine(chaos, clock.clone(), OverloadPolicy::default());
        let set = samples(4);
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_secs(1));
        core.process(batch);
        for rx in rxs {
            let resp = rx.try_recv().expect("resolved");
            assert_eq!(
                resp.outcome,
                ServeOutcome::Failed(ServeError::BatchPanicked { batch: 0 })
            );
        }
        // The very next batch runs normally on the same engine.
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_secs(1));
        core.process(batch);
        for rx in rxs {
            assert!(matches!(
                rx.try_recv().expect("resolved").outcome,
                ServeOutcome::Completed(_)
            ));
        }
        let h = lock(&health).clone();
        assert_eq!(h.panics, 1);
        assert_eq!(h.failed, 4);
        assert_eq!(h.completed, 4);
    }

    #[test]
    fn stall_fault_pushes_live_requests_past_their_deadline() {
        let clock = ServeClock::manual();
        // permille 1000 => every batch stalls 5ms, deterministic.
        let stall = FaultInjector::new(7).stall_schedule(
            1000,
            Duration::from_millis(5),
            Duration::from_millis(5),
        );
        let chaos = ChaosConfig {
            stall: Some(stall),
            ..ChaosConfig::default()
        };
        let (mut core, health) = engine(chaos, clock.clone(), OverloadPolicy::default());
        let set = samples(4);
        // Deadline shorter than the stall: execution finishes too late.
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_millis(2));
        core.process(batch);
        for rx in rxs {
            let resp = rx.try_recv().expect("resolved");
            match resp.outcome {
                ServeOutcome::TimedOut { queued_for } => {
                    assert_eq!(queued_for, Duration::from_millis(5));
                }
                other => panic!("expected timeout, got {other:?}"),
            }
        }
        let h = lock(&health).clone();
        assert_eq!(h.stalls, 1);
        assert_eq!(h.timed_out, 4);
        assert_eq!(h.completed, 0);
    }

    #[test]
    fn queue_expired_requests_are_shed_without_inference() {
        let clock = ServeClock::manual();
        let (mut core, health) = engine(
            ChaosConfig::default(),
            clock.clone(),
            OverloadPolicy::default(),
        );
        let set = samples(4);
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_millis(1));
        // The batch sat in the queue past every deadline.
        clock.advance(Duration::from_millis(10));
        core.process(batch);
        for rx in rxs {
            let resp = rx.try_recv().expect("resolved");
            assert!(matches!(resp.outcome, ServeOutcome::TimedOut { .. }));
            assert_eq!(resp.latency, Duration::from_millis(10));
        }
        let h = lock(&health).clone();
        assert_eq!(h.timed_out, 4);
        // No live requests: the engine never ran inference.
        assert_eq!(h.completed + h.degraded, 0);
    }

    #[test]
    fn overload_downshifts_to_low_only_and_marks_capped_requests_degraded() {
        let clock = ServeClock::manual();
        let policy = OverloadPolicy {
            queue_budget: Duration::from_millis(10),
            recover_ratio: 0.5,
            recover_after: 2,
        };
        let (mut core, health) = engine(ChaosConfig::default(), clock.clone(), policy);
        let set = samples(12);
        let (batch, rxs) = enqueue(&set, &clock, Duration::from_secs(1));
        // Age the batch past the queue budget before the engine sees it.
        clock.advance(Duration::from_millis(20));
        core.process(batch);
        let h = lock(&health).clone();
        assert_eq!(h.effort_cap, 0, "one over-budget observation downshifts");
        assert_eq!(h.downshifts, 1);
        let mut degraded = 0;
        for rx in rxs {
            let resp = rx.try_recv().expect("resolved");
            match resp.outcome {
                ServeOutcome::Completed(s) => assert_eq!(s.level, 0),
                ServeOutcome::Degraded(s) => {
                    assert_eq!(s.level, 0, "cap 0 serves low only");
                    assert_eq!(s.effort_cap, 0);
                    degraded += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(degraded > 0, "some samples must have demanded escalation");
        assert_eq!(lock(&health).degraded, degraded);
    }

    #[test]
    fn recovery_restores_full_effort_after_calm_batches() {
        let clock = ServeClock::manual();
        let policy = OverloadPolicy {
            queue_budget: Duration::from_millis(10),
            recover_ratio: 0.5,
            recover_after: 2,
        };
        let (mut core, health) = engine(ChaosConfig::default(), clock.clone(), policy);
        let set = samples(4);
        let (batch, _rxs) = enqueue(&set, &clock, Duration::from_secs(1));
        clock.advance(Duration::from_millis(20));
        core.process(batch);
        assert_eq!(lock(&health).effort_cap, 0);
        // Two fresh (zero-age) batches rebuild trust.
        for _ in 0..2 {
            let (batch, _rxs) = enqueue(&set, &clock, Duration::from_secs(1));
            core.process(batch);
        }
        let h = lock(&health).clone();
        assert_eq!(h.effort_cap, 1, "hysteretic recovery reached the top");
        assert_eq!(h.upshifts, 1);
    }
}
