//! The server handle: spawn, submit, observe, drain.
//!
//! One worker thread owns the [`EngineCore`] and loops on
//! [`AdmissionQueue::next_batch`]; the handle side is `Send + Sync` and
//! cheap to share. Shutdown is a drain, not an abort: `close` stops
//! admissions, the worker finishes every already-admitted request (each
//! reaching a typed terminal state), and `shutdown` returns the final
//! balanced [`HealthStats`] ledger.

use crate::clock::ServeClock;
use crate::engine::{ChaosConfig, EngineCore};
use crate::health::HealthStats;
use crate::overload::{OverloadController, OverloadPolicy};
use crate::queue::{AdmissionQueue, Pending};
use crate::request::{SubmitError, Ticket};
use crate::threshold::{ThresholdController, ThresholdPolicy};
use pivot_core::Parallelism;
use pivot_tensor::Matrix;
use pivot_vit::PreparedModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning. The defaults suit the repo's synthetic test-small
/// models; production ladders want a measured `batch_window`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded admission queue capacity; submissions beyond it are shed
    /// with [`SubmitError::Rejected`].
    pub queue_capacity: usize,
    /// Largest coalesced batch handed to one guarded evaluation.
    pub max_batch: usize,
    /// How long the engine holds a non-full batch open for concurrent
    /// arrivals to coalesce. Zero disables coalescing.
    pub batch_window: Duration,
    /// Worker-pool parallelism for the batched GEMM sweeps.
    pub parallelism: Parallelism,
    /// Overload-controller tuning.
    pub overload: OverloadPolicy,
    /// Adaptive gate-threshold control. `None` (the default) serves with
    /// the static thresholds passed at spawn — Phase 2's offline
    /// operating point. `Some` closes the loop online: the first gate's
    /// threshold is retuned from observed low-effort entropies to hold
    /// `F_L >= lec` as traffic drifts (see
    /// [`ThresholdPolicy`](crate::ThresholdPolicy)).
    pub threshold: Option<ThresholdPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 32,
            batch_window: Duration::from_millis(2),
            parallelism: Parallelism::Auto,
            overload: OverloadPolicy::default(),
            threshold: None,
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle to a running serving engine.
#[derive(Debug)]
pub struct Server {
    queue: Arc<AdmissionQueue>,
    health: Arc<Mutex<HealthStats>>,
    clock: ServeClock,
    next_id: AtomicU64,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns a server over an effort ladder (levels low → high, one
    /// entropy threshold per gate) with a wall clock and no chaos.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, `thresholds.len() != levels.len() - 1`,
    /// any threshold is outside `[0, 1]`, or the config's capacity or
    /// `max_batch` is zero.
    pub fn spawn(levels: Vec<PreparedModel>, thresholds: Vec<f32>, config: ServeConfig) -> Self {
        Self::spawn_with(
            levels,
            thresholds,
            config,
            ServeClock::wall(),
            ChaosConfig::default(),
        )
    }

    /// Spawns a server with an explicit clock and chaos schedule — the
    /// entry point deterministic tests and the fault-scenario benches use.
    pub fn spawn_with(
        levels: Vec<PreparedModel>,
        thresholds: Vec<f32>,
        config: ServeConfig,
        clock: ServeClock,
        chaos: ChaosConfig,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one effort level");
        assert_eq!(
            thresholds.len(),
            levels.len() - 1,
            "need one threshold per gate (levels - 1)"
        );
        assert!(
            thresholds.iter().all(|t| (0.0..=1.0).contains(t)),
            "entropy thresholds live in [0, 1]"
        );
        assert!(config.max_batch >= 1, "max_batch must be >= 1");
        assert!(
            config.threshold.is_none() || !thresholds.is_empty(),
            "adaptive threshold control needs at least one gate (two levels)"
        );

        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let initial_th = thresholds.first().copied().unwrap_or(1.0);
        let health = Arc::new(Mutex::new(HealthStats {
            effort_cap: levels.len() - 1,
            threshold: initial_th,
            ..HealthStats::default()
        }));
        let controller = OverloadController::new(levels.len() - 1, config.overload);
        let tuner = config
            .threshold
            .map(|policy| ThresholdController::new(initial_th, policy));
        let mut core = EngineCore::new(
            levels,
            thresholds,
            controller,
            tuner,
            config.parallelism,
            chaos,
            clock.clone(),
            Arc::clone(&health),
        );
        let worker = {
            let queue = Arc::clone(&queue);
            let worker_clock = clock.clone();
            let (max_batch, window) = (config.max_batch, config.batch_window);
            std::thread::spawn(move || {
                while let Some(batch) = queue.next_batch(max_batch, window, &worker_clock) {
                    core.process(batch);
                }
            })
        };
        Self {
            queue,
            health,
            clock,
            next_id: AtomicU64::new(0),
            worker: Some(worker),
        }
    }

    /// Offers one request with a relative deadline. Returns a [`Ticket`]
    /// on admission or a typed [`SubmitError`] (backpressure) — never
    /// blocks, never buffers beyond the bounded queue.
    pub fn submit(&self, image: Matrix, deadline: Duration) -> Result<Ticket, SubmitError> {
        lock(&self.health).submitted += 1;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ns();
        let (tx, rx) = channel();
        let pending = Pending {
            id,
            image,
            enqueued_ns: now,
            deadline_ns: now.saturating_add(deadline.as_nanos() as u64),
            reply: tx,
        };
        match self.queue.push(pending) {
            Ok(()) => Ok(Ticket { id, rx }),
            Err(e) => {
                lock(&self.health).shed += 1;
                Err(e)
            }
        }
    }

    /// Requests currently waiting for batch formation.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Snapshot of the cumulative health ledger.
    pub fn health(&self) -> HealthStats {
        lock(&self.health).clone()
    }

    /// The clock the engine charges latencies against (shared source;
    /// advancing a manual clone moves server time).
    pub fn clock(&self) -> ServeClock {
        self.clock.clone()
    }

    /// Stops admissions, drains every already-admitted request to a typed
    /// terminal state, joins the worker, and returns the final ledger.
    pub fn shutdown(mut self) -> HealthStats {
        self.drain();
        lock(&self.health).clone()
    }

    fn drain(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            // A panicked worker already failed its batch via the
            // firewall; anything reaching here is an engine bug, but the
            // drain contract still holds for the handle.
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeOutcome;
    use pivot_core::evaluate_guarded_slice;
    use pivot_data::{Dataset, DatasetConfig, Sample};
    use pivot_tensor::Rng;
    use pivot_vit::{VisionTransformer, VitConfig};

    fn ladder() -> (Vec<PreparedModel>, Vec<f32>) {
        let mut low = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(50));
        low.set_active_attentions(&[0]);
        let mut high = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(51));
        high.set_active_attentions(&[0, 1]);
        (vec![low.prepare(), high.prepare()], vec![0.5])
    }

    fn samples(n: usize) -> Vec<Sample> {
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], n / 2, 52)
    }

    fn config() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            batch_window: Duration::from_millis(1),
            parallelism: Parallelism::Off,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthy_serving_is_bit_identical_to_offline_guarded_evaluation() {
        let (levels, thresholds) = ladder();
        let set = samples(16);
        let images: Vec<&Matrix> = set.iter().map(|s| &s.image).collect();
        let (offline, offline_report) =
            evaluate_guarded_slice(&levels, &thresholds, 1, &images, Parallelism::Off);
        assert!(offline_report.is_empty());

        let server = Server::spawn(levels, thresholds, config());
        let tickets: Vec<_> = set
            .iter()
            .map(|s| {
                server
                    .submit(s.image.clone(), Duration::from_secs(30))
                    .expect("capacity")
            })
            .collect();
        for (ticket, expected) in tickets.into_iter().zip(&offline) {
            let resp = ticket.wait().expect("drain contract");
            match resp.outcome {
                ServeOutcome::Completed(s) => {
                    assert_eq!(s.prediction, expected.prediction);
                    assert_eq!(s.level, expected.level);
                    assert_eq!(s.entropy.to_bits(), expected.entropy.to_bits());
                    assert_eq!(s.fault_fallback, None);
                }
                other => panic!("healthy request resolved as {other:?}"),
            }
        }
        let h = server.shutdown();
        assert_eq!(h.completed, 16);
        assert!(h.accounted(), "ledger must balance: {h}");
        assert!(h.report.is_empty());
    }

    #[test]
    fn overflow_is_shed_with_typed_backpressure_and_stays_accounted() {
        let (levels, thresholds) = ladder();
        // Capacity 1 and a long window: the first request occupies the
        // queue while the engine coalesces, so a burst overflows.
        let cfg = ServeConfig {
            queue_capacity: 1,
            batch_window: Duration::from_secs(2),
            ..config()
        };
        let server = Server::spawn(levels, thresholds, cfg);
        let set = samples(8);
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for s in &set {
            match server.submit(s.image.clone(), Duration::from_secs(30)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Rejected { queue_depth }) => {
                    assert_eq!(queue_depth, 1);
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed > 0, "burst must overflow capacity 1");
        for t in tickets {
            assert!(t.wait().expect("drain contract").outcome.served().is_some());
        }
        let h = server.shutdown();
        assert_eq!(h.shed, shed);
        assert!(h.accounted(), "ledger must balance: {h}");
    }

    #[test]
    fn shutdown_drains_admitted_requests_and_rejects_new_ones() {
        let (levels, thresholds) = ladder();
        let server = Server::spawn(levels, thresholds, config());
        let set = samples(8);
        let tickets: Vec<_> = set
            .iter()
            .map(|s| {
                server
                    .submit(s.image.clone(), Duration::from_secs(30))
                    .expect("capacity")
            })
            .collect();
        let h = server.shutdown();
        assert_eq!(h.resolved(), 8, "drain resolves every admitted request");
        assert!(h.accounted());
        for t in tickets {
            assert!(t.wait().is_some(), "responses survive shutdown");
        }
    }

    #[test]
    fn submit_after_shutdown_path_reports_shutting_down() {
        let (levels, thresholds) = ladder();
        let server = Server::spawn(levels, thresholds, config());
        server.queue.close();
        let img = samples(2).remove(0).image;
        assert_eq!(
            server
                .submit(img, Duration::from_secs(1))
                .map(|_| ())
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        let h = server.shutdown();
        assert_eq!(h.submitted, 1);
        assert_eq!(h.shed, 1);
        assert!(h.accounted());
    }

    #[test]
    #[should_panic(expected = "one threshold per gate")]
    fn mismatched_thresholds_are_rejected_at_spawn() {
        let (levels, _) = ladder();
        let _ = Server::spawn(levels, vec![0.5, 0.5], config());
    }
}
