//! The engine's notion of time: real for production, manual for tests.
//!
//! Every latency decision in the engine — deadline admission, queue-age
//! overload detection, response latencies — reads one [`ServeClock`]. The
//! wall variant anchors at construction and reports elapsed nanoseconds;
//! the manual variant is an atomic counter tests advance explicitly, so
//! deadline-miss and timeout paths (driven by the deterministic
//! [`StallSchedule`](pivot_core::StallSchedule) fault mode) replay
//! bit-identically with no actual waiting and no wall-clock flakiness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock shared between the server handle and the
/// engine thread. Cloning shares the underlying time source.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Real time, measured from the moment the clock was created.
    Wall(Instant),
    /// Virtual time: starts at zero, advances only via [`Self::advance`].
    Manual(Arc<AtomicU64>),
}

impl ServeClock {
    /// A real-time clock anchored at now.
    pub fn wall() -> Self {
        Self::Wall(Instant::now())
    }

    /// A virtual clock starting at zero.
    pub fn manual() -> Self {
        Self::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            Self::Wall(origin) => origin.elapsed().as_nanos() as u64,
            Self::Manual(ns) => ns.load(Ordering::SeqCst),
        }
    }

    /// Charges a duration to the clock: a manual clock jumps forward, a
    /// wall clock actually sleeps. This is how injected stall faults cost
    /// real time in production and virtual time in tests.
    pub fn advance(&self, d: Duration) {
        match self {
            Self::Wall(_) => std::thread::sleep(d),
            Self::Manual(ns) => {
                ns.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero_and_advances_exactly() {
        let clock = ServeClock::manual();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now_ns(), 3_000_000);
        // Clones share the time source.
        let shared = clock.clone();
        shared.advance(Duration::from_nanos(7));
        assert_eq!(clock.now_ns(), 3_000_007);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = ServeClock::wall();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
