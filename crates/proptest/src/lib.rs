//! Minimal property-testing shim, API-compatible with the subset of the
//! `proptest` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be vendored; this crate re-implements the pieces the test suite
//! needs — [`Strategy`] over numeric ranges, [`collection::vec`],
//! `prop_map`, the [`proptest!`] macro and the `prop_assert*` macros —
//! on top of a small deterministic PRNG. There is **no shrinking**: a
//! failing case panics with the case index, and cases are reproducible
//! because every test derives its stream from a hash of its own name.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case synthesis (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D199_EC15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction; the negligible modulo bias is fine for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` for the
/// operations the workspace uses (`prop_map` and range/vec strategies).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_range_strategy {
    ($ty:ty) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Include the upper endpoint by widening one ulp-ish step.
                let x = lo + (hi - lo) * rng.unit_f64() as $ty;
                if rng.next_u64() % 1024 == 0 {
                    hi
                } else {
                    x
                }
            }
        }
    };
}

float_range_strategy!(f32);
float_range_strategy!(f64);

macro_rules! int_range_strategy {
    ($ty:ty) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    };
}

int_range_strategy!(usize);
int_range_strategy!(u64);
int_range_strategy!(u32);
int_range_strategy!(i32);
int_range_strategy!(i64);

/// A constant strategy, for completeness (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: either exact or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash used to derive a per-test deterministic seed from its name.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = || $body;
                    let _ = case;
                    run();
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// inputs. Supports the optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The prelude, mirroring `proptest::prelude::*` for the names used here.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(-2.0f32..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = Strategy::generate(&(1usize..10), &mut rng);
            assert!((1..10).contains(&n));
            let z = Strategy::generate(&(-128i32..127), &mut rng);
            assert!((-128..127).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0.0f32..1.0, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = Strategy::generate(&collection::vec(0.0f32..1.0, 5usize), &mut rng);
        assert_eq!(exact.len(), 5);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(3);
        let doubled = (1usize..4).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = Strategy::generate(&doubled, &mut rng);
            assert!([2, 4, 6].contains(&v));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_runs(x in 0.0f64..1.0, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn macro_honors_config(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }
}
