//! Minimal fixed-width table printing for experiment reports.

/// A simple text table with a header row.
///
/// # Example
///
/// ```
/// use pivot_bench::Table;
///
/// let mut t = Table::new(&["Model", "Delay (ms)"]);
/// t.row(&["DeiT-S", "59.66"]);
/// let s = t.to_string();
/// assert!(s.contains("DeiT-S"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are blank, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| s.to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.truncate(self.headers.len());
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{self}");
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["A", "Long header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains('3'));
    }
}
