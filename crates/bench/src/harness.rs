//! Shared experiment state: datasets, trained model families, simulator.

use pivot_core::{compute_cka_matrix, EffortModel, PipelineConfig, PivotArtifacts, PivotPipeline};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};
use pivot_vit::{TrainConfig, VisionTransformer, VitConfig};
use std::path::PathBuf;

/// Experiment scale, selected with `PIVOT_PROFILE=fast|full` (default
/// `fast`). `full` trains larger stand-ins for longer and prepares the
/// paper's complete effort ladders; `fast` finishes a family in about a
/// minute on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small models, short training, sparse effort ladder.
    Fast,
    /// Larger models, longer training, the paper's full effort ladder.
    Full,
}

impl Profile {
    /// Reads the profile from the `PIVOT_PROFILE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("PIVOT_PROFILE").as_deref() {
            Ok("full") => Profile::Full,
            _ => Profile::Fast,
        }
    }

    /// Short name used for the cache directory.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Fast => "fast",
            Profile::Full => "full",
        }
    }

    fn dataset_config(self) -> DatasetConfig {
        match self {
            Profile::Fast => DatasetConfig {
                classes: 8,
                image_size: 32,
                train_per_class: 60,
                test_per_class: 25,
                difficulty: (0.0, 1.0),
            },
            Profile::Full => DatasetConfig {
                classes: 10,
                image_size: 32,
                train_per_class: 150,
                test_per_class: 40,
                difficulty: (0.0, 1.0),
            },
        }
    }

    fn vit_config(self, family: Family, classes: usize) -> VitConfig {
        let dim = match self {
            Profile::Fast => 48,
            Profile::Full => 64,
        };
        VitConfig {
            name: family.tiny_name().to_string(),
            depth: family.depth(),
            dim,
            heads: 4,
            mlp_ratio: 2.0,
            image_size: 32,
            patch_size: 8,
            num_classes: classes,
            quant: pivot_nn::QuantMode::None,
        }
    }

    fn efforts(self, family: Family) -> Vec<usize> {
        match (self, family) {
            (Profile::Fast, Family::Deit) => vec![3, 5, 7, 9, 12],
            (Profile::Fast, Family::Lvvit) => vec![4, 7, 10, 13, 16],
            // The paper's ladders (Section 4.1) plus the full effort.
            (Profile::Full, Family::Deit) => vec![3, 4, 5, 6, 7, 8, 9, 12],
            (Profile::Full, Family::Lvvit) => {
                vec![4, 5, 6, 7, 8, 9, 10, 11, 12, 16]
            }
        }
    }

    fn pipeline_config(self, family: Family, classes: usize) -> PipelineConfig {
        let (teacher_epochs, finetune_epochs, cka_batch) = match self {
            Profile::Fast => (14, 3, 96),
            Profile::Full => (20, 6, 256),
        };
        PipelineConfig {
            vit: self.vit_config(family, classes),
            efforts: self.efforts(family),
            teacher_train: TrainConfig {
                epochs: teacher_epochs,
                batch_size: 16,
                lr: 1e-3,
                distill_weight: 0.0,
                entropy_weight: 0.05,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 11,
            },
            finetune: TrainConfig {
                epochs: finetune_epochs,
                batch_size: 16,
                lr: 1e-3,
                distill_weight: 0.5,
                entropy_weight: 0.1,
                grad_clip: 1.0,
                warmup_fraction: 0.1,
                seed: 12,
            },
            cka_batch,
            seed: family.seed(),
        }
    }
}

/// The two model families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// DeiT-S (depth 12) and its tiny trainable stand-in.
    Deit,
    /// LVViT-S (depth 16) and its tiny trainable stand-in.
    Lvvit,
}

impl Family {
    fn depth(self) -> usize {
        match self {
            Family::Deit => 12,
            Family::Lvvit => 16,
        }
    }

    fn tiny_name(self) -> &'static str {
        match self {
            Family::Deit => "Tiny-DeiT",
            Family::Lvvit => "Tiny-LVViT",
        }
    }

    fn cache_tag(self) -> &'static str {
        match self {
            Family::Deit => "deit",
            Family::Lvvit => "lvvit",
        }
    }

    fn seed(self) -> u64 {
        match self {
            Family::Deit => 100,
            Family::Lvvit => 200,
        }
    }

    /// The paper-scale geometry PIVOT-Sim evaluates for this family.
    pub fn geometry(self) -> VitGeometry {
        match self {
            Family::Deit => VitGeometry::deit_s(),
            Family::Lvvit => VitGeometry::lvvit_s(),
        }
    }
}

/// One model family's trained artifacts plus its paper-scale geometry.
#[derive(Debug, Clone)]
pub struct FamilyArtifacts {
    /// Paper-scale name (`"DeiT-S"` / `"LVViT-S"`).
    pub label: String,
    /// Paper-scale geometry for the simulator.
    pub geometry: VitGeometry,
    /// Trained pipeline outputs (teacher, CKA, efforts).
    pub artifacts: PivotArtifacts,
}

impl FamilyArtifacts {
    /// The trained effort models.
    pub fn efforts(&self) -> &[EffortModel] {
        &self.artifacts.efforts
    }
}

/// All shared experiment state.
#[derive(Debug)]
pub struct Reproduction {
    /// Active profile.
    pub profile: Profile,
    /// The synthetic dataset both families train and evaluate on.
    pub dataset: Dataset,
    /// Calibration batch used by Phase 2 (drawn from the training set, as
    /// in the paper).
    pub calibration: Vec<Sample>,
    /// DeiT-S family.
    pub deit: FamilyArtifacts,
    /// LVViT-S family.
    pub lvvit: FamilyArtifacts,
    /// The ZCU102 simulator.
    pub sim: Simulator,
}

impl Reproduction {
    /// Loads (from the checkpoint cache) or trains both families.
    pub fn load() -> Self {
        let profile = Profile::from_env();
        let dataset = Dataset::generate(&profile.dataset_config(), 42);
        let calibration: Vec<Sample> = dataset
            .train
            .iter()
            .take(match profile {
                Profile::Fast => 128,
                Profile::Full => 256,
            })
            .cloned()
            .collect();
        let deit = load_or_train_family(profile, Family::Deit, &dataset);
        let lvvit = load_or_train_family(profile, Family::Lvvit, &dataset);
        Self {
            profile,
            dataset,
            calibration,
            deit,
            lvvit,
            sim: Simulator::new(AcceleratorConfig::zcu102()),
        }
    }

    /// A delay/energy-only harness (no training) for the experiments that
    /// do not need accuracies.
    pub fn simulator() -> Simulator {
        Simulator::new(AcceleratorConfig::zcu102())
    }
}

fn cache_dir(profile: Profile) -> PathBuf {
    PathBuf::from("target")
        .join("pivot-cache")
        .join(profile.name())
}

fn load_or_train_family(profile: Profile, family: Family, dataset: &Dataset) -> FamilyArtifacts {
    let dir = cache_dir(profile);
    let tag = family.cache_tag();
    let teacher_path = dir.join(format!("{tag}_teacher.bin"));
    let efforts = profile.efforts(family);
    let effort_paths: Vec<PathBuf> = efforts
        .iter()
        .map(|e| dir.join(format!("{tag}_effort_{e}.bin")))
        .collect();

    let cached = teacher_path.exists() && effort_paths.iter().all(|p| p.exists());
    let artifacts = if cached {
        eprintln!(
            "[harness] loading cached {tag} family from {}",
            dir.display()
        );
        rebuild_from_cache(&teacher_path, &effort_paths, &efforts, dataset)
    } else {
        eprintln!(
            "[harness] training {tag} family (profile {})...",
            profile.name()
        );
        let pipeline = PivotPipeline::new(profile.pipeline_config(family, dataset.config.classes));
        let artifacts = pipeline.run(dataset);
        std::fs::create_dir_all(&dir).ok();
        if artifacts.teacher.save(&teacher_path).is_err() {
            eprintln!("[harness] warning: could not cache teacher");
        }
        for (em, path) in artifacts.efforts.iter().zip(&effort_paths) {
            em.model.save(path).ok();
        }
        artifacts
    };

    FamilyArtifacts {
        label: family.geometry().name.clone(),
        geometry: family.geometry(),
        artifacts,
    }
}

/// Rebuilds pipeline artifacts from cached checkpoints: models are loaded,
/// the CKA matrix and Phase-1 rankings are recomputed (cheap) from the
/// cached teacher.
fn rebuild_from_cache(
    teacher_path: &PathBuf,
    effort_paths: &[PathBuf],
    efforts: &[usize],
    dataset: &Dataset,
) -> PivotArtifacts {
    let teacher = VisionTransformer::load(teacher_path).expect("cached teacher readable");
    let batch: Vec<&Sample> = dataset.train.iter().take(96).collect();
    let cka = compute_cka_matrix(&teacher, &batch);
    let phase1: Vec<_> = efforts
        .iter()
        .map(|&e| pivot_core::select_optimal_path(e, &cka))
        .collect();
    let effort_models: Vec<EffortModel> = effort_paths
        .iter()
        .zip(efforts)
        .map(|(path, &effort)| {
            let model = VisionTransformer::load(path).expect("cached effort readable");
            let mask: Vec<bool> = (0..model.config().depth)
                .map(|i| model.active_attentions().contains(&i))
                .collect();
            let path_config = pivot_core::PathConfig::from_mask(&mask);
            let score = pivot_core::path_score(&path_config, &cka);
            EffortModel {
                effort,
                path: path_config,
                score,
                model,
            }
        })
        .collect();
    PivotArtifacts {
        teacher,
        cka,
        phase1,
        efforts: effort_models,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_and_ladders() {
        assert_eq!(Profile::Fast.name(), "fast");
        assert_eq!(Profile::Full.name(), "full");
        // Full profile carries the paper's effort ladders (Section 4.1).
        let deit_full = Profile::Full.efforts(Family::Deit);
        assert!(deit_full.starts_with(&[3, 4, 5, 6, 7, 8, 9]));
        let lv_full = Profile::Full.efforts(Family::Lvvit);
        assert!(lv_full.starts_with(&[4, 5, 6, 7, 8, 9, 10, 11, 12]));
    }

    #[test]
    fn family_geometries_match_paper_scale() {
        assert_eq!(Family::Deit.geometry().depth, 12);
        assert_eq!(Family::Lvvit.geometry().depth, 16);
        assert_eq!(Family::Deit.geometry().dim, 384);
    }

    #[test]
    fn pipeline_configs_validate() {
        for profile in [Profile::Fast, Profile::Full] {
            for family in [Family::Deit, Family::Lvvit] {
                profile.pipeline_config(family, 8).validate();
            }
        }
    }
}
