//! GPP experiments: Fig. 1c (throughput) and Fig. 7 (compute/overhead
//! delay split) across CPUs and GPUs.

use super::pvds50;
use crate::harness::Reproduction;
use crate::Table;
use pivot_baselines::gpp::{
    baseline_workload, heatvit_workload, pivot_workload, vitcod_workload, Platform,
};

/// One method's result on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct GppMethodResult {
    /// Platform display name.
    pub platform: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Compute portion of delay (ms).
    pub compute_ms: f64,
    /// Overhead portion (dispatch/gather/sync, ms).
    pub overhead_ms: f64,
    /// Throughput relative to the dense baseline on the same platform.
    pub relative_throughput: f64,
}

fn run_methods(repro: &Reproduction) -> Vec<GppMethodResult> {
    let geom = &repro.deit.geometry;
    // GPP deployments want a high LEC (re-computation is pure overhead on a
    // CPU/GPU, there is no energy-per-component story to trade against), so
    // the comparison uses the LEC-90 PVDS-50 point — consistent with the
    // paper's ~6% reported GPP overhead, which implies a small F_H.
    let pvds = super::phase2_at(repro, &repro.deit, 50.0, 0.9).unwrap_or_else(|| pvds50(repro));
    let low_mask = pvds.low_path.to_mask();
    let high_mask = pvds.high_path.to_mask();
    let f_high = pvds.stats.f_high();

    let workloads = [
        ("Baseline", baseline_workload(geom)),
        ("HeatViT", heatvit_workload(geom, 3)),
        ("ViTCOD", vitcod_workload(geom, 0.9)),
        ("PIVOT", pivot_workload(geom, &low_mask, &high_mask, f_high)),
    ];

    let mut out = Vec::new();
    for platform in Platform::ALL {
        let spec = platform.spec();
        let base_delay = spec.delay_ms(&workloads[0].1);
        for (method, wl) in &workloads {
            let (compute_ms, overhead_ms) = spec.delay_split_ms(wl);
            out.push(GppMethodResult {
                platform: spec.name,
                method,
                compute_ms,
                overhead_ms,
                relative_throughput: base_delay / (compute_ms + overhead_ms),
            });
        }
    }
    out
}

/// Fig. 1c: throughput of PIVOT vs the DeiT-S baseline, HeatViT and ViTCOD
/// on GPUs (V100, RTX 2080 Ti, Orin Nano) and CPUs (Xeon, RPi 4),
/// normalized to the baseline.
///
/// Paper: PIVOT reaches 1.2-1.5x the baseline (up to 1.8x vs prior works);
/// ViTCOD tracks the baseline; HeatViT falls below it.
pub fn fig1c(repro: &Reproduction) -> Vec<GppMethodResult> {
    println!("\n=== Fig. 1c: throughput on general-purpose platforms ===");
    println!("paper: PIVOT 1.2-1.5x baseline; ViTCOD ~ baseline; HeatViT < baseline\n");
    let results = run_methods(repro);
    let mut table = Table::new(&[
        "Platform",
        "Baseline",
        "HeatViT",
        "ViTCOD",
        "PIVOT (PVDS-50)",
    ]);
    for platform in Platform::ALL {
        let name = platform.spec().name;
        let cell = |method: &str| {
            let r = results
                .iter()
                .find(|r| r.platform == name && r.method == method)
                .expect("result exists");
            format!("{:.2}x", r.relative_throughput)
        };
        table.row_owned(vec![
            name.to_string(),
            cell("Baseline"),
            cell("HeatViT"),
            cell("ViTCOD"),
            cell("PIVOT"),
        ]);
    }
    table.print();
    results
}

/// Fig. 7: compute and overhead delay breakdown for every method on every
/// platform (absolute milliseconds).
///
/// Paper: PIVOT 1.2-1.5x lower delay than baseline with ~6% overhead;
/// ViTCOD ~ baseline; HeatViT has significant predictor/packaging overhead.
pub fn fig7(repro: &Reproduction) -> Vec<GppMethodResult> {
    println!("\n=== Fig. 7: compute + overhead delay on GPPs ===");
    println!("paper: PIVOT overhead ~6%, mostly re-computation; entropy < 0.05%\n");
    let results = run_methods(repro);
    let mut table = Table::new(&[
        "Platform",
        "Method",
        "Compute (ms)",
        "Overhead (ms)",
        "Total (ms)",
    ]);
    for r in &results {
        table.row_owned(vec![
            r.platform.to_string(),
            r.method.to_string(),
            format!("{:.3}", r.compute_ms),
            format!("{:.3}", r.overhead_ms),
            format!("{:.3}", r.compute_ms + r.overhead_ms),
        ]);
    }
    table.print();
    results
}
