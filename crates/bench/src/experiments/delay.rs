//! Delay/energy breakdown experiments: Fig. 1b, Fig. 6a, Fig. 6b.

use super::{pvds50, pvls50};
use crate::harness::Reproduction;
use crate::Table;
use pivot_sim::{EnergyComponent, ModuleClass, Simulator, VitGeometry};

/// Attention-vs-rest delay split of one model (Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayShare {
    /// Fraction of total delay in the attention module
    /// (QKV + QKᵀ + SM + SM×V + Proj).
    pub attention_fraction: f64,
    /// Total baseline delay (ms).
    pub total_ms: f64,
}

/// Fig. 1b: delay distribution across ViT modules for the DeiT-S and
/// LVViT-S baselines. The paper reports attention taking 77.5-81.9% of
/// inference delay.
pub fn fig1b(sim: &Simulator) -> Vec<DelayShare> {
    println!("\n=== Fig. 1b: delay distribution across ViT modules ===");
    println!("paper: attention (QKV+QKT+SM+SMxV+Proj) is 77.5%-81.9% of delay\n");
    let mut out = Vec::new();
    let mut table = Table::new(&[
        "Model",
        "Total (ms)",
        "Attention %",
        "  QKV/Proj/QKT/SMV %",
        "Softmax %",
        "MLP %",
        "Other %",
    ]);
    for (geom, depth) in [(VitGeometry::deit_s(), 12), (VitGeometry::lvvit_s(), 16)] {
        let perf = sim.simulate(&geom, &vec![true; depth]);
        let b = &perf.breakdown;
        let total = perf.delay_ms;
        let attention = b.attention_total_ms() / total;
        let other = 1.0 - attention - b.fraction(ModuleClass::Mlp);
        table.row_owned(vec![
            geom.name.clone(),
            format!("{total:.2}"),
            format!("{:.1}", attention * 100.0),
            format!("{:.1}", b.fraction(ModuleClass::AttentionMac) * 100.0),
            format!("{:.1}", b.fraction(ModuleClass::Softmax) * 100.0),
            format!("{:.1}", b.fraction(ModuleClass::Mlp) * 100.0),
            format!("{:.1}", other * 100.0),
        ]);
        out.push(DelayShare {
            attention_fraction: attention,
            total_ms: total,
        });
    }
    table.print();
    out
}

/// Fig. 6a: delay breakdown (Attention MAC / Softmax / MLP) for the
/// baselines vs PVDS-50 / PVLS-50. The paper reports softmax shrinking
/// from 60% (63%) to 43% (48%) and MLP growing due to re-computation.
pub fn fig6a(repro: &Reproduction) -> Vec<(String, f64, f64, f64)> {
    println!("\n=== Fig. 6a: delay breakdown across encoder modules ===");
    println!("paper: softmax 60%->43% (DeiT-S), 63%->48% (LVViT-S); MLP share grows\n");
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "Config",
        "Attention MAC %",
        "Softmax %",
        "MLP %",
        "Total (ms)",
    ]);

    let mut push = |name: String, breakdown: &pivot_sim::DelayBreakdown| {
        let total = breakdown.total_ms();
        let mac = breakdown.get(ModuleClass::AttentionMac) / total;
        let sm = breakdown.get(ModuleClass::Softmax) / total;
        let mlp = breakdown.get(ModuleClass::Mlp) / total;
        table.row_owned(vec![
            name.clone(),
            format!("{:.1}", mac * 100.0),
            format!("{:.1}", sm * 100.0),
            format!("{:.1}", mlp * 100.0),
            format!("{total:.2}"),
        ]);
        rows.push((name, mac, sm, mlp));
    };

    let deit_base = repro.sim.simulate(&repro.deit.geometry, &[true; 12]);
    push("DeiT-S".into(), &deit_base.breakdown);
    let pvds = pvds50(repro);
    push(
        format!("PVDS-50 [{}+{}]", pvds.low_effort, pvds.high_effort),
        &pvds.perf.breakdown,
    );

    let lv_base = repro.sim.simulate(&repro.lvvit.geometry, &[true; 16]);
    push("LVViT-S".into(), &lv_base.breakdown);
    let pvls = pvls50(repro);
    push(
        format!("PVLS-50 [{}+{}]", pvls.low_effort, pvls.high_effort),
        &pvls.perf.breakdown,
    );

    table.print();
    rows
}

/// Per-component energy reduction of a PIVOT point vs its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReduction {
    /// Configuration label.
    pub label: String,
    /// `(component, baseline J, pivot J, reduction factor)`.
    pub components: Vec<(EnergyComponent, f64, f64, f64)>,
}

/// Fig. 6b: energy breakdown across the PE array, SRAM, periphery and PS
/// for the baselines vs PVDS-50 / PVLS-50. The paper reports ~2x energy
/// reduction in the PS and 1.6-1.8x in the PL components.
pub fn fig6b(repro: &Reproduction) -> Vec<EnergyReduction> {
    println!("\n=== Fig. 6b: energy breakdown across FPGA resources ===");
    println!("paper: PS ~2x reduction; PE/SRAM/periphery 1.6-1.8x (see EXPERIMENTS.md");
    println!("for the discussion of the paper's internal inconsistency here)\n");
    let mut out = Vec::new();
    let mut table = Table::new(&[
        "Model",
        "Component",
        "Baseline (mJ)",
        "PIVOT (mJ)",
        "Reduction",
    ]);
    for (family, label, result) in [
        (&repro.deit, "PVDS-50", pvds50(repro)),
        (&repro.lvvit, "PVLS-50", pvls50(repro)),
    ] {
        let base = repro
            .sim
            .simulate(&family.geometry, &vec![true; family.geometry.depth]);
        let mut components = Vec::new();
        for c in EnergyComponent::ALL {
            let b = base.energy.get(c);
            let p = result.perf.energy.get(c);
            let reduction = b / p;
            table.row_owned(vec![
                format!("{} vs {label}", family.label),
                c.name().to_string(),
                format!("{:.1}", b * 1e3),
                format!("{:.1}", p * 1e3),
                format!("{reduction:.2}x"),
            ]);
            components.push((c, b, p, reduction));
        }
        out.push(EnergyReduction {
            label: label.to_string(),
            components,
        });
    }
    table.print();
    out
}
