//! Analysis experiments: Fig. 3a (CKA matrix), Fig. 4a (path accuracy vs
//! score), Fig. 4b (design space), Fig. 4c (training cost), Fig. 8 (LEC
//! sweep) and Fig. 9 (effort combinations vs delay target).

use super::phase2_at;
use crate::harness::Reproduction;
use crate::Table;
use pivot_core::{search_space, PathConfig};
use pivot_core::{Phase2Config, Phase2Search, TrainCostModel};
use pivot_vit::Trainer;

/// Fig. 3a: the CKA matrix `CKA(MLP_i, A_{i+1})` of the trained DeiT-S
/// stand-in. The paper's observation: CKA grows toward deeper encoders,
/// which is why skips concentrate there.
///
/// Returns `(mean CKA in the first half, mean CKA in the second half)` of
/// the first superdiagonal.
pub fn fig3a(repro: &Reproduction) -> (f32, f32) {
    println!("\n=== Fig. 3a: CKA matrix (MLP_i vs A_j) of the DeiT-S stand-in ===");
    println!("paper: CKA(MLP_i, A_i+1) is higher in deeper encoders\n");
    let cka = &repro.deit.artifacts.cka;
    let depth = cka.depth();
    print!("      ");
    for j in 1..depth {
        print!("A{j:<5}");
    }
    println!();
    for i in 0..depth - 1 {
        print!("MLP{i:<3}");
        for j in 1..depth {
            if j > i {
                print!("{:<6.2}", cka.get(i, j));
            } else {
                print!("      ");
            }
        }
        println!();
    }
    let superdiag: Vec<f32> = (0..depth - 1).map(|i| cka.get(i, i + 1)).collect();
    let half = superdiag.len() / 2;
    let first: f32 = superdiag[..half].iter().sum::<f32>() / half as f32;
    let second: f32 = superdiag[half..].iter().sum::<f32>() / (superdiag.len() - half) as f32;
    println!("\nmean CKA(MLP_i, A_i+1): shallow half {first:.3}, deep half {second:.3}");
    (first, second)
}

/// One sampled path of Fig. 4a.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAccuracyPoint {
    /// The path's Algorithm-1 score.
    pub score: f32,
    /// Test accuracy after a short fine-tune.
    pub accuracy: f64,
}

/// Fig. 4a: path accuracy vs Path-Score at a fixed effort. The paper shows
/// a positive correlation (effort 6, DeiT-S).
///
/// Samples `n_paths` paths evenly across the score range, fine-tunes each
/// briefly with distillation from the teacher, and reports test accuracy.
/// Returns the points and the Pearson correlation.
pub fn fig4a(repro: &Reproduction, effort: usize, n_paths: usize) -> (Vec<PathAccuracyPoint>, f64) {
    println!("\n=== Fig. 4a: path accuracy vs Path-Score (effort {effort}) ===");
    println!("paper: positive correlation between S and path accuracy\n");
    let family = &repro.deit;
    let ranked = pivot_core::select_optimal_path(effort, &family.artifacts.cka).ranked;
    let step = (ranked.len().saturating_sub(1)).max(1) / (n_paths - 1).max(1);
    let sampled: Vec<_> = (0..n_paths)
        .map(|i| ranked[(i * step).min(ranked.len() - 1)].clone())
        .collect();

    let teacher = &family.artifacts.teacher;
    let eval: Vec<_> = repro.dataset.test.to_vec();

    let mut points = Vec::with_capacity(sampled.len());
    let mut table = Table::new(&["Path", "Score S", "Accuracy (%)"]);
    for sp in &sampled {
        let mut student = teacher.clone();
        student.set_active_attentions(sp.path.active());
        let cfg = pivot_vit::TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
            distill_weight: 0.5,
            entropy_weight: 0.0,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: 77,
        };
        Trainer::new(cfg).train(&mut student, Some(teacher), &repro.dataset);
        let acc = student.accuracy(&eval) as f64;
        table.row_owned(vec![
            sp.path.to_string(),
            format!("{:.3}", sp.score),
            format!("{:.1}", acc * 100.0),
        ]);
        points.push(PathAccuracyPoint {
            score: sp.score,
            accuracy: acc,
        });
    }
    table.print();
    let corr = pearson(
        &points.iter().map(|p| p.score as f64).collect::<Vec<_>>(),
        &points.iter().map(|p| p.accuracy).collect::<Vec<_>>(),
    );
    println!("Pearson correlation(score, accuracy) = {corr:.3}");
    (points, corr)
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Fig. 4b: Phase-2 design-space size with random search vs PIVOT.
/// Returns the reduction factor per family.
pub fn fig4b() -> Vec<(String, f64)> {
    println!("\n=== Fig. 4b: Phase-2 design-space size, random vs PIVOT ===");
    println!("paper: DeiT-S random search space ~1e5 x PIVOT's\n");
    let mut out = Vec::new();
    let mut table = Table::new(&[
        "Model",
        "Efforts",
        "Random space",
        "PIVOT space",
        "Reduction",
    ]);
    for (name, depth, efforts) in [
        ("DeiT-S", 12usize, (3..=9).collect::<Vec<usize>>()),
        ("LVViT-S", 16, (4..=12).collect()),
    ] {
        let random = search_space::total_random_space(depth, &efforts);
        let pivot = search_space::total_pivot_space(&efforts);
        let factor = search_space::reduction_factor(depth, &efforts);
        table.row_owned(vec![
            name.to_string(),
            format!("{}..={}", efforts[0], efforts[efforts.len() - 1]),
            format!("{random:.3e}"),
            format!("{pivot}"),
            format!("{factor:.3e}x"),
        ]);
        out.push((name.to_string(), factor));
    }
    table.print();
    out
}

/// Fig. 4c: GPU hours for training all efforts, normalized to training the
/// ViT from scratch. Returns the ratio per family (paper: ~1/3 for DeiT-S,
/// ~1/2 for LVViT-S).
pub fn fig4c(repro: &Reproduction) -> Vec<(String, f64)> {
    println!("\n=== Fig. 4c: normalized GPU hours for training all efforts ===");
    println!("paper: all DeiT-S efforts cost ~1/3 of from-scratch training; LVViT-S ~1/2\n");
    let model = TrainCostModel::default();
    let mut out = Vec::new();
    let mut table = Table::new(&["Model", "Efforts trained", "Relative GPU hours"]);
    for (family, efforts) in [
        (&repro.deit, (3..=9).collect::<Vec<usize>>()),
        (&repro.lvvit, (4..=12).collect()),
    ] {
        // Use Phase-1 optimal paths (deep skips) at the paper's ladder.
        let paths: Vec<PathConfig> = efforts
            .iter()
            .map(|&e| {
                pivot_core::select_optimal_path(e, &family.artifacts.cka)
                    .optimal
                    .path
            })
            .collect();
        let cost = model.all_efforts_cost(&repro.sim, &family.geometry, &paths);
        table.row_owned(vec![
            family.label.clone(),
            format!("{}..={}", efforts[0], efforts[efforts.len() - 1]),
            format!("{cost:.2} of scratch"),
        ]);
        out.push((family.label.clone(), cost));
    }
    table.print();
    out
}

/// One LEC point of Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct LecPoint {
    /// LEC as a fraction.
    pub lec: f64,
    /// Combination EDP (J*ms).
    pub edp: f64,
    /// Test accuracy of the cascade.
    pub accuracy: f64,
    /// EDP split `(low, high, overhead)`.
    pub edp_split: (f64, f64, f64),
}

/// Fig. 8: effect of the LEC constraint on EDP and accuracy for the
/// PVDS-50 effort pair, plus the EDP decomposition into low-effort,
/// high-effort and re-computation overhead.
///
/// Paper: LEC 70-80 gives the best trade-off; LEC 100 minimizes EDP but
/// costs accuracy.
pub fn fig8(repro: &Reproduction) -> Vec<LecPoint> {
    println!("\n=== Fig. 8: LEC vs EDP and accuracy (PVDS effort pair) ===");
    println!("paper: best tradeoff at LEC 70-80; LEC 100 lowest EDP, worst accuracy\n");
    let family = &repro.deit;
    let pvds = super::pvds50(repro);
    let low = family
        .efforts()
        .iter()
        .find(|e| e.effort == pvds.low_effort)
        .expect("low effort");
    let high = family
        .efforts()
        .iter()
        .find(|e| e.effort == pvds.high_effort)
        .expect("high effort");

    // Evaluate on the test set so accuracy is honest.
    let search = Phase2Search::new(
        &repro.sim,
        &family.geometry,
        family.efforts(),
        &repro.dataset.test,
    );
    let mut out = Vec::new();
    let mut table = Table::new(&[
        "LEC (%)",
        "Th",
        "F_L",
        "EDP (Jxms)",
        "Accuracy (%)",
        "EDP low",
        "EDP high",
        "EDP overhead",
    ]);
    for lec in [0.6, 0.7, 0.8, 0.9, 1.0] {
        let cfg = Phase2Config {
            lec,
            delay_constraint_ms: f64::INFINITY,
            delay_tolerance: 0.0,
            threshold_step: 0.02,
        };
        let result = search
            .evaluate_pair(low, high, &cfg, f64::INFINITY)
            .expect("no delay gate");
        let (el, eh, eo) = result.perf.edp_split();
        table.row_owned(vec![
            format!("{:.0}", lec * 100.0),
            format!("{:.2}", result.threshold),
            format!("{:.2}", result.stats.f_low()),
            format!("{:.2}", result.perf.edp()),
            format!("{:.1}", result.stats.accuracy() * 100.0),
            format!("{el:.2}"),
            format!("{eh:.2}"),
            format!("{eo:.2}"),
        ]);
        out.push(LecPoint {
            lec,
            edp: result.perf.edp(),
            accuracy: result.stats.accuracy(),
            edp_split: (el, eh, eo),
        });
    }
    table.print();
    out
}

/// Fig. 9: the effort combinations Phase 2 samples at different delay
/// constraints, with their path diagrams. Returns
/// `(delay target, low effort, high effort, mean skipped index of the low
/// path)` per feasible target.
pub fn fig9(repro: &Reproduction) -> Vec<(f64, usize, usize, f64)> {
    println!("\n=== Fig. 9: PVDS ViTs sampled at different delay constraints ===");
    println!("paper: lower delay targets -> fewer active attentions; skips sit deep\n");
    let family = &repro.deit;
    let mut out = Vec::new();
    let mut table = Table::new(&["Target (ms)", "Efforts", "Low path", "High path", "F_L"]);
    for target in [58.0, 52.0, 46.0, 40.0, 35.0] {
        match phase2_at(repro, family, target, 0.7) {
            Some(r) => {
                let skipped = r.low_path.skipped();
                let mean_skip = if skipped.is_empty() {
                    0.0
                } else {
                    skipped.iter().map(|&i| i as f64).sum::<f64>() / skipped.len() as f64
                };
                table.row_owned(vec![
                    format!("{target:.0}"),
                    format!("[{}, {}]", r.low_effort, r.high_effort),
                    r.low_path.to_string(),
                    r.high_path.to_string(),
                    format!("{:.2}", r.stats.f_low()),
                ]);
                out.push((target, r.low_effort, r.high_effort, mean_skip));
            }
            None => {
                table.row_owned(vec![format!("{target:.0}"), "infeasible".into()]);
            }
        }
    }
    table.print();
    out
}
