//! Serving under difficulty drift: static vs adaptive gate thresholds.
//!
//! Phase 2 picks the entropy threshold `Th` offline, on a calibration set
//! whose difficulty mix is assumed stationary. Production traffic drifts:
//! when inputs harden, low-effort entropies rise, fewer requests stay
//! below the frozen `Th`, and the realized `F_L` collapses under the LEC
//! the operating point was chosen for — every lost low exit is a full
//! high-effort re-run, so energy-per-request climbs exactly when the
//! fleet is busiest. This experiment measures that failure and the
//! [`ThresholdController`](pivot_serve::ThresholdController) fix on
//! deterministic drift schedules from `pivot-data`:
//!
//! * **static** — `Th` calibrated once on the stream's first
//!   [`CALIBRATION`] requests (exactly Phase 2's
//!   `CascadeCache::threshold_reaching`), then frozen.
//! * **adaptive** — same starting point, but a sliding window of observed
//!   low-effort entropies retunes `Th` after every batch to hold
//!   `F_L >= LEC` (DESIGN.md §7).
//!
//! Both policies replay the *same* request stream through a
//! [`ReplayEngine`] on a manual clock, so each trajectory is a pure
//! function of (ladder, schedule, seed). Hardware cost comes from the
//! cycle-accurate simulator: the tiny functional ladder (1 of 4
//! attention layers active vs all 4) maps onto DeiT-S as a 3-of-12 vs
//! 12-of-12 attention mask on the ZCU102 config, so a level-1 exit is
//! charged the paper's re-computation overhead `E_L + E_H`
//! ([`LadderEnergy`]). The headline `ramp` scenario hardens 0.05 → 0.95;
//! the acceptance bar is the issue's: adaptive back-half `F_L` within
//! ±5% of the LEC while static degrades ≥ 15%, at equal or better
//! energy-per-request. Writes `BENCH_drift.json`.

use crate::Table;
use pivot_core::{CascadeCache, Parallelism};
use pivot_data::{Dataset, DatasetConfig, DriftSchedule, Sample};
use pivot_serve::{ChaosConfig, ReplayEngine, ServeConfig, ThresholdPolicy};
use pivot_sim::{AcceleratorConfig, EnergyLedger, LadderEnergy, Simulator, VitGeometry};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{PreparedModel, TrainConfig, Trainer, VisionTransformer, VitConfig};
use std::time::Duration;

/// The low-exit constraint every scenario targets.
pub const LEC: f64 = 0.5;
/// Threshold sweep granularity (shared by calibration and the online
/// controller, so a stationary mix converges bitwise).
pub const STEP: f32 = 0.01;
/// Requests per replay batch (one control tick per batch).
pub const BATCH: usize = 16;
/// Sliding-window size of the online controller.
pub const WINDOW: usize = 256;
/// Leading requests used to calibrate the static threshold.
pub const CALIBRATION: usize = 128;

/// One threshold policy's measured trajectory over a drift scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPolicyRun {
    /// `static` or `adaptive`.
    pub policy: &'static str,
    /// Level-0 exit fraction over the whole stream.
    pub f_low: f64,
    /// Level-0 exit fraction over the back half of the stream — the
    /// region the drift has moved away from the calibration mix.
    pub back_f_low: f64,
    /// Simulated mean energy per request, joules.
    pub mean_energy_j: f64,
    /// Simulated mean delay per request, ms.
    pub mean_delay_ms: f64,
    /// Gate threshold in force after the last batch.
    pub final_th: f32,
    /// Controller retunes applied (0 for the static policy).
    pub retunes: u64,
    /// Whether the health ledger balanced at drain.
    pub accounted: bool,
}

/// Static-vs-adaptive comparison on one drift schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScenario {
    /// Schedule name (`ramp` / `step` / `sinusoid` / `regimes` /
    /// `stationary`).
    pub name: &'static str,
    /// Requests replayed per policy.
    pub requests: usize,
    /// The calibrated (Phase 2-style) threshold both policies start from.
    pub static_th: f32,
    /// The frozen-threshold run.
    pub static_run: DriftPolicyRun,
    /// The controller-driven run.
    pub adaptive_run: DriftPolicyRun,
}

impl DriftScenario {
    /// Relative back-half `F_L` shortfall of a run against the LEC:
    /// `(LEC - back_f_low) / LEC`. Positive means the constraint is
    /// violated; the issue's bar is static ≥ 0.15 while adaptive stays
    /// within ±0.05 on the headline ramp.
    pub fn back_shortfall(run: &DriftPolicyRun) -> f64 {
        (LEC - run.back_f_low) / LEC
    }
}

/// Full report: one scenario per drift schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftBench {
    /// The shared low-exit constraint.
    pub lec: f64,
    /// Scenarios in run order (`ramp` first — the headline).
    pub scenarios: Vec<DriftScenario>,
}

impl DriftBench {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> &DriftScenario {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no scenario named {name}"))
    }

    /// Serializes the report as a JSON array (for `BENCH_drift.json`).
    pub fn to_json(&self) -> String {
        fn run(r: &DriftPolicyRun) -> String {
            format!(
                "{{\"f_low\": {:.4}, \"back_f_low\": {:.4}, \
                 \"mean_energy_j\": {:.6}, \"mean_delay_ms\": {:.4}, \
                 \"final_th\": {:.3}, \"retunes\": {}, \"accounted\": {}}}",
                r.f_low,
                r.back_f_low,
                r.mean_energy_j,
                r.mean_delay_ms,
                r.final_th,
                r.retunes,
                r.accounted,
            )
        }
        let mut out = String::from("[\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"scenario\": \"{}\", \"requests\": {}, \"lec\": {:.2}, \
                 \"static_th\": {:.3}, \"static\": {}, \"adaptive\": {}}}{}\n",
                s.name,
                s.requests,
                self.lec,
                s.static_th,
                run(&s.static_run),
                run(&s.adaptive_run),
                if i + 1 == self.scenarios.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Trains the two-level ladder whose low-effort entropy actually tracks
/// input difficulty (untrained weights gate on noise): 1-of-4 attentions
/// vs all 4, distilled from nothing — plain supervised training on the
/// full-difficulty-range stripe set.
fn trained_ladder(dcfg: &DatasetConfig) -> Vec<PreparedModel> {
    let data = Dataset::generate(dcfg, 42);
    let train = |weights_seed: u64, active: &[usize], train_seed: u64| {
        let mut model =
            VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(weights_seed));
        model.set_active_attentions(active);
        Trainer::new(TrainConfig {
            epochs: 24,
            batch_size: 16,
            lr: 2e-3,
            distill_weight: 0.0,
            entropy_weight: 0.0,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: train_seed,
        })
        .train(&mut model, None, &data);
        model.prepare()
    };
    vec![train(7, &[0], 3), train(8, &[0, 1, 2, 3], 4)]
}

/// The simulated hardware cost table the functional ladder maps onto:
/// DeiT-S on the ZCU102, low effort = 3 of 12 attention layers (the same
/// 1-in-4 ratio as the functional models), high effort = all 12.
fn energy_ladder() -> LadderEnergy {
    let sim = Simulator::new(AcceleratorConfig::zcu102());
    let geom = VitGeometry::deit_s();
    let low: Vec<bool> = (0..geom.depth).map(|i| i < geom.depth / 4).collect();
    let high = vec![true; geom.depth];
    LadderEnergy::from_masks(&sim, &geom, &[low, high])
}

/// Replays `stream` through one policy and folds exits into the energy
/// ledger. `adaptive` is `None` for the frozen-threshold baseline.
fn run_policy(
    policy: &'static str,
    levels: Vec<PreparedModel>,
    static_th: f32,
    adaptive: Option<ThresholdPolicy>,
    stream: &[Sample],
    costs: &LadderEnergy,
) -> DriftPolicyRun {
    let config = ServeConfig {
        parallelism: Parallelism::Off,
        threshold: adaptive,
        ..ServeConfig::default()
    };
    let mut eng = ReplayEngine::new(levels, vec![static_th], config, ChaosConfig::default());
    let mut ledger = EnergyLedger::new();
    let half = stream.len() / 2;
    let (mut back_low, mut back_total, mut seen) = (0u64, 0u64, 0usize);
    for chunk in stream.chunks(BATCH) {
        let images: Vec<Matrix> = chunk.iter().map(|s| s.image.clone()).collect();
        let responses = eng.process(&images, Duration::from_secs(60));
        eng.clock().advance(Duration::from_millis(1));
        for r in &responses {
            let served = r
                .outcome
                .served()
                .expect("healthy unloaded replay serves every request");
            ledger.charge(costs, served.level);
            if seen >= half {
                back_total += 1;
                if served.level == 0 {
                    back_low += 1;
                }
            }
            seen += 1;
        }
    }
    let h = eng.health();
    DriftPolicyRun {
        policy,
        f_low: ledger.f_low(),
        back_f_low: back_low as f64 / back_total.max(1) as f64,
        mean_energy_j: ledger.mean_energy_j(),
        mean_delay_ms: ledger.mean_delay_ms(),
        final_th: h.threshold,
        retunes: h.retunes,
        accounted: h.accounted(),
    }
}

/// Runs one schedule: generate the stream, calibrate the static threshold
/// on its head, then replay both policies over identical requests.
fn run_scenario(
    name: &'static str,
    dcfg: &DatasetConfig,
    levels: &[PreparedModel],
    costs: &LadderEnergy,
    schedule: &DriftSchedule,
    n: usize,
    seed: u64,
) -> DriftScenario {
    let stream = Dataset::generate_drift(dcfg, schedule, n, seed);
    let calib = CALIBRATION.min(n);
    let cache = CascadeCache::build_prepared(&levels[0], &stream[..calib], Parallelism::Off);
    let static_th = cache.threshold_reaching(LEC, STEP);

    let policy = ThresholdPolicy {
        lec: LEC,
        window: WINDOW,
        tick_batches: 1,
        min_fill: BATCH,
        step: STEP,
        floor: 0.0,
        ceil: 1.0,
    };
    let static_run = run_policy("static", levels.to_vec(), static_th, None, &stream, costs);
    let adaptive_run = run_policy(
        "adaptive",
        levels.to_vec(),
        static_th,
        Some(policy),
        &stream,
        costs,
    );
    DriftScenario {
        name,
        requests: n,
        static_th,
        static_run,
        adaptive_run,
    }
}

/// Runs the drift benchmark: trains the ladder once, then replays every
/// drift schedule under both threshold policies and prints the
/// comparison. `smoke` shrinks the stream and skips the secondary
/// schedules for CI.
pub fn drift_bench(smoke: bool) -> DriftBench {
    println!("\n=== Serving under difficulty drift (static vs adaptive Th) ===");
    let dcfg = DatasetConfig {
        classes: 4,
        image_size: 16,
        train_per_class: 50,
        test_per_class: 10,
        difficulty: (0.0, 1.0),
    };
    let levels = trained_ladder(&dcfg);
    let costs = energy_ladder();
    println!(
        "ladder (DeiT-S on ZCU102): low {:.4} J / {:.2} ms, escalation {:.4} J / {:.2} ms per request",
        costs.request_energy_j(0),
        costs.request_delay_ms(0),
        costs.request_energy_j(1),
        costs.request_delay_ms(1),
    );

    let n = if smoke { 480 } else { 1280 };
    let hardening = DriftSchedule::Ramp {
        from: 0.05,
        to: 0.95,
        start: 0.0,
        end: 1.0,
    };
    let mut scenarios = vec![
        run_scenario("ramp", &dcfg, &levels, &costs, &hardening, n, 70),
        run_scenario(
            "stationary",
            &dcfg,
            &levels,
            &costs,
            &DriftSchedule::Stationary { difficulty: 0.5 },
            n,
            74,
        ),
    ];
    if !smoke {
        scenarios.push(run_scenario(
            "step",
            &dcfg,
            &levels,
            &costs,
            &DriftSchedule::Step {
                before: 0.2,
                after: 0.8,
                at: 0.5,
            },
            n,
            71,
        ));
        scenarios.push(run_scenario(
            "sinusoid",
            &dcfg,
            &levels,
            &costs,
            &DriftSchedule::Sinusoid {
                base: 0.5,
                amplitude: 0.4,
                periods: 2.0,
            },
            n,
            72,
        ));
        scenarios.push(run_scenario(
            "regimes",
            &dcfg,
            &levels,
            &costs,
            &DriftSchedule::RegimeSwitch {
                difficulties: vec![0.1, 0.8, 0.3, 0.9],
                dwell: 0.25,
            },
            n,
            73,
        ));
    }
    let report = DriftBench {
        lec: LEC,
        scenarios,
    };

    let mut table = Table::new(&[
        "Schedule",
        "Policy",
        "Th (final)",
        "F_L",
        "F_L (back half)",
        "E/req (J)",
        "Delay (ms)",
        "Retunes",
        "Ledger",
    ]);
    for s in &report.scenarios {
        for r in [&s.static_run, &s.adaptive_run] {
            table.row_owned(vec![
                s.name.to_string(),
                r.policy.to_string(),
                format!("{:.3}", r.final_th),
                format!("{:.3}", r.f_low),
                format!("{:.3}", r.back_f_low),
                format!("{:.4}", r.mean_energy_j),
                format!("{:.2}", r.mean_delay_ms),
                format!("{}", r.retunes),
                if r.accounted { "balanced" } else { "LEAKED" }.to_string(),
            ]);
        }
    }
    println!("{table}");
    let ramp = report.scenario("ramp");
    println!(
        "ramp (hardening 0.05->0.95, LEC {:.2}): static Th {:.3} collapses to back-half F_L {:.3} \
         ({:.0}% under target); adaptive holds {:.3} at {:.4} J/req vs {:.4} J/req static",
        LEC,
        ramp.static_th,
        ramp.static_run.back_f_low,
        DriftScenario::back_shortfall(&ramp.static_run) * 100.0,
        ramp.adaptive_run.back_f_low,
        ramp.adaptive_run.mean_energy_j,
        ramp.static_run.mean_energy_j,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The issue's acceptance bar, end to end and deterministic: under
    /// the hardening ramp the adaptive controller holds the back-half
    /// `F_L` within ±5% of the LEC while the frozen threshold degrades
    /// at least 15%, at equal-or-better energy per request — and the
    /// stationary control shows the adaptive policy changes nothing when
    /// there is no drift to chase. Runs the full-size streams: the whole
    /// replay is a ServeClock-scripted pure function, so the numbers
    /// asserted here are the numbers `BENCH_drift.json` reports.
    #[test]
    fn drift_bench_meets_the_acceptance_bar() {
        let report = drift_bench(false);
        for s in &report.scenarios {
            assert!(s.static_run.accounted, "{}: static ledger leaked", s.name);
            assert!(
                s.adaptive_run.accounted,
                "{}: adaptive ledger leaked",
                s.name
            );
            assert_eq!(s.static_run.retunes, 0, "static policy never retunes");
            assert_eq!(
                s.static_run.final_th, s.static_th,
                "static Th must stay frozen"
            );
        }

        let ramp = report.scenario("ramp");
        assert!(
            DriftScenario::back_shortfall(&ramp.static_run) >= 0.15,
            "static Th must visibly collapse under hardening drift, got back F_L {:.3}",
            ramp.static_run.back_f_low
        );
        assert!(
            DriftScenario::back_shortfall(&ramp.adaptive_run).abs() <= 0.05,
            "adaptive back F_L {:.3} outside +/-5% of LEC {LEC}",
            ramp.adaptive_run.back_f_low
        );
        assert!(
            ramp.adaptive_run.retunes > 0,
            "the controller must actually retune under drift"
        );
        assert!(
            ramp.adaptive_run.final_th > ramp.static_th,
            "hardening inputs must push the gate up"
        );
        assert!(
            ramp.adaptive_run.mean_energy_j <= ramp.static_run.mean_energy_j,
            "holding F_L must not cost energy: adaptive {:.4} J vs static {:.4} J",
            ramp.adaptive_run.mean_energy_j,
            ramp.static_run.mean_energy_j
        );

        // No drift, nothing to chase: the adaptive policy stays near the
        // calibrated point and matches the static baseline's F_L.
        let flat = report.scenario("stationary");
        assert!(
            (flat.adaptive_run.final_th - flat.static_th).abs() <= 4.0 * STEP + 1e-6,
            "stationary adaptive Th {:.3} wandered from calibrated {:.3}",
            flat.adaptive_run.final_th,
            flat.static_th
        );
        assert!(
            (flat.adaptive_run.back_f_low - flat.static_run.back_f_low).abs() <= 0.1,
            "stationary policies must agree: adaptive {:.3} vs static {:.3}",
            flat.adaptive_run.back_f_low,
            flat.static_run.back_f_low
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let run = |policy, th| DriftPolicyRun {
            policy,
            f_low: 0.5,
            back_f_low: 0.5,
            mean_energy_j: 0.1,
            mean_delay_ms: 25.0,
            final_th: th,
            retunes: if policy == "adaptive" { 7 } else { 0 },
            accounted: true,
        };
        let report = DriftBench {
            lec: LEC,
            scenarios: vec![DriftScenario {
                name: "ramp",
                requests: 480,
                static_th: 0.43,
                static_run: run("static", 0.43),
                adaptive_run: run("adaptive", 0.51),
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"scenario\": \"ramp\""));
        assert!(json.contains("\"static_th\": 0.430"));
        assert!(json.contains("\"retunes\": 7"));
        assert!(json.trim_end().ends_with(']'));
    }
}
