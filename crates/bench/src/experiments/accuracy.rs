//! Tables 2, 3 and 4: end-to-end performance and prior-work comparison.

use super::{cascade_test_accuracy, phase2_at};
use crate::harness::{FamilyArtifacts, Reproduction};
use crate::Table;
use pivot_baselines::{HeatVit, HeatVitConfig, VitCod};

/// One row of Table 2/3.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortTableRow {
    /// Row label (e.g. `"PVDS-50"`).
    pub label: String,
    /// Per-image energy (J).
    pub energy_j: f64,
    /// Per-image delay (ms).
    pub delay_ms: f64,
    /// Average power (W).
    pub power_w: f64,
    /// Energy-delay product (J*ms).
    pub edp: f64,
    /// FPS per watt.
    pub fps_per_w: f64,
    /// Test accuracy (fraction).
    pub accuracy: f64,
}

fn effort_table(
    repro: &Reproduction,
    family: &FamilyArtifacts,
    prefix: &str,
    targets: &[(f64, f64)],
) -> Vec<EffortTableRow> {
    let depth = family.geometry.depth;
    let base = repro.sim.simulate(&family.geometry, &vec![true; depth]);
    let base_acc = family.artifacts.teacher.accuracy(&repro.dataset.test) as f64;
    let mut rows = vec![EffortTableRow {
        label: family.label.clone(),
        energy_j: base.energy_j(),
        delay_ms: base.delay_ms,
        power_w: base.power_w(),
        edp: base.edp(),
        fps_per_w: base.fps_per_w(),
        accuracy: base_acc,
    }];
    for &(target, lec) in targets {
        match phase2_at(repro, family, target, lec) {
            Some(result) => {
                let acc = cascade_test_accuracy(repro, family, &result);
                rows.push(EffortTableRow {
                    label: format!(
                        "{prefix}-{} [E{}+E{}, Th {:.2}, F_L {:.2}]",
                        target as u32,
                        result.low_effort,
                        result.high_effort,
                        result.threshold,
                        result.stats.f_low()
                    ),
                    energy_j: result.perf.energy_j(),
                    delay_ms: result.perf.delay_ms,
                    power_w: result.perf.power_w(),
                    edp: result.perf.edp(),
                    fps_per_w: result.perf.fps_per_w(),
                    accuracy: acc,
                });
            }
            None => println!("  (delay target {target} ms infeasible with this effort ladder)"),
        }
    }
    rows
}

fn print_effort_table(rows: &[EffortTableRow]) {
    let base = &rows[0];
    let mut table = Table::new(&[
        "Model",
        "Energy (J)",
        "Delay (ms)",
        "Power (W)",
        "EDP (Jxms)",
        "FPS/W",
        "Accuracy (%)",
    ]);
    for r in rows {
        table.row_owned(vec![
            r.label.clone(),
            format!("{:.3} ({:.2}x)", r.energy_j, base.energy_j / r.energy_j),
            format!("{:.2} ({:.2}x)", r.delay_ms, base.delay_ms / r.delay_ms),
            format!("{:.2}", r.power_w),
            format!("{:.2} ({:.2}x)", r.edp, base.edp / r.edp),
            format!("{:.2} ({:.2}x)", r.fps_per_w, r.fps_per_w / base.fps_per_w),
            format!("{:.1}", r.accuracy * 100.0),
        ]);
    }
    table.print();
}

/// Table 2: DeiT-S vs PVDS-50 / PVDS-35.
///
/// Paper: PVDS-50 = 1.73x lower EDP at -0.4% accuracy; PVDS-35 = 2.6x
/// lower EDP at -1.6%.
pub fn table2(repro: &Reproduction) -> Vec<EffortTableRow> {
    println!("\n=== Table 2: DeiT-S vs PIVOT-optimized DeiT-S ===");
    println!("paper: PVDS-50 EDP 1.73x lower @ -0.4% acc; PVDS-35 EDP 2.6x lower @ -1.6%\n");
    let rows = effort_table(repro, &repro.deit, "PVDS", &[(50.0, 0.8), (35.0, 0.8)]);
    print_effort_table(&rows);
    rows
}

/// Table 3: LVViT-S vs PVLS-50 / PVLS-35.
///
/// Paper: PVLS-50 = 2.7x lower EDP at -0.2% accuracy; PVLS-35 = 4.5x lower
/// EDP at -1.7% (the 36.5 ms point needs a high LEC, like the paper's
/// LEC-90 analysis).
pub fn table3(repro: &Reproduction) -> Vec<EffortTableRow> {
    println!("\n=== Table 3: LVViT-S vs PIVOT-optimized LVViT-S ===");
    println!("paper: PVLS-50 EDP 2.7x lower @ -0.2% acc; PVLS-35 EDP 4.5x lower @ -1.7%\n");
    let rows = effort_table(repro, &repro.lvvit, "PVLS", &[(50.0, 0.8), (36.5, 0.9)]);
    print_effort_table(&rows);
    rows
}

/// One comparison row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Method name.
    pub method: String,
    /// Effort-modulation style.
    pub modulation: &'static str,
    /// Prediction mechanism.
    pub mechanism: &'static str,
    /// Test accuracy (fraction).
    pub accuracy: f64,
    /// Whether the method speeds up on general-purpose platforms.
    pub gpp_compatible: bool,
}

/// Table 4: PIVOT vs ViTCOD vs HeatViT on the DeiT-S backbone.
///
/// Paper accuracies: ViTCOD 78.1%, HeatViT 79.1%, PIVOT 79.4% (ImageNet).
/// Here the same three mechanisms run on the trained tiny stand-in and the
/// synthetic test set; the *ordering* is the reproduced claim.
pub fn table4(repro: &Reproduction) -> Vec<ComparisonRow> {
    println!("\n=== Table 4: comparison with ViTCOD and HeatViT ===");
    println!("paper: ViTCOD 78.1% < HeatViT 79.1% < PIVOT 79.4%; only PIVOT is GPP-compatible\n");
    let teacher = &repro.deit.artifacts.teacher;
    let test = &repro.dataset.test;

    let vitcod = VitCod::new(0.9);
    let vitcod_acc = vitcod.accuracy(teacher, test) as f64;

    let heatvit = HeatVit::new(HeatVitConfig::deit_s(), teacher.config().depth);
    let heatvit_correct = test
        .iter()
        .filter(|s| heatvit.infer(teacher, &s.image).row_argmax(0) == s.label)
        .count();
    let heatvit_acc = heatvit_correct as f64 / test.len() as f64;

    let pvds = super::pvds50(repro);
    let pivot_acc = cascade_test_accuracy(repro, &repro.deit, &pvds);

    let rows = vec![
        ComparisonRow {
            method: "ViTCOD".into(),
            modulation: "Constant",
            mechanism: "Norm score (90% attn sparsity)",
            accuracy: vitcod_acc,
            gpp_compatible: false,
        },
        ComparisonRow {
            method: "HeatViT".into(),
            modulation: "Constant",
            mechanism: "Head-level token score + packaging",
            accuracy: heatvit_acc,
            gpp_compatible: false,
        },
        ComparisonRow {
            method: "PIVOT (ours)".into(),
            modulation: "Input-aware",
            mechanism: "Entropy metric",
            accuracy: pivot_acc,
            gpp_compatible: true,
        },
    ];

    let mut table = Table::new(&[
        "Work",
        "Effort Modulation",
        "Prediction Mechanism",
        "Accuracy (%)",
        "GPP Compatible",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.method.clone(),
            r.modulation.to_string(),
            r.mechanism.to_string(),
            format!("{:.1}", r.accuracy * 100.0),
            if r.gpp_compatible {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.print();
    rows
}
