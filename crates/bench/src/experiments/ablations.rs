//! Ablations beyond the paper's figures (DESIGN.md §9): they quantify each
//! design choice PIVOT makes — CKA-guided path selection, the entropy
//! regularizer, the input-aware gate, the input-stationary dataflow, the
//! two-level ladder and the 8-bit deployment numerics.

use super::pvds50;
use crate::harness::Reproduction;
use crate::Table;
use pivot_core::{EffortLadder, MultiEffortVit, PathConfig};
use pivot_nn::{normalized_entropy, QuantMode};
use pivot_sim::{AcceleratorConfig, Dataflow, Simulator, VitGeometry};
use pivot_vit::{TrainConfig, Trainer};

/// Ablation 1: optimal vs median vs worst path at a fixed effort, each
/// fine-tuned identically. Quantifies what Algorithm 1 buys.
/// Returns `(best, median, worst)` accuracies.
pub fn ablation_path_selection(repro: &Reproduction, effort: usize) -> (f64, f64, f64) {
    println!("\n=== Ablation: CKA path selection vs random/worst (effort {effort}) ===");
    let family = &repro.deit;
    let ranked = pivot_core::select_optimal_path(effort, &family.artifacts.cka).ranked;
    let teacher = &family.artifacts.teacher;
    let eval: Vec<_> = repro.dataset.test.to_vec();

    let finetune = |path: &PathConfig| -> f64 {
        let mut student = teacher.clone();
        student.set_active_attentions(path.active());
        Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
            distill_weight: 0.5,
            entropy_weight: 0.0,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: 55,
        })
        .train(&mut student, Some(teacher), &repro.dataset);
        student.accuracy(&eval) as f64
    };

    let best = finetune(&ranked.first().expect("paths").path);
    let median = finetune(&ranked[ranked.len() / 2].path);
    let worst = finetune(&ranked.last().expect("paths").path);

    let mut table = Table::new(&["Path choice", "Score S", "Accuracy (%)"]);
    table.row_owned(vec![
        "optimal (Algorithm 1)".into(),
        format!("{:.3}", ranked.first().expect("paths").score),
        format!("{:.1}", best * 100.0),
    ]);
    table.row_owned(vec![
        "median".into(),
        format!("{:.3}", ranked[ranked.len() / 2].score),
        format!("{:.1}", median * 100.0),
    ]);
    table.row_owned(vec![
        "worst".into(),
        format!("{:.3}", ranked.last().expect("paths").score),
        format!("{:.1}", worst * 100.0),
    ]);
    table.print();
    (best, median, worst)
}

/// Ablation 2: the entropy regularizer `L_En`. Fine-tunes the low-effort
/// model with and without `L_En` and compares the mean test entropy and
/// the low-exit fraction `F_L` at a fixed threshold.
/// Returns `((entropy_with, f_low_with), (entropy_without, f_low_without))`.
pub fn ablation_entropy_regularizer(repro: &Reproduction) -> ((f64, f64), (f64, f64)) {
    println!("\n=== Ablation: entropy regularizer L_En on/off ===");
    let family = &repro.deit;
    let teacher = &family.artifacts.teacher;
    let low = family.efforts().first().expect("efforts");
    let threshold = 0.6f32;

    let run = |entropy_weight: f32| -> (f64, f64) {
        let mut model = teacher.clone();
        model.set_active_attentions(low.path.active());
        Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            distill_weight: 0.5,
            entropy_weight,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: 66,
        })
        .train(&mut model, Some(teacher), &repro.dataset);
        let mut total_entropy = 0.0f64;
        let mut below = 0usize;
        for s in &repro.dataset.test {
            let e = normalized_entropy(&model.infer(&s.image));
            total_entropy += e as f64;
            below += (e < threshold) as usize;
        }
        let n = repro.dataset.test.len();
        (total_entropy / n as f64, below as f64 / n as f64)
    };

    let with_len = run(0.2);
    let without = run(0.0);
    let mut table = Table::new(&["Config", "Mean entropy", &format!("F_L @ Th={threshold}")]);
    table.row_owned(vec![
        "with L_En".into(),
        format!("{:.3}", with_len.0),
        format!("{:.2}", with_len.1),
    ]);
    table.row_owned(vec![
        "without L_En".into(),
        format!("{:.3}", without.0),
        format!("{:.2}", without.1),
    ]);
    table.print();
    println!("L_En should lower entropy and raise F_L (more low-effort exits).");
    (with_len, without)
}

/// Ablation 3: gating policies on the PVDS-50 pair — entropy gate (PIVOT),
/// ground-truth-difficulty oracle, always-low and always-high.
/// Returns `(policy, accuracy, mean_efforts)` rows.
pub fn ablation_gating(repro: &Reproduction) -> Vec<(String, f64, f64)> {
    println!("\n=== Ablation: entropy gate vs difficulty oracle vs static ===");
    let family = &repro.deit;
    let pvds = pvds50(repro);
    let low = family
        .efforts()
        .iter()
        .find(|e| e.effort == pvds.low_effort)
        .expect("low effort");
    let high = family
        .efforts()
        .iter()
        .find(|e| e.effort == pvds.high_effort)
        .expect("high effort");
    let cascade = MultiEffortVit::new(low.model.clone(), high.model.clone(), pvds.threshold);
    let test = &repro.dataset.test;

    let entropy_stats = cascade.evaluate(test);
    // Oracle threshold chosen so its F_L matches the entropy gate's.
    let mut difficulties: Vec<f32> = test.iter().map(|s| s.difficulty).collect();
    difficulties.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((entropy_stats.f_low() * test.len() as f64) as usize).min(test.len() - 1);
    let oracle_threshold = difficulties[idx];
    let oracle_stats = cascade.evaluate_with_oracle(test, oracle_threshold);

    let low_acc = low.model.accuracy(test) as f64;
    let high_acc = high.model.accuracy(test) as f64;

    let rows = vec![
        (
            format!("entropy gate (Th {:.2})", pvds.threshold),
            entropy_stats.accuracy(),
            1.0 + entropy_stats.f_high(),
        ),
        (
            format!("difficulty oracle (d < {oracle_threshold:.2})"),
            oracle_stats.accuracy(),
            1.0 + oracle_stats.f_high(),
        ),
        (format!("always low (E{})", low.effort), low_acc, 1.0),
        (format!("always high (E{})", high.effort), high_acc, 1.0),
    ];
    let mut table = Table::new(&["Policy", "Accuracy (%)", "Inferences/input"]);
    for (name, acc, cost) in &rows {
        table.row_owned(vec![
            name.clone(),
            format!("{:.1}", acc * 100.0),
            format!("{cost:.2}"),
        ]);
    }
    table.print();
    rows
}

/// Ablation 4: systolic dataflow choice on the ZCU102 (the paper fixes
/// input stationary; this shows it is the right call for ViT shapes).
/// Returns `(dataflow name, DeiT-S delay ms)`.
pub fn ablation_dataflow() -> Vec<(&'static str, f64)> {
    println!("\n=== Ablation: systolic dataflow (DeiT-S, 64x36 array) ===");
    let geom = VitGeometry::deit_s();
    let mut rows = Vec::new();
    let mut table = Table::new(&["Dataflow", "Delay (ms)", "EDP (Jxms)"]);
    for dataflow in [
        Dataflow::InputStationary,
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
    ] {
        let sim = Simulator::new(AcceleratorConfig {
            dataflow,
            ..AcceleratorConfig::zcu102()
        });
        let perf = sim.simulate(&geom, &[true; 12]);
        table.row_owned(vec![
            dataflow.name().into(),
            format!("{:.2}", perf.delay_ms),
            format!("{:.2}", perf.edp()),
        ]);
        rows.push((dataflow.name(), perf.delay_ms));
    }
    table.print();
    rows
}

/// Ablation 5: two-level cascade vs a three-level ladder at matched
/// accuracy targets. Returns `(name, accuracy, mean inferences)`.
pub fn ablation_ladder(repro: &Reproduction) -> Vec<(String, f64, f64)> {
    println!("\n=== Ablation: two-level cascade vs three-level ladder ===");
    let family = &repro.deit;
    let efforts = family.efforts();
    let low = &efforts[0];
    let mid = &efforts[efforts.len() / 2];
    let high = efforts.last().expect("efforts");
    let test = &repro.dataset.test;

    let two = EffortLadder::new(vec![low.model.clone(), high.model.clone()], vec![0.6]);
    let three = EffortLadder::new(
        vec![low.model.clone(), mid.model.clone(), high.model.clone()],
        vec![0.6, 0.75],
    );

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "Ladder",
        "Accuracy (%)",
        "Inferences/input",
        "Level fractions",
    ]);
    for (name, ladder) in [
        (format!("2-level [E{}, E{}]", low.effort, high.effort), two),
        (
            format!(
                "3-level [E{}, E{}, E{}]",
                low.effort, mid.effort, high.effort
            ),
            three,
        ),
    ] {
        let stats = ladder.evaluate(test);
        table.row_owned(vec![
            name.clone(),
            format!("{:.1}", stats.accuracy() * 100.0),
            format!("{:.2}", stats.mean_inferences()),
            format!(
                "{:?}",
                stats
                    .level_fractions()
                    .iter()
                    .map(|f| (f * 100.0).round() as i64)
                    .collect::<Vec<_>>()
            ),
        ]);
        rows.push((name, stats.accuracy(), stats.mean_inferences()));
    }
    table.print();
    rows
}

/// Ablation 6: 8-bit deployment numerics — accuracy of the trained teacher
/// in fp32 vs int8 fake-quant. Returns `(fp32, int8)`.
pub fn ablation_quantization(repro: &Reproduction) -> (f64, f64) {
    println!("\n=== Ablation: fp32 vs int8 deployment numerics ===");
    let test = &repro.dataset.test;
    let teacher = &repro.deit.artifacts.teacher;
    let fp32 = teacher.accuracy(test) as f64;
    let mut quantized = teacher.clone();
    quantized.set_quant_mode(QuantMode::Int8);
    let int8 = quantized.accuracy(test) as f64;
    let mut table = Table::new(&["Numerics", "Accuracy (%)"]);
    table.row_owned(vec!["fp32".into(), format!("{:.1}", fp32 * 100.0)]);
    table.row_owned(vec!["int8 weights".into(), format!("{:.1}", int8 * 100.0)]);
    table.print();
    println!("paper trains at 8-bit; the drop from weight fake-quant should be small.");
    (fp32, int8)
}
