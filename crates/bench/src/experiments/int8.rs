//! Packed-int8 inference vs. the fake-quant f32 reference path.
//!
//! Part of this reproduction's performance trajectory rather than a paper
//! figure. The paper deploys every effort 8-bit quantized (Section 4.1);
//! the fake-quant path realizes that grid in f32 arithmetic, while
//! [`pivot_vit::VisionTransformer::prepare_int8`] stores the *same* weight
//! grid as packed `i8` panels (a quarter of the bytes) and runs the
//! `i8×i8→i32` GEMM with per-layer requantization. This experiment
//! measures the end-to-end evaluation delta and asserts the numeric
//! contract the per-layer property tests pin:
//!
//! - int8 logits stay within [`INT8_LOGIT_TOL`] of the fake-quant
//!   reference (relative to each sample's logit magnitude),
//! - packed weights are exactly a quarter of the reference's bytes,
//! - int8 cascade predictions are argmax-identical to the fake-quant
//!   cascade on the full synthetic eval set (trained models: top-2
//!   margins dwarf the quantization noise).

use crate::Table;
use pivot_core::{
    batched_logits, CascadeCache, MultiEffortVit, Parallelism, PipelineConfig, PivotPipeline,
};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_tensor::Matrix;
use pivot_vit::{TrainConfig, VitConfig};
use std::time::Instant;

/// Documented logit tolerance of the int8 path relative to the fake-quant
/// reference: per-row activation quantization contributes up to one code
/// (~0.8% of the row's dynamic range) per GEMM, compounded across layers.
/// Empirically the deviation sits in the 2–6% range on the small
/// geometries — the exact value wobbles with the trained model, which
/// shifted when the f32 kernels moved to fused SIMD accumulation — so 8%
/// gives slack without masking a broken kernel (which deviates by O(100%)).
pub const INT8_LOGIT_TOL: f32 = 0.08;

/// Wall-clock and contract report for int8 vs. fake-quant evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Speedup {
    /// Samples in the timed evaluation sweep.
    pub n_samples: usize,
    /// Worker count used by both paths (`Parallelism::Auto`).
    pub workers: usize,
    /// One-off `prepare_int8` cost (ms) — included in [`Self::int8_ms`].
    pub prepare_ms: f64,
    /// Int8 batched evaluation (ms), *including* the one-off packing.
    pub int8_ms: f64,
    /// Fake-quant f32 batched evaluation (ms), including its `prepare`.
    pub fake_quant_ms: f64,
    /// Largest per-sample logit deviation over the fixed contract set,
    /// relative to the sample's logit magnitude (floored at 0.5 so
    /// near-zero logits don't blow it up).
    pub max_rel_diff: f32,
    /// f32 unique weight bytes over int8 unique weight bytes — must be 4.
    /// Unique (Arc-deduped) bytes, not per-view sums, so the claim stays
    /// about resident memory even when views share layers through a
    /// [`pivot_vit::PreparedStore`].
    pub weight_ratio: f64,
    /// Cascade predictions agreeing with the fake-quant cascade on the
    /// fixed synthetic eval set.
    pub cascade_agree: usize,
    /// Size of the cascade eval set.
    pub cascade_total: usize,
}

impl Int8Speedup {
    /// Fake-quant-over-int8 speedup (higher is better; the int8 side
    /// includes its packing cost).
    pub fn speedup(&self) -> f64 {
        self.fake_quant_ms / self.int8_ms.max(1e-9)
    }

    /// Whether every sample's logits stayed within [`INT8_LOGIT_TOL`].
    pub fn tolerance_ok(&self) -> bool {
        self.max_rel_diff <= INT8_LOGIT_TOL
    }

    /// Whether the int8 cascade predicted identically to the fake-quant
    /// cascade on every eval sample.
    pub fn argmax_identical(&self) -> bool {
        self.cascade_agree == self.cascade_total
    }
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// The synthetic eval set: difficulty stripes spanning the training
/// distribution (the pipeline trains on difficulty 0.0..0.8; harder
/// inputs drive the trained activations outside the range the per-row
/// activation fit was characterized on, which inflates relative logit
/// error without saying anything about the kernel).
fn eval_samples(n_samples: usize) -> Vec<Sample> {
    Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.1, 0.45, 0.8],
        n_samples.div_ceil(3),
        41,
    )
}

/// A fast training configuration around the test-small geometry: enough
/// epochs for real top-2 margins, seconds of wall clock.
fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        vit: VitConfig::test_small(),
        efforts: vec![1, 2, 4],
        teacher_train: TrainConfig {
            epochs: 24,
            batch_size: 16,
            lr: 2e-3,
            distill_weight: 0.0,
            entropy_weight: 0.0,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: 1,
        },
        finetune: TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 1e-3,
            distill_weight: 0.5,
            entropy_weight: 0.1,
            grad_clip: 1.0,
            warmup_fraction: 0.1,
            seed: 2,
        },
        cka_batch: 32,
        seed: 0,
    }
}

/// Largest `|int8 - reference|` across one sample's logits, relative to
/// the reference's magnitude (floored so near-zero rows stay meaningful).
fn rel_diff(int8: &Matrix, reference: &Matrix) -> f32 {
    let max_abs = reference
        .as_slice()
        .iter()
        .fold(0f32, |m, v| m.max(v.abs()))
        .max(0.5);
    int8.as_slice()
        .iter()
        .zip(reference.as_slice())
        .fold(0f32, |m, (a, b)| m.max((a - b).abs()))
        / max_abs
}

/// An escalation threshold placed mid-gap in the eval set's entropy
/// distribution.
///
/// A threshold sitting on top of some sample's gate entropy makes the
/// routing decision a knife edge: the int8 path's ~1e-2 entropy
/// perturbation flips which model answers, and the two models may
/// legitimately disagree — a divergence that says nothing about the
/// kernel. Centering the threshold in the widest entropy gap makes the
/// routing noise-stable, so any remaining prediction divergence is a real
/// argmax break.
fn noise_stable_threshold(entropies: &[f32]) -> f32 {
    let mut sorted: Vec<f32> = entropies
        .iter()
        .copied()
        .filter(|e| e.is_finite())
        .collect();
    sorted.sort_by(f32::total_cmp);
    sorted
        .windows(2)
        .max_by(|a, b| (a[1] - a[0]).total_cmp(&(b[1] - b[0])))
        .map(|w| ((w[0] + w[1]) / 2.0).clamp(0.0, 1.0))
        .unwrap_or(0.6)
}

/// Size of the fixed contract sets the numeric assertions run on. The
/// timing sweep scales with the caller's `n_samples`, but a contract over
/// "the worst sample in an arbitrarily large draw" is a statement about
/// the tail of the input distribution, not about the kernel — so the
/// tolerance and argmax checks run on fixed-seed, fixed-size sets that
/// are identical in smoke and full mode (and across machines: the AVX2
/// and scalar kernels are bit-identical).
const CONTRACT_SAMPLES: usize = 96;

/// Cascade eval samples per class (the full synthetic eval set has
/// `4 * CASCADE_EVAL_PER_CLASS` samples).
const CASCADE_EVAL_PER_CLASS: usize = 24;

/// Measures int8 vs. fake-quant batched evaluation of a *trained* cascade
/// over `n_samples` synthetic inputs and prints a report.
///
/// Trains the small pipeline first (seconds) so the cascade's argmax
/// check runs on models with real top-2 margins; untrained logits sit
/// inside the quantization noise and would make argmax identity
/// meaningless.
pub fn int8_speedup(n_samples: usize) -> Int8Speedup {
    println!("\n=== Packed int8 inference vs. fake-quant reference ===");
    let workers = Parallelism::Auto.workers(usize::MAX);
    println!("host parallelism: {workers} worker(s); {n_samples} samples\n");

    let data = Dataset::generate(
        &DatasetConfig {
            classes: 4,
            image_size: 16,
            train_per_class: 20,
            test_per_class: 8,
            difficulty: (0.0, 0.8),
        },
        3,
    );
    let artifacts = PivotPipeline::new(pipeline_config()).run(&data);
    let low = artifacts
        .efforts
        .first()
        .expect("pipeline efforts")
        .model
        .clone();
    let high = artifacts
        .efforts
        .last()
        .expect("pipeline efforts")
        .model
        .clone();

    let samples = eval_samples(n_samples);
    let samples = &samples[..n_samples.min(samples.len())];

    // Reference: fake-quant f32 prepared view.
    let (fq_prepare_ms, reference) = time_ms(|| high.prepare());
    let (fq_eval_ms, fq_logits) =
        time_ms(|| batched_logits(&reference, samples, Parallelism::Auto));
    let fake_quant_ms = fq_prepare_ms + fq_eval_ms;

    // Int8: packed panels, integer GEMM, per-layer requantization. The
    // packing is timed inside so the comparison is end-to-end honest.
    let (prepare_ms, prepared) = time_ms(|| high.prepare_int8());
    let (eval_ms, q_logits) = time_ms(|| batched_logits(&prepared, samples, Parallelism::Auto));
    let int8_ms = prepare_ms + eval_ms;
    assert_eq!(fq_logits.len(), q_logits.len());

    // Tolerance contract on the fixed contract set (the timed logits
    // above exercise the same kernels; the assertion set is pinned so the
    // documented tolerance is a property of the kernel, not of how many
    // samples the sweep happened to draw).
    let contract = eval_samples(CONTRACT_SAMPLES);
    let fq_contract = batched_logits(&reference, &contract, Parallelism::Auto);
    let q_contract = batched_logits(&prepared, &contract, Parallelism::Auto);
    let max_rel_diff = q_contract
        .iter()
        .zip(&fq_contract)
        .fold(0f32, |m, (q, r)| m.max(rel_diff(q, r)));
    let weight_ratio =
        reference.unique_weight_bytes() as f64 / prepared.unique_weight_bytes() as f64;

    // Cascade argmax identity over the full synthetic eval set — the
    // same distribution the pipeline trains on (the stripes above pin the
    // logit tolerance instead). The threshold is placed where routing is
    // stable under quantization noise, so a divergence here would be a
    // real argmax break, not a knife-edge routing flip.
    let eval = Dataset::generate(
        &DatasetConfig {
            classes: 4,
            image_size: 16,
            train_per_class: 1,
            test_per_class: CASCADE_EVAL_PER_CLASS,
            difficulty: (0.0, 0.8),
        },
        43,
    )
    .test;
    let gate = CascadeCache::build(&low, &eval, Parallelism::Auto);
    let threshold = noise_stable_threshold(gate.entropies());
    let fq_cascade = MultiEffortVit::new(low.clone(), high.clone(), threshold);
    let q_cascade = MultiEffortVit::new_int8(low, high, threshold);
    let cascade_agree = eval
        .iter()
        .filter(|s| q_cascade.infer(&s.image).prediction == fq_cascade.infer(&s.image).prediction)
        .count();

    let out = Int8Speedup {
        n_samples: samples.len(),
        workers,
        prepare_ms,
        int8_ms,
        fake_quant_ms,
        max_rel_diff,
        weight_ratio,
        cascade_agree,
        cascade_total: eval.len(),
    };

    let mut table = Table::new(&["Workload", "Fake-quant (ms)", "Int8 (ms)", "Speedup"]);
    table.row_owned(vec![
        format!("batched eval ({} samples)", samples.len()),
        format!("{fake_quant_ms:.1}"),
        format!("{int8_ms:.1} (pack {prepare_ms:.2})"),
        format!("{:.2}x", out.speedup()),
    ]);
    println!("{table}");
    println!(
        "weight bytes: {}x smaller; max logit deviation {:.3} (tolerance {INT8_LOGIT_TOL}); \
         cascade (threshold {threshold:.3}) argmax identical on {}/{} samples",
        out.weight_ratio, out.max_rel_diff, out.cascade_agree, out.cascade_total
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_report_meets_the_numeric_contract() {
        // Small sample count: validates wiring and the numeric contract,
        // not throughput.
        let report = int8_speedup(24);
        assert!(
            report.tolerance_ok(),
            "int8 logits deviate {:.3} > {INT8_LOGIT_TOL}",
            report.max_rel_diff
        );
        assert!(report.argmax_identical(), "cascade predictions diverged");
        assert_eq!(report.weight_ratio, 4.0);
        assert_eq!(report.n_samples, 24);
        assert!(report.int8_ms >= report.prepare_ms);
        assert!(report.fake_quant_ms > 0.0);
    }
}
