//! One function per table/figure of the paper's evaluation.
//!
//! Every function prints a paper-style report to stdout (with the paper's
//! published values alongside for comparison) and returns the key numbers
//! so the integration tests can assert the reproduced *shapes*.

mod ablations;
mod accuracy;
mod analysis;
mod delay;
mod drift;
mod f32_gemm;
mod faults;
mod gpp;
mod int8;
mod ladder_memory;
mod parallel;
mod prepared;
mod serve;

pub use ablations::{
    ablation_dataflow, ablation_entropy_regularizer, ablation_gating, ablation_ladder,
    ablation_path_selection, ablation_quantization,
};
pub use accuracy::{table2, table3, table4, ComparisonRow, EffortTableRow};
pub use analysis::{fig3a, fig4a, fig4b, fig4c, fig8, fig9, LecPoint, PathAccuracyPoint};
pub use delay::{fig1b, fig6a, fig6b, DelayShare, EnergyReduction};
pub use drift::{
    drift_bench, DriftBench, DriftPolicyRun, DriftScenario, BATCH, CALIBRATION, LEC, STEP, WINDOW,
};
pub use f32_gemm::{f32_speedup, F32Speedup, ShapeTiming, F32_BENCH_SHAPES, F32_TIMING_SLACK};
pub use faults::{fault_injection, FaultReport, FaultSweepPoint};
pub use gpp::{fig1c, fig7, GppMethodResult};
pub use int8::{int8_speedup, Int8Speedup, INT8_LOGIT_TOL};
pub use ladder_memory::{ladder_memory, LadderMemory, LadderMemoryRow, LADDER_DEPTH};
pub use parallel::{parallel_speedup, ParallelSpeedup};
pub use prepared::{prepared_speedup, PreparedSpeedup};
pub use serve::{serve_bench, ServeBench, ServeScenario};

use crate::harness::{FamilyArtifacts, Reproduction};
use pivot_core::{Phase2Config, Phase2Result, Phase2Search};

/// Runs Phase 2 for one family at a delay target, returning the chosen
/// combination (or `None` when infeasible).
pub fn phase2_at(
    repro: &Reproduction,
    family: &FamilyArtifacts,
    delay_ms: f64,
    lec: f64,
) -> Option<Phase2Result> {
    let search = Phase2Search::new(
        &repro.sim,
        &family.geometry,
        family.efforts(),
        &repro.calibration,
    );
    search.run(&Phase2Config {
        lec,
        delay_constraint_ms: delay_ms,
        delay_tolerance: 0.05,
        threshold_step: 0.02,
    })
}

/// The PVDS-50 operating point used by several figures: DeiT-S at a 50 ms
/// delay target, LEC 70%.
pub fn pvds50(repro: &Reproduction) -> Phase2Result {
    phase2_at(repro, &repro.deit, 50.0, 0.7).expect("a 50 ms target on DeiT-S must be feasible")
}

/// The PVLS-50 operating point: LVViT-S at a 50 ms target.
pub fn pvls50(repro: &Reproduction) -> Phase2Result {
    phase2_at(repro, &repro.lvvit, 50.0, 0.7).expect("a 50 ms target on LVViT-S must be feasible")
}

/// Evaluates a Phase-2 combination's cascade accuracy on the held-out test
/// set.
pub fn cascade_test_accuracy(
    repro: &Reproduction,
    family: &FamilyArtifacts,
    result: &Phase2Result,
) -> f64 {
    let low = family
        .efforts()
        .iter()
        .find(|e| e.effort == result.low_effort)
        .expect("low effort exists");
    let high = family
        .efforts()
        .iter()
        .find(|e| e.effort == result.high_effort)
        .expect("high effort exists");
    let cascade =
        pivot_core::MultiEffortVit::new(low.model.clone(), high.model.clone(), result.threshold);
    cascade.evaluate(&repro.dataset.test).accuracy()
}
