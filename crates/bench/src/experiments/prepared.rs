//! Prepared-view evaluation throughput: the whole-evaluation amortization
//! of fake-quant weight materialization.
//!
//! Part of this reproduction's performance trajectory rather than a paper
//! figure. The paper deploys every effort 8-bit quantized (Section 4.1);
//! before the [`pivot_vit::PreparedModel`] view, every evaluation chunk
//! refit each `Linear`'s quantizer and rematerialized its fake-quantized
//! effective weight — work whose result is identical for every chunk of
//! the sweep. The prepared view does it once per model. This experiment
//! measures exactly that delta: the same chunked batched evaluation over
//! the same Int8 model, once through [`pivot_core::batched_logits`] on a
//! view prepared up front (preparation time included), once through
//! [`pivot_core::batched_logits_rematerializing`], and verifies the two
//! are **bit-identical** to each other and to per-sample inference.

use crate::Table;
use pivot_core::{batched_logits, batched_logits_rematerializing, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_nn::QuantMode;
use pivot_tensor::Rng;
use pivot_vit::{VisionTransformer, VitConfig};
use std::time::Instant;

/// Wall-clock comparison of prepared vs. per-chunk-rematerializing
/// batched evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedSpeedup {
    /// Samples evaluated.
    pub n_samples: usize,
    /// Worker count used by both paths (`Parallelism::Auto`).
    pub workers: usize,
    /// One-off `VisionTransformer::prepare` cost (ms) — included in
    /// [`Self::prepared_ms`], broken out for the report.
    pub prepare_ms: f64,
    /// Prepared batched evaluation (ms), *including* the one-off
    /// preparation, so the comparison charges the view its full cost.
    pub prepared_ms: f64,
    /// Per-chunk-rematerializing batched evaluation (ms): each chunk
    /// refits quantizers and rematerializes effective weights.
    pub rematerializing_ms: f64,
    /// Whether both paths and per-sample inference agreed bitwise.
    pub bit_identical: bool,
}

impl PreparedSpeedup {
    /// Rematerializing-over-prepared speedup (higher is better; the
    /// prepared side includes its preparation cost).
    pub fn speedup(&self) -> f64 {
        self.rematerializing_ms / self.prepared_ms.max(1e-9)
    }
}

/// The Int8 deployment model the comparison runs: the test-small
/// geometry at full patch size (one patch + cls = 2 tokens), full effort,
/// fake-quantized weights.
///
/// The 2-token latency geometry is the worst case the quantizer refits
/// were hurting: each 32-sample chunk contributes only 64 GEMM rows to
/// amortize a full per-chunk refit + rematerialization of every layer's
/// weights, so the per-chunk weight work is a large fraction of the
/// sweep. (The refit cost is independent of how many rows share it —
/// token-rich geometries dilute it, few-token ones expose it.)
fn int8_model(seed: u64) -> VisionTransformer {
    let cfg = VitConfig {
        patch_size: 16,
        dim: 64,
        ..VitConfig::test_small()
    };
    let mut model = VisionTransformer::new(&cfg, &mut Rng::new(seed));
    model.set_quant_mode(QuantMode::Int8);
    model
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Generates the evaluation set.
fn eval_samples(n_samples: usize) -> Vec<Sample> {
    Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.1, 0.5, 0.9],
        n_samples.div_ceil(3),
        33,
    )
}

/// Measures prepared vs. per-chunk-rematerializing batched evaluation of
/// an Int8 model over `n_samples` synthetic inputs and prints a report.
///
/// The win does not depend on core count — both paths use the same
/// chunking and worker pool; the delta is purely the per-chunk quantizer
/// refits and weight materializations the prepared view hoists out of the
/// sweep.
pub fn prepared_speedup(n_samples: usize) -> PreparedSpeedup {
    println!("\n=== Prepared inference view: amortized fake-quant materialization ===");
    let workers = Parallelism::Auto.workers(usize::MAX);
    println!("host parallelism: {workers} worker(s); {n_samples} Int8 samples\n");

    let model = int8_model(7);
    let samples = eval_samples(n_samples);
    let samples = &samples[..n_samples.min(samples.len())];

    // Old path: every chunk refits + rematerializes every layer's weights.
    let (rematerializing_ms, old_logits) =
        time_ms(|| batched_logits_rematerializing(&model, samples, Parallelism::Auto));

    // New path: prepare once, evaluate against the frozen view. The
    // preparation is timed inside so the comparison is end-to-end honest.
    let (prepare_ms, prepared) = time_ms(|| model.prepare());
    let (eval_ms, new_logits) = time_ms(|| batched_logits(&prepared, samples, Parallelism::Auto));
    let prepared_ms = prepare_ms + eval_ms;

    // Bit-identity: prepared == rematerializing == per-sample inference
    // (the per-sample check on a subset keeps the experiment fast).
    let mut identical = old_logits == new_logits;
    for (i, s) in samples.iter().take(8).enumerate() {
        identical &= new_logits[i] == model.infer(&s.image);
    }

    let out = PreparedSpeedup {
        n_samples: samples.len(),
        workers,
        prepare_ms,
        prepared_ms,
        rematerializing_ms,
        bit_identical: identical,
    };

    let mut table = Table::new(&["Workload", "Baseline (ms)", "Optimized (ms)", "Speedup"]);
    table.row_owned(vec![
        format!("Int8 batched eval ({} samples)", samples.len()),
        format!("{rematerializing_ms:.1}"),
        format!("{prepared_ms:.1} (prepare {prepare_ms:.2})"),
        format!("{:.2}x", out.speedup()),
    ]);
    println!("{table}");
    println!(
        "prepared logits bit-identical to rematerializing and per-sample: {}",
        if identical {
            "yes"
        } else {
            "NO — NUMERICS CONTRACT VIOLATED"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_report_is_identical_and_finite() {
        // Small sample count: validates wiring and the bit-identity
        // contract, not throughput.
        let report = prepared_speedup(24);
        assert!(
            report.bit_identical,
            "prepared logits must be bit-identical"
        );
        assert_eq!(report.n_samples, 24);
        assert!(report.prepared_ms >= report.prepare_ms);
        assert!(report.rematerializing_ms > 0.0);
    }

    /// Throughput smoke test (`cargo test -- --ignored`): at 1000 Int8
    /// samples the prepared path must beat per-chunk rematerialization by
    /// at least 1.3x, preparation cost included. Ignored by default
    /// because its timing assertion is load-sensitive.
    #[test]
    #[ignore = "throughput smoke test; run explicitly with --ignored"]
    fn prepared_speedup_smoke() {
        let report = prepared_speedup(1000);
        assert!(
            report.bit_identical,
            "prepared logits must be bit-identical"
        );
        assert!(
            report.speedup() >= 1.3,
            "prepared batched eval only {:.2}x faster than rematerializing",
            report.speedup()
        );
    }
}
