//! Dispatched f32 GEMM vs. the naive reference — the bench contract for
//! the packed SIMD microkernel (DESIGN.md §4f).
//!
//! Part of this reproduction's performance trajectory rather than a paper
//! figure. `Matrix::matmul` dispatches to the packed AVX2+FMA microkernel
//! on capable hosts and to the scalar untiled/tiled ladder elsewhere; this
//! experiment pins the two promises the dispatch makes at the shapes the
//! tiny ViTs actually execute:
//!
//! - **never slower than naive** — the whole point of dispatching is that
//!   the chosen kernel wins (or ties, on scalar hosts where the untiled
//!   arm is the same loop) at every benched shape,
//! - **never further from naive than the documented tolerance** — the
//!   fused-accumulation bound of DESIGN.md §4f, zero on scalar hosts where
//!   the dispatched arms are bit-identical to `matmul_naive`,
//!
//! plus the end-to-end consequence the rest of the stack relies on:
//! cascade predictions through the prepared (prepacked-weight) views are
//! argmax-identical to a gate replayed from per-sample unprepared
//! inference — bitwise, not statistically, because every dispatch arm is
//! batch-invariant and `prepare` only hoists the pack out of the call.

use crate::Table;
use pivot_core::{batched_logits, stays_low, MultiEffortVit, Parallelism};
use pivot_data::{Dataset, DatasetConfig};
use pivot_nn::normalized_entropy;
use pivot_tensor::{f32_simd_available, Matrix, Rng};
use pivot_vit::{VisionTransformer, VitConfig};
use std::time::Instant;

/// The GEMM shapes `(m, k, n)` the contract runs on: the qkv slice and
/// MLP expansion of the tiny ViT, the multi-tile square where the old
/// tiled kernel regressed below naive, and the `EVAL_BATCH`-stacked
/// projection the batched evaluator issues per layer.
pub const F32_BENCH_SHAPES: [(usize, usize, usize); 4] =
    [(17, 64, 64), (17, 64, 128), (96, 96, 96), (544, 64, 64)];

/// Multiplicative slack on the no-regression timing contract. On SIMD
/// hosts the dispatched kernel wins by >2x so the slack is irrelevant; on
/// scalar hosts the untiled arm is the same loop as naive and the slack
/// only absorbs timer jitter around 1.0x.
pub const F32_TIMING_SLACK: f64 = 1.25;

/// Min-of-iterations wall clock for one benched GEMM shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeTiming {
    /// Output rows.
    pub m: usize,
    /// Contraction length.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// `matmul_naive` minimum (ms).
    pub naive_ms: f64,
    /// Dispatched `matmul` minimum (ms).
    pub dispatched_ms: f64,
}

impl ShapeTiming {
    /// Naive-over-dispatched speedup (higher is better).
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.dispatched_ms.max(1e-9)
    }
}

/// Wall-clock and contract report for dispatched-f32 vs. naive GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct F32Speedup {
    /// Whether the SIMD microkernel was active (AVX2+FMA detected).
    pub simd: bool,
    /// Per-shape timings over [`F32_BENCH_SHAPES`].
    pub shapes: Vec<ShapeTiming>,
    /// Worst observed `|dispatched - naive|` across all shapes, as a
    /// fraction of the documented fused-accumulation bound (§4f):
    /// `2k * eps * max(|A||B|, 1)` elementwise. `<= 1.0` means every
    /// element was inside the tolerance; exactly `0.0` on scalar hosts.
    pub max_tolerance_ratio: f32,
    /// Cascade predictions through the prepared views agreeing with the
    /// gate replayed from per-sample unprepared inference.
    pub cascade_agree: usize,
    /// Size of the fixed cascade eval set.
    pub cascade_total: usize,
}

impl F32Speedup {
    /// Smallest per-shape speedup (the binding side of the contract).
    pub fn min_speedup(&self) -> f64 {
        self.shapes
            .iter()
            .map(ShapeTiming::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether the dispatched kernel was at least as fast as naive
    /// (within [`F32_TIMING_SLACK`]) at every benched shape.
    pub fn no_shape_regresses(&self) -> bool {
        self.shapes
            .iter()
            .all(|s| s.dispatched_ms <= s.naive_ms * F32_TIMING_SLACK)
    }

    /// Whether every element of every benched product stayed inside the
    /// documented fused-accumulation tolerance.
    pub fn tolerance_ok(&self) -> bool {
        self.max_tolerance_ratio <= 1.0
    }

    /// Whether the prepared-view cascade predicted identically to the
    /// unprepared reference gate on every eval sample.
    pub fn argmax_identical(&self) -> bool {
        self.cascade_agree == self.cascade_total
    }
}

fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Worst `|got - want|` over the product's elements as a fraction of the
/// §4f bound `2k * eps * max(|A||B|, 1)` — the same check the tensor
/// crate's `max_fused_violation` test helper performs, recomputed here so
/// the bench contract is self-contained.
fn fused_violation(got: &Matrix, a: &Matrix, b: &Matrix, want: &Matrix) -> f32 {
    let mut abs_a = a.clone();
    abs_a.map_in_place(f32::abs);
    let mut abs_b = b.clone();
    abs_b.map_in_place(f32::abs);
    let bound = abs_a.matmul_naive(&abs_b);
    let k = a.cols() as f32;
    let mut worst = 0f32;
    for i in 0..got.len() {
        let allowed = 2.0 * k * f32::EPSILON * bound.as_slice()[i].max(1.0);
        worst = worst.max((got.as_slice()[i] - want.as_slice()[i]).abs() / allowed);
    }
    worst
}

/// Cascade eval samples per class (the fixed eval set has
/// `4 * CASCADE_EVAL_PER_CLASS` samples).
const CASCADE_EVAL_PER_CLASS: usize = 24;

/// Measures dispatched vs. naive f32 GEMM at [`F32_BENCH_SHAPES`]
/// (min over `iters` calls per shape), checks the fused-accumulation
/// tolerance at each shape, and replays the cascade gate from unprepared
/// per-sample inference to pin argmax identity of the prepared views.
/// Prints a report.
///
/// Untrained models suffice for the cascade check: unlike the int8
/// experiment, the prepared path here is *bit-identical* to unprepared
/// inference (same kernel, pack hoisted), so identity is exact rather
/// than a margin statement — training would only slow the experiment
/// without strengthening the assertion.
pub fn f32_speedup(iters: usize) -> F32Speedup {
    println!("\n=== Dispatched f32 GEMM vs. naive reference ===");
    let simd = f32_simd_available();
    println!(
        "SIMD microkernel: {}; min over {iters} call(s) per shape\n",
        if simd {
            "active (AVX2+FMA)"
        } else {
            "inactive (scalar dispatch)"
        }
    );

    let mut rng = Rng::new(11);
    let mut shapes = Vec::with_capacity(F32_BENCH_SHAPES.len());
    let mut max_tolerance_ratio = 0f32;
    for &(m, k, n) in &F32_BENCH_SHAPES {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        // Warm both paths up and check the numeric contract on the way.
        let got = a.matmul(&b);
        let want = a.matmul_naive(&b);
        max_tolerance_ratio = max_tolerance_ratio.max(fused_violation(&got, &a, &b, &want));
        let naive_ms = min_ms(iters, || {
            std::hint::black_box(std::hint::black_box(&a).matmul_naive(std::hint::black_box(&b)));
        });
        let dispatched_ms = min_ms(iters, || {
            std::hint::black_box(std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
        });
        shapes.push(ShapeTiming {
            m,
            k,
            n,
            naive_ms,
            dispatched_ms,
        });
    }

    // Cascade argmax identity: replay the gate from *unprepared*
    // per-sample inference (public `normalized_entropy` + `stays_low`)
    // and compare against `MultiEffortVit::infer`, which runs entirely on
    // the prepared (prepacked-weight) views. The threshold sits at the
    // median low-effort entropy so both efforts answer real traffic; a
    // knife-edge threshold would still be safe — both sides compute the
    // same entropy bits — but a mid-distribution one makes the check
    // exercise both arms.
    let eval = Dataset::generate(
        &DatasetConfig {
            classes: 4,
            image_size: 16,
            train_per_class: 1,
            test_per_class: CASCADE_EVAL_PER_CLASS,
            difficulty: (0.0, 0.8),
        },
        47,
    )
    .test;
    let cfg = VitConfig::test_small();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(9));
    low.set_active_attentions(&[0]);
    let high = VisionTransformer::new(&cfg, &mut Rng::new(10));

    let low_logits: Vec<Matrix> = eval.iter().map(|s| low.infer(&s.image)).collect();
    let mut entropies: Vec<f32> = low_logits.iter().map(normalized_entropy).collect();
    entropies.sort_by(f32::total_cmp);
    let threshold = entropies[entropies.len() / 2].clamp(0.0, 1.0);

    let cascade = MultiEffortVit::new(low.clone(), high.clone(), threshold);
    // The prepared batched evaluator must reproduce the per-sample
    // unprepared logits bit-for-bit — the batch-invariance contract of
    // the microkernel surfacing at the model level.
    let batched = batched_logits(&low.prepare(), &eval, Parallelism::Auto);
    assert_eq!(
        batched, low_logits,
        "batched prepared logits must be bit-identical to per-sample unprepared inference"
    );

    let cascade_agree = eval
        .iter()
        .zip(&low_logits)
        .filter(|(s, logits)| {
            let reference = if stays_low(normalized_entropy(logits), threshold) {
                logits.row_argmax(0)
            } else {
                let high_logits = high.infer(&s.image);
                if high_logits.as_slice().iter().all(|v| v.is_finite()) {
                    high_logits.row_argmax(0)
                } else {
                    logits.row_argmax(0)
                }
            };
            cascade.infer(&s.image).prediction == reference
        })
        .count();

    let out = F32Speedup {
        simd,
        shapes,
        max_tolerance_ratio,
        cascade_agree,
        cascade_total: eval.len(),
    };

    let mut table = Table::new(&["GEMM shape", "Naive (ms)", "Dispatched (ms)", "Speedup"]);
    for s in &out.shapes {
        table.row_owned(vec![
            format!("{}x{} * {}x{}", s.m, s.k, s.k, s.n),
            format!("{:.4}", s.naive_ms),
            format!("{:.4}", s.dispatched_ms),
            format!("{:.2}x", s.speedup()),
        ]);
    }
    println!("{table}");
    println!(
        "max deviation {:.3} of the fused tolerance; cascade (threshold {threshold:.3}) \
         argmax identical on {}/{} samples",
        out.max_tolerance_ratio, out.cascade_agree, out.cascade_total
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_report_meets_the_numeric_contract() {
        // Few timing iterations: this validates wiring and the numeric
        // contracts, not throughput (the bin asserts the timing contract
        // under a release build).
        let report = f32_speedup(3);
        assert!(
            report.tolerance_ok(),
            "dispatched GEMM deviates {:.3}x the documented tolerance",
            report.max_tolerance_ratio
        );
        assert!(
            report.argmax_identical(),
            "prepared cascade diverged from the unprepared gate: {}/{} agree",
            report.cascade_agree,
            report.cascade_total
        );
        assert_eq!(report.cascade_total, 4 * CASCADE_EVAL_PER_CLASS);
        assert_eq!(report.shapes.len(), F32_BENCH_SHAPES.len());
        assert!(report.shapes.iter().all(|s| s.naive_ms > 0.0));
        if !report.simd {
            // Scalar dispatch arms are bit-identical to naive.
            assert_eq!(report.max_tolerance_ratio, 0.0);
        }
    }
}
