//! Parallel evaluation-engine throughput: sequential vs. worker-pool
//! wall-clock for the hot host-side loops (cascade `evaluate`, Phase-2
//! search, threshold sweeps).
//!
//! This is part of this reproduction's performance trajectory rather than
//! a paper figure: PIVOT's Phase-2 search is hardware-in-the-loop, so the
//! host-side orchestration must not be the bottleneck. The experiment
//! also verifies the engine's determinism contract — every parallel
//! result must be **bit-identical** to its sequential counterpart.

use crate::Table;
use pivot_core::{
    EffortModel, MultiEffortVit, Parallelism, PathConfig, Phase2Config, Phase2Search,
};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_nn::QuantMode;
use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};
use pivot_tensor::Rng;
use pivot_vit::{VisionTransformer, VitConfig};
use std::time::Instant;

/// Wall-clock comparison of sequential vs. parallel evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelSpeedup {
    /// Worker count the parallel runs used (`Parallelism::Auto`).
    pub workers: usize,
    /// Sequential cascade `evaluate` over the sample set (ms).
    pub evaluate_seq_ms: f64,
    /// Parallel cascade `evaluate` over the same set (ms).
    pub evaluate_par_ms: f64,
    /// Per-sample cascade evaluation — the PR 1 reference path, one
    /// `infer` call per sample on the worker pool (ms).
    pub evaluate_per_sample_ms: f64,
    /// Batched cascade evaluation — `forward_batch` chunks on the worker
    /// pool, same parallelism as the per-sample run (ms).
    pub evaluate_batched_ms: f64,
    /// Sequential `Phase2Search::run` (ms).
    pub phase2_seq_ms: f64,
    /// Parallel `Phase2Search::run` (ms).
    pub phase2_par_ms: f64,
    /// Threshold sweep re-running inference per threshold, the
    /// pre-cache behavior (ms).
    pub sweep_uncached_ms: f64,
    /// The same sweep through one `CascadeCache` build (ms).
    pub sweep_cached_ms: f64,
    /// Whether every parallel result was bit-identical to sequential.
    pub bit_identical: bool,
}

impl ParallelSpeedup {
    /// Sequential-over-parallel speedup of cascade `evaluate`.
    pub fn evaluate_speedup(&self) -> f64 {
        self.evaluate_seq_ms / self.evaluate_par_ms.max(1e-9)
    }

    /// Sequential-over-parallel speedup of the Phase-2 search.
    pub fn phase2_speedup(&self) -> f64 {
        self.phase2_seq_ms / self.phase2_par_ms.max(1e-9)
    }

    /// Per-sample-over-batched speedup of cascade evaluation — what the
    /// wide-GEMM batch dimension buys over the PR 1 path at identical
    /// parallelism.
    pub fn batch_speedup(&self) -> f64 {
        self.evaluate_per_sample_ms / self.evaluate_batched_ms.max(1e-9)
    }

    /// Uncached-over-cached speedup of the threshold sweep.
    pub fn sweep_speedup(&self) -> f64 {
        self.sweep_uncached_ms / self.sweep_cached_ms.max(1e-9)
    }
}

fn build_efforts(depth: usize, efforts: &[usize], seed: u64) -> Vec<EffortModel> {
    let cfg = VitConfig {
        depth,
        ..VitConfig::test_small()
    };
    let mut base = VisionTransformer::new(&cfg, &mut Rng::new(seed));
    // Deployment numerics: the paper runs every effort 8-bit quantized
    // (Section 4.1), so the throughput comparison uses Int8 weights —
    // each Linear materializes a fake-quantized effective weight per
    // forward call, the per-call cost batching amortizes.
    base.set_quant_mode(QuantMode::Int8);
    efforts
        .iter()
        .map(|&e| {
            let active: Vec<usize> = (0..e).collect();
            let path = PathConfig::new(depth, &active);
            let mut model = base.clone();
            model.set_active_attentions(path.active());
            EffortModel {
                effort: e,
                path,
                score: e as f32,
                model,
            }
        })
        .collect()
}

fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Measures sequential vs. parallel wall-clock of the evaluation engine
/// on `n_samples` synthetic inputs and prints a report. On a single-core
/// host the thread speedups hover around 1.0x (the pool degenerates to
/// the sequential path) but the batched-vs-per-sample row still wins —
/// batching amortizes per-call weight materialization and allocations
/// regardless of core count. On >= 4 cores the thread rows land >= 2x
/// as well.
pub fn parallel_speedup(n_samples: usize) -> ParallelSpeedup {
    println!("\n=== Parallel evaluation engine: sequential vs. worker pool ===");
    let workers = Parallelism::Auto.workers(usize::MAX);
    println!("host parallelism: {workers} worker(s); {n_samples} samples\n");

    let efforts = build_efforts(12, &[3, 6, 9, 12], 7);
    let samples: Vec<Sample> = Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.1, 0.5, 0.9],
        n_samples.div_ceil(3),
        21,
    );
    let samples = &samples[..n_samples.min(samples.len())];

    let mut identical = true;

    // 1. Cascade evaluate over the full batch.
    let cascade = MultiEffortVit::new(efforts[1].model.clone(), efforts[3].model.clone(), 0.6);
    let (evaluate_seq_ms, stats_seq) = time_ms(|| cascade.evaluate_with(samples, Parallelism::Off));
    let (evaluate_par_ms, stats_par) =
        time_ms(|| cascade.evaluate_with(samples, Parallelism::Auto));
    identical &= stats_seq == stats_par;

    // 1b. Batched vs per-sample cascade evaluation at identical
    // parallelism: what the wide-GEMM batch dimension buys on its own.
    let (evaluate_per_sample_ms, stats_ps) =
        time_ms(|| cascade.evaluate_per_sample_with(samples, Parallelism::Auto));
    let (evaluate_batched_ms, stats_batched) =
        time_ms(|| cascade.evaluate_with(samples, Parallelism::Auto));
    identical &= stats_ps == stats_batched && stats_batched == stats_par;

    // 2. Phase-2 hardware-in-the-loop search.
    let sim = Simulator::new(AcceleratorConfig::zcu102());
    let geom = VitGeometry::deit_s();
    let calibration = &samples[..samples.len().min(256)];
    let cfg = Phase2Config {
        delay_constraint_ms: 60.0,
        ..Default::default()
    };
    let (phase2_seq_ms, result_seq) = time_ms(|| {
        Phase2Search::new(&sim, &geom, &efforts, calibration)
            .with_parallelism(Parallelism::Off)
            .run(&cfg)
    });
    let (phase2_par_ms, result_par) = time_ms(|| {
        Phase2Search::new(&sim, &geom, &efforts, calibration)
            .with_parallelism(Parallelism::Auto)
            .run(&cfg)
    });
    identical &= match (&result_seq, &result_par) {
        (Some(a), Some(b)) => {
            a.stats == b.stats
                && a.threshold.to_bits() == b.threshold.to_bits()
                && a.perf.delay_ms.to_bits() == b.perf.delay_ms.to_bits()
        }
        (None, None) => true,
        _ => false,
    };

    // 3. Threshold sweep: per-threshold re-inference (the pre-cache
    // behavior) vs. one cache build + O(N) queries.
    let thresholds: Vec<f32> = (0..=50).map(|i| i as f32 / 50.0).collect();
    let (sweep_uncached_ms, curve_uncached) = time_ms(|| {
        thresholds
            .iter()
            .map(|&th| cascade.f_low_at(samples, th))
            .collect::<Vec<f64>>()
    });
    let (sweep_cached_ms, curve_cached) =
        time_ms(|| cascade.cache(samples).f_low_curve(&thresholds));
    identical &= curve_uncached == curve_cached;

    let out = ParallelSpeedup {
        workers,
        evaluate_seq_ms,
        evaluate_par_ms,
        evaluate_per_sample_ms,
        evaluate_batched_ms,
        phase2_seq_ms,
        phase2_par_ms,
        sweep_uncached_ms,
        sweep_cached_ms,
        bit_identical: identical,
    };

    let mut table = Table::new(&["Workload", "Baseline (ms)", "Optimized (ms)", "Speedup"]);
    table.row_owned(vec![
        format!("cascade evaluate ({} samples)", samples.len()),
        format!("{evaluate_seq_ms:.1}"),
        format!("{evaluate_par_ms:.1}"),
        format!("{:.2}x", out.evaluate_speedup()),
    ]);
    table.row_owned(vec![
        "cascade evaluate: per-sample vs batched".to_string(),
        format!("{evaluate_per_sample_ms:.1}"),
        format!("{evaluate_batched_ms:.1}"),
        format!("{:.2}x", out.batch_speedup()),
    ]);
    table.row_owned(vec![
        format!("Phase2Search::run ({} calib)", calibration.len()),
        format!("{phase2_seq_ms:.1}"),
        format!("{phase2_par_ms:.1}"),
        format!("{:.2}x", out.phase2_speedup()),
    ]);
    table.row_owned(vec![
        format!(
            "F_L sweep, {} thresholds (uncached vs cache)",
            thresholds.len()
        ),
        format!("{sweep_uncached_ms:.1}"),
        format!("{sweep_cached_ms:.1}"),
        format!("{:.2}x", out.sweep_speedup()),
    ]);
    println!("{table}");
    println!(
        "parallel results bit-identical to sequential: {}",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM VIOLATED"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_report_is_identical_and_finite() {
        // Small sample count: this validates wiring and the determinism
        // contract, not throughput.
        let report = parallel_speedup(24);
        assert!(
            report.bit_identical,
            "parallel results must be bit-identical"
        );
        assert!(report.evaluate_seq_ms >= 0.0);
        assert!(report.workers >= 1);
        // The cached sweep can never be slower than ~the uncached one
        // plus noise; with 51 thresholds it should win clearly even on
        // one core.
        assert!(report.sweep_cached_ms < report.sweep_uncached_ms);
    }

    /// Multi-core throughput smoke test (`cargo test -- --ignored`):
    /// at 1000 samples the batched cascade evaluation must still beat
    /// the PR 1 per-sample path, and on hosts with >= 4 cores the
    /// multi-worker evaluation must beat sequential by >= 2x. Ignored by
    /// default because it takes tens of seconds and its timing assertions
    /// are load-sensitive. The thread-scaling assertion self-skips on
    /// small hosts (it cannot hold on 1–3 cores), so the test can be
    /// wired into multi-core CI without failing on single-core runners.
    #[test]
    #[ignore = "throughput smoke test; run explicitly with --ignored"]
    fn parallel_speedup_smoke() {
        let report = parallel_speedup(1000);
        assert!(
            report.bit_identical,
            "parallel results must be bit-identical"
        );
        // The wide-GEMM batching win was ~3.5x against the scalar f32
        // kernel; the SIMD microkernel (DESIGN.md §4f) sped the narrow
        // per-sample GEMMs up more than the wide ones, so the measured
        // edge is now ~1.2x. The floor asserts batching never *loses*,
        // with slack for a loaded machine.
        assert!(
            report.batch_speedup() >= 1.05,
            "batched cascade evaluation only {:.2}x faster than per-sample",
            report.batch_speedup()
        );
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(
                report.evaluate_speedup() >= 2.0,
                "parallel evaluation only {:.2}x faster than sequential on {cores} cores",
                report.evaluate_speedup()
            );
        } else {
            println!(
                "skipping thread-scaling assertion: {cores} core(s) available, need >= 4 \
                 (measured {:.2}x)",
                report.evaluate_speedup()
            );
        }
    }
}
