//! Effort-ladder memory footprint and checkpoint cold start.
//!
//! This is part of this reproduction's performance trajectory rather than
//! a paper figure. PIVOT's effort ladders derive every level from **one**
//! backbone by masking attention modules, so an `N`-level deployment
//! logically needs ~1x the backbone weights — but a naive implementation
//! prepares each level independently and holds `N`x. The experiment
//! measures what the content-addressed [`pivot_vit::PreparedStore`]
//! actually keeps resident for 2/4/8-level ladders (f32 and int8), and
//! the checkpoint-to-first-inference cold-start latency of
//! [`pivot_vit::VisionTransformer::load_prepared`] (parse once, build the
//! frozen view directly, re-view per level) against the classic
//! load -> clone -> mask -> prepare-per-level path. Both paths must be
//! bit-identical; the delta is pure overhead.

use crate::Table;
use pivot_core::EffortLadder;
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{PreparedModel, VisionTransformer, VitConfig};
use std::time::Instant;

/// Encoder depth of the benchmark backbone: deep enough for an 8-level
/// ladder with a distinct effort per level.
pub const LADDER_DEPTH: usize = 8;

/// Memory and cold-start measurements for one `(levels, kernel)` ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderMemoryRow {
    /// Number of ladder levels.
    pub levels: usize,
    /// `"f32"` or `"int8"`.
    pub kernel: &'static str,
    /// Prepared weight bytes of a single level (the backbone footprint).
    pub single_weight_bytes: usize,
    /// Naive per-level sum — what independent preparation would hold.
    pub total_weight_bytes: usize,
    /// Bytes actually resident with every Arc-shared layer counted once.
    pub unique_weight_bytes: usize,
    /// Store hits while preparing the ladder (layers served by sharing).
    pub store_hits: usize,
    /// Store misses (layers materialized).
    pub store_misses: usize,
    /// Checkpoint -> `load_prepared` -> per-level re-view -> first
    /// inference at every level (ms, best of the configured repetitions).
    pub cold_prepared_ms: f64,
    /// Checkpoint -> `load` -> per-level clone + mask + prepare -> first
    /// inference at every level (ms, best of the configured repetitions).
    pub cold_baseline_ms: f64,
}

impl LadderMemoryRow {
    /// Resident bytes over the single-level footprint. The contract the
    /// CI smoke asserts: an `N`-level ladder stays within 1.1x of one
    /// backbone (same-backbone levels share everything, so it is 1.0x).
    pub fn unique_ratio(&self) -> f64 {
        self.unique_weight_bytes as f64 / self.single_weight_bytes as f64
    }

    /// Naive-over-resident memory reduction (~`N`x for `N` levels).
    pub fn memory_reduction(&self) -> f64 {
        self.total_weight_bytes as f64 / self.unique_weight_bytes.max(1) as f64
    }

    /// Baseline-over-prepared cold-start speedup.
    pub fn cold_start_speedup(&self) -> f64 {
        self.cold_baseline_ms / self.cold_prepared_ms.max(1e-9)
    }
}

/// Full report: one row per `(levels, kernel)` combination.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderMemory {
    /// Rows for 2/4/8 levels, f32 and int8 each.
    pub rows: Vec<LadderMemoryRow>,
    /// Whether the fast cold-start path produced logits bit-identical to
    /// load-then-prepare at every level of every ladder.
    pub bit_identical: bool,
}

impl LadderMemory {
    /// Serializes the report as a JSON array (for `BENCH_ladder.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"levels\": {}, \"kernel\": \"{}\", \
                 \"single_weight_bytes\": {}, \"total_weight_bytes\": {}, \
                 \"unique_weight_bytes\": {}, \"unique_ratio\": {:.4}, \
                 \"memory_reduction\": {:.2}, \"cold_prepared_ms\": {:.3}, \
                 \"cold_baseline_ms\": {:.3}, \"cold_start_speedup\": {:.2}, \
                 \"bit_identical\": {}}}{}\n",
                r.levels,
                r.kernel,
                r.single_weight_bytes,
                r.total_weight_bytes,
                r.unique_weight_bytes,
                r.unique_ratio(),
                r.memory_reduction(),
                r.cold_prepared_ms,
                r.cold_baseline_ms,
                r.cold_start_speedup(),
                self.bit_identical,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Evenly spaced effort sizes for an `n`-level ladder over the depth-8
/// backbone: `[4, 8]`, `[2, 4, 6, 8]`, `[1..=8]`.
fn level_efforts(n: usize) -> Vec<usize> {
    (1..=n).map(|i| i * LADDER_DEPTH / n).collect()
}

fn active(effort: usize) -> Vec<usize> {
    (0..effort).collect()
}

fn time_best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one repetition"))
}

/// Measures ladder memory dedup and checkpoint cold start; timing rows
/// report the best of `reps` repetitions (use 1 for smoke wiring checks,
/// more for stable numbers) and prints a report.
pub fn ladder_memory(reps: usize) -> LadderMemory {
    println!("\n=== Effort-ladder memory footprint & checkpoint cold start ===");
    let cfg = VitConfig {
        name: "ladder-mem".to_string(),
        depth: LADDER_DEPTH,
        ..VitConfig::test_small()
    };
    let backbone = VisionTransformer::new(&cfg, &mut Rng::new(42));
    let ckpt = std::env::temp_dir().join(format!("pivot_ladder_memory_{}.bin", std::process::id()));
    backbone.save(&ckpt).expect("save benchmark checkpoint");
    let image = Matrix::from_fn(cfg.image_size, cfg.image_size, |r, c| {
        ((r * 31 + c * 7) as f32) / 331.0 - 0.5
    });

    let mut rows = Vec::new();
    let mut bit_identical = true;
    for &n in &[2usize, 4, 8] {
        for &int8 in &[false, true] {
            let kernel = if int8 { "int8" } else { "f32" };
            // Resident-memory accounting through the ladder's shared store.
            let levels: Vec<VisionTransformer> = level_efforts(n)
                .iter()
                .map(|&e| {
                    let mut m = backbone.clone();
                    m.set_active_attentions(&active(e));
                    m
                })
                .collect();
            let thresholds = vec![0.5; n - 1];
            let ladder = if int8 {
                EffortLadder::new_int8(levels, thresholds)
            } else {
                EffortLadder::new(levels, thresholds)
            };
            let stats = ladder.share_stats();

            // Cold start A: parse the checkpoint once into a prepared
            // view, derive every level as a cheap Arc re-view, first
            // inference at each level.
            let (cold_prepared_ms, fast_logits) = time_best_ms(reps, || {
                let base = if int8 {
                    VisionTransformer::load_prepared_int8(&ckpt)
                } else {
                    VisionTransformer::load_prepared(&ckpt)
                }
                .expect("load_prepared");
                let logits: Vec<Matrix> = level_efforts(n)
                    .iter()
                    .map(|&e| base.with_active_attentions(&active(e)).infer(&image))
                    .collect();
                logits
            });

            // Cold start B: the classic path — load the mutable model,
            // then clone + mask + prepare per level.
            let (cold_baseline_ms, slow_logits) = time_best_ms(reps, || {
                let model = VisionTransformer::load(&ckpt).expect("load");
                let views: Vec<PreparedModel> = level_efforts(n)
                    .iter()
                    .map(|&e| {
                        let mut m = model.clone();
                        m.set_active_attentions(&active(e));
                        if int8 {
                            m.prepare_int8()
                        } else {
                            m.prepare()
                        }
                    })
                    .collect();
                views
                    .iter()
                    .map(|v| v.infer(&image))
                    .collect::<Vec<Matrix>>()
            });

            for (a, b) in fast_logits.iter().zip(&slow_logits) {
                bit_identical &= a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            }

            rows.push(LadderMemoryRow {
                levels: n,
                kernel,
                single_weight_bytes: ladder.prepared_levels()[0].weight_bytes(),
                total_weight_bytes: ladder.weight_bytes(),
                unique_weight_bytes: ladder.unique_weight_bytes(),
                store_hits: stats.hits,
                store_misses: stats.misses,
                cold_prepared_ms,
                cold_baseline_ms,
            });
        }
    }
    std::fs::remove_file(&ckpt).ok();

    let mut table = Table::new(&[
        "Levels",
        "Kernel",
        "Naive (KiB)",
        "Resident (KiB)",
        "Ratio vs 1 level",
        "Cold start (ms)",
        "vs load+prepare",
    ]);
    for r in &rows {
        table.row_owned(vec![
            format!("{}", r.levels),
            r.kernel.to_string(),
            format!("{:.1}", r.total_weight_bytes as f64 / 1024.0),
            format!("{:.1}", r.unique_weight_bytes as f64 / 1024.0),
            format!("{:.2}x", r.unique_ratio()),
            format!("{:.2}", r.cold_prepared_ms),
            format!("{:.2}x", r.cold_start_speedup()),
        ]);
    }
    println!("{table}");
    println!(
        "fast cold-start logits bit-identical to load-then-prepare: {}",
        if bit_identical {
            "yes"
        } else {
            "NO — CONTRACT VIOLATED"
        }
    );

    LadderMemory {
        rows,
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_memory_meets_the_sharing_and_identity_contract() {
        let report = ladder_memory(1);
        assert!(report.bit_identical, "cold-start paths must agree bitwise");
        assert_eq!(report.rows.len(), 6, "2/4/8 levels x f32/int8");
        for r in &report.rows {
            // Naive footprint is exactly N independent copies...
            assert_eq!(r.total_weight_bytes, r.levels * r.single_weight_bytes);
            // ...but one backbone's worth stays resident (the CI contract
            // allows 1.1x; same-backbone ladders achieve exactly 1.0x).
            assert_eq!(r.unique_weight_bytes, r.single_weight_bytes);
            assert!(
                r.unique_ratio() <= 1.1,
                "{} levels: {}",
                r.levels,
                r.unique_ratio()
            );
            // Every level past the first hits the store on every layer.
            assert_eq!(r.store_hits, (r.levels - 1) * r.store_misses);
            assert!(r.cold_prepared_ms > 0.0 && r.cold_baseline_ms > 0.0);
        }
        // int8 packs weights at a quarter of the f32 footprint.
        let f32_row = &report.rows[0];
        let int8_row = &report.rows[1];
        assert_eq!(
            f32_row.single_weight_bytes,
            4 * int8_row.single_weight_bytes
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LadderMemory {
            rows: vec![LadderMemoryRow {
                levels: 2,
                kernel: "f32",
                single_weight_bytes: 100,
                total_weight_bytes: 200,
                unique_weight_bytes: 100,
                store_hits: 10,
                store_misses: 10,
                cold_prepared_ms: 1.0,
                cold_baseline_ms: 2.0,
            }],
            bit_identical: true,
        };
        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"levels\": 2"));
        assert!(json.contains("\"unique_ratio\": 1.0000"));
        assert!(json.contains("\"cold_start_speedup\": 2.00"));
        assert!(json.trim_end().ends_with(']'));
    }
}
