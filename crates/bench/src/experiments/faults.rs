//! Accuracy under injected faults: the hardened cascade vs. a naive
//! full-effort ViT (DESIGN.md §5).
//!
//! The sweep corrupts the **high-effort** model's weights with an
//! increasing number of faults of each [`FaultKind`] and evaluates two
//! deployments on the same samples:
//!
//! * the **cascade** through [`MultiEffortVit::evaluate_guarded`] — a
//!   faulted high effort degrades gracefully to the cached low-effort
//!   prediction, and the [`DegradationReport`] counts every fallback;
//! * the **baseline**: the faulted full-effort model alone, where a
//!   non-finite logits row has no meaningful argmax and the sample is
//!   simply lost (counted wrong).
//!
//! Everything derives from one seed, so a curve is replayable bit-for-bit.
//! A second part of the experiment demonstrates the checkpoint side of the
//! failure model: PVIT2 files with corrupted bytes are rejected with a
//! typed [`CheckpointError`], never loaded silently and never a panic.

use crate::Table;
use pivot_core::{FaultInjector, FaultKind, MultiEffortVit, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_tensor::Rng;
use pivot_vit::{CheckpointError, VisionTransformer, VitConfig};

/// One point of the accuracy-under-fault curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepPoint {
    /// Fault model injected.
    pub kind: FaultKind,
    /// Number of faults injected into the high-effort / baseline weights.
    pub n_faults: usize,
    /// Cascade accuracy with graceful degradation.
    pub cascade_accuracy: f64,
    /// Samples the cascade served via low-effort fallback.
    pub cascade_fallbacks: usize,
    /// Baseline (single faulted full-effort model) accuracy, counting
    /// samples with non-finite logits as wrong.
    pub baseline_accuracy: f64,
    /// Baseline samples whose logits were non-finite (lost outputs).
    pub baseline_non_finite: usize,
}

/// Everything the fault-injection experiment produces.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The sweep, ordered by fault kind then fault count.
    pub points: Vec<FaultSweepPoint>,
    /// Accuracy of the healthy (fault-free) cascade on the same samples.
    pub healthy_cascade_accuracy: f64,
    /// Samples that escalated because a faulted *low* effort produced a
    /// non-finite entropy (the low-fault demonstration).
    pub low_fault_escalations: usize,
    /// Accuracy of the cascade with the faulted low effort — served by the
    /// healthy high effort via escalation.
    pub low_fault_accuracy: f64,
    /// Whether every corrupted checkpoint was rejected with a typed error.
    pub corrupt_checkpoints_rejected: bool,
}

fn build_models(seed: u64) -> (VisionTransformer, VisionTransformer) {
    let cfg = VitConfig::test_small();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(seed));
    low.set_active_attentions(&[0]);
    let mut high = low.clone();
    high.set_active_attentions(&[0, 1, 2, 3]);
    (low, high)
}

/// Baseline evaluation of one (possibly faulted) model: non-finite logits
/// have no meaningful prediction, so those samples count as wrong.
fn baseline_accuracy(model: &VisionTransformer, samples: &[Sample]) -> (f64, usize) {
    let mut correct = 0usize;
    let mut non_finite = 0usize;
    for s in samples {
        let logits = model.infer(&s.image);
        if logits.is_all_finite() {
            correct += (logits.row_argmax(0) == s.label) as usize;
        } else {
            non_finite += 1;
        }
    }
    (correct as f64 / samples.len().max(1) as f64, non_finite)
}

/// Corrupts saved checkpoints and verifies every one is rejected with a
/// typed error (no silent load, no panic). Returns `false` if any corrupt
/// file loaded.
fn checkpoint_rejection_demo(high: &VisionTransformer, seed: u64) -> bool {
    let path = std::env::temp_dir().join(format!(
        "pivot_fault_injection_{}_{seed}.pvit",
        std::process::id()
    ));
    let mut all_rejected = true;
    if high.save(&path).is_err() {
        return false;
    }
    let Ok(original) = std::fs::read(&path) else {
        return false;
    };
    let mut injector = FaultInjector::new(seed);
    for trial in 0..8 {
        let mut bytes = original.clone();
        injector.corrupt_bytes(&mut bytes, 1 + trial % 3);
        if std::fs::write(&path, &bytes).is_err() {
            all_rejected = false;
            break;
        }
        match VisionTransformer::load(&path) {
            Ok(_) => {
                println!("  trial {trial}: corrupt checkpoint LOADED — contract violated");
                all_rejected = false;
            }
            Err(e) => {
                let variant = match e {
                    CheckpointError::ChecksumMismatch { .. } => "checksum mismatch",
                    CheckpointError::BadMagic => "bad magic",
                    CheckpointError::Corrupt(_) => "corrupt field",
                    CheckpointError::LimitExceeded { .. } => "limit exceeded",
                    CheckpointError::InvalidConfig(_) => "invalid config",
                    CheckpointError::Io(_) => "I/O error",
                };
                println!("  trial {trial}: rejected with typed error ({variant})");
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    all_rejected
}

/// Runs the accuracy-under-fault sweep on `n_samples` synthetic inputs,
/// injecting each count of `fault_counts` faults per [`FaultKind`], all
/// derived from `seed`. Prints paper-style tables and returns the curve.
pub fn fault_injection(n_samples: usize, fault_counts: &[usize], seed: u64) -> FaultReport {
    println!("\n=== Fault injection: graceful cascade degradation vs. naive baseline ===");
    println!("seed {seed}; {n_samples} samples; faults injected into the high-effort weights\n");

    let (low, high) = build_models(seed);
    let samples: Vec<Sample> = Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.1, 0.5, 0.9],
        n_samples.div_ceil(3),
        seed ^ 0x5eed,
    );
    let samples = &samples[..n_samples.min(samples.len())];
    let threshold = 0.6;

    let healthy = MultiEffortVit::new(low.clone(), high.clone(), threshold)
        .with_parallelism(Parallelism::Auto);
    let (healthy_stats, healthy_report) = healthy.evaluate_guarded(samples);
    assert!(
        healthy_report.is_empty(),
        "healthy models must produce an empty degradation report"
    );
    let healthy_cascade_accuracy = healthy_stats.accuracy();
    println!(
        "healthy cascade: accuracy {:.3}, F_H {:.2}, no degradation events\n",
        healthy_cascade_accuracy,
        healthy_stats.f_high()
    );

    let mut table = Table::new(&[
        "Fault kind",
        "Faults",
        "Cascade acc",
        "Fallbacks",
        "Baseline acc",
        "Lost (non-finite)",
    ]);
    let mut points = Vec::new();
    for (k, &kind) in FaultKind::ALL.iter().enumerate() {
        for (c, &n_faults) in fault_counts.iter().enumerate() {
            // One deterministic injector per point; the same stream
            // corrupts the cascade's high effort and the baseline model,
            // so both see the identical physical fault pattern.
            let point_seed = seed
                .wrapping_add(1 + k as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(c as u64);
            let mut faulty_high = high.clone();
            FaultInjector::new(point_seed).inject_params(&mut faulty_high, kind, n_faults);

            let cascade = MultiEffortVit::new(low.clone(), faulty_high.clone(), threshold)
                .with_parallelism(Parallelism::Auto);
            let (stats, degradation) = cascade.evaluate_guarded(samples);
            let (base_acc, base_lost) = baseline_accuracy(&faulty_high, samples);

            let point = FaultSweepPoint {
                kind,
                n_faults,
                cascade_accuracy: stats.accuracy(),
                cascade_fallbacks: degradation.fallbacks(),
                baseline_accuracy: base_acc,
                baseline_non_finite: base_lost,
            };
            table.row_owned(vec![
                kind.label().to_string(),
                format!("{n_faults}"),
                format!("{:.3}", point.cascade_accuracy),
                format!("{}", point.cascade_fallbacks),
                format!("{:.3}", point.baseline_accuracy),
                format!("{base_lost}"),
            ]);
            points.push(point);
        }
    }
    println!("{table}");

    // Low-effort faults: the gate escalates non-finite entropies, so the
    // healthy high effort serves every sample — no accuracy cliff.
    let mut faulty_low = low.clone();
    let low_weights = faulty_low.param_count();
    FaultInjector::new(seed ^ 0x10f).inject_params(
        &mut faulty_low,
        FaultKind::StuckNan,
        low_weights,
    );
    let low_faulted = MultiEffortVit::new(faulty_low, high.clone(), threshold)
        .with_parallelism(Parallelism::Auto);
    let (low_stats, low_report) = low_faulted.evaluate_guarded(samples);
    let low_fault_escalations = low_report.non_finite_at(0);
    println!(
        "faulted LOW effort: {} / {} samples escalated on non-finite entropy; \
         accuracy {:.3} (served by the healthy high effort)\n",
        low_fault_escalations,
        samples.len(),
        low_stats.accuracy()
    );

    println!("corrupted-checkpoint rejection (PVIT2 CRC + caps + typed errors):");
    let corrupt_checkpoints_rejected = checkpoint_rejection_demo(&high, seed ^ 0xc4c);

    FaultReport {
        points,
        healthy_cascade_accuracy,
        low_fault_escalations,
        low_fault_accuracy: low_stats.accuracy(),
        corrupt_checkpoints_rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let report = fault_injection(18, &[0, 8, 4096], 42);
        assert!(report.corrupt_checkpoints_rejected);
        // Zero faults: cascade matches the healthy run, nothing falls back.
        for p in report.points.iter().filter(|p| p.n_faults == 0) {
            assert_eq!(p.cascade_accuracy, report.healthy_cascade_accuracy);
            assert_eq!(p.cascade_fallbacks, 0);
            assert_eq!(p.baseline_non_finite, 0);
        }
        // Saturating NaN faults: the baseline loses every sample, the
        // cascade falls back for every escalated sample and keeps the
        // low effort's accuracy (far above zero).
        let nan_heavy = report
            .points
            .iter()
            .find(|p| p.kind == FaultKind::StuckNan && p.n_faults == 4096)
            .expect("sweep point exists");
        assert_eq!(nan_heavy.baseline_non_finite, 18);
        assert_eq!(nan_heavy.baseline_accuracy, 0.0);
        assert!(nan_heavy.cascade_fallbacks > 0);
        assert!(nan_heavy.cascade_accuracy > 0.0);
        assert!(nan_heavy.cascade_accuracy >= nan_heavy.baseline_accuracy);
        // A fully faulted low effort escalates everything and keeps the
        // healthy high effort's accuracy.
        assert_eq!(report.low_fault_escalations, 18);
        assert!(report.low_fault_accuracy > 0.0);
    }

    #[test]
    fn fault_sweep_is_reproducible_from_the_seed() {
        let a = fault_injection(9, &[2], 7);
        let b = fault_injection(9, &[2], 7);
        assert_eq!(a.points, b.points);
    }
}
