//! Online serving under load: throughput, tail latency, and the
//! robustness ledger of `pivot-serve`.
//!
//! This is part of the reproduction's systems trajectory rather than a
//! paper figure: PIVOT's offline story (effort cascades bit-identical
//! across batch splits) only matters in production if the serving layer
//! keeps those guarantees under overload. The experiment drives an
//! **open-loop** traffic generator (arrivals keep coming whether or not
//! the server keeps up — the load pattern closed-loop clients can't
//! produce) through three scenarios:
//!
//! * `steady` — arrivals at ~half the measured service rate; the healthy
//!   regime where everything should complete at full effort.
//! * `burst` — arrivals at ~2x the service rate against a small bounded
//!   queue; the overload regime where the contract is *typed resolution*
//!   (shed / degraded / timed-out), never an unbounded queue.
//! * `chaos` — steady arrivals with the first inference batch forced to
//!   panic; the isolation regime where one batch fails typed and the
//!   loop keeps serving.
//!
//! Every scenario asserts the ledger identity `submitted == shed +
//! completed + degraded + timed_out + failed` and that served responses
//! beat their deadline (late results resolve as timeouts, so the served
//! p99 is bounded by the deadline budget by construction).

use crate::Table;
use pivot_core::{evaluate_guarded_slice, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_serve::{
    ChaosConfig, OverloadPolicy, ServeClock, ServeConfig, ServeOutcome, Server, Ticket,
};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{PreparedModel, VisionTransformer, VitConfig};
use std::time::{Duration, Instant};

/// One scenario's measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Scenario name (`steady` / `burst` / `chaos`).
    pub name: &'static str,
    /// Requests offered by the generator.
    pub offered: u64,
    /// Rejected at admission (typed backpressure).
    pub shed: u64,
    /// Served at gate-chosen effort.
    pub completed: u64,
    /// Served below fidelity (effort-capped or fault fallback).
    pub degraded: u64,
    /// Resolved as deadline misses.
    pub timed_out: u64,
    /// Failed typed (batch panic).
    pub failed: u64,
    /// Batches that panicked and were isolated.
    pub panics: u64,
    /// Overload-controller downshift steps.
    pub downshifts: u64,
    /// Effort cap at drain.
    pub final_cap: usize,
    /// Wall-clock duration of the scenario (submit to last resolution).
    pub wall_ms: f64,
    /// Resolved requests per second over the scenario wall time.
    pub throughput_rps: f64,
    /// Median latency of *served* (completed + degraded) responses, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency of served responses, ms.
    pub p99_ms: f64,
    /// The per-request deadline the generator attached, ms.
    pub deadline_ms: f64,
    /// Whether the ledger balanced at drain.
    pub accounted: bool,
}

impl ServeScenario {
    /// Requests that reached a typed terminal state after admission.
    pub fn resolved(&self) -> u64 {
        self.completed + self.degraded + self.timed_out + self.failed
    }

    /// Overload pressure indicator: anything other than a full-fidelity
    /// completion.
    pub fn pressure(&self) -> u64 {
        self.shed + self.degraded + self.timed_out + self.failed
    }
}

/// Full report: one row per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// `steady`, `burst`, `chaos` in that order.
    pub scenarios: Vec<ServeScenario>,
    /// Calibrated per-request service time the generator derived its
    /// arrival rates from, microseconds.
    pub service_us: f64,
}

impl ServeBench {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> &ServeScenario {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no scenario named {name}"))
    }

    /// Serializes the report as a JSON array (for `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"scenario\": \"{}\", \"offered\": {}, \"shed\": {}, \
                 \"completed\": {}, \"degraded\": {}, \"timed_out\": {}, \
                 \"failed\": {}, \"panics\": {}, \"downshifts\": {}, \
                 \"final_cap\": {}, \"throughput_rps\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"deadline_ms\": {:.3}, \
                 \"accounted\": {}}}{}\n",
                s.name,
                s.offered,
                s.shed,
                s.completed,
                s.degraded,
                s.timed_out,
                s.failed,
                s.panics,
                s.downshifts,
                s.final_cap,
                s.throughput_rps,
                s.p50_ms,
                s.p99_ms,
                s.deadline_ms,
                s.accounted,
                if i + 1 == self.scenarios.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Open-loop arrival schedule for one scenario: `burst_size` back-to-back
/// arrivals per tick, one tick per `gap`. Submitting in small bursts
/// rather than one-by-one keeps the offered rate honest — per-request
/// sleeps are quantized far above the microsecond interarrivals these
/// ladders call for.
#[derive(Debug, Clone, Copy)]
struct Traffic {
    requests: usize,
    burst_size: usize,
    gap: Duration,
    deadline: Duration,
}

fn ladder() -> (Vec<PreparedModel>, Vec<f32>) {
    let mut low = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(60));
    low.set_active_attentions(&[0]);
    let mut high = VisionTransformer::new(&VitConfig::test_small(), &mut Rng::new(61));
    high.set_active_attentions(&[0, 1]);
    (vec![low.prepare(), high.prepare()], vec![0.5])
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Measures the batched per-request service time of the ladder: one
/// guarded sweep over `batch` images, best of `reps`.
fn calibrate_service_us(
    levels: &[PreparedModel],
    thresholds: &[f32],
    set: &[Sample],
    reps: usize,
) -> f64 {
    let images: Vec<&Matrix> = set.iter().map(|s| &s.image).collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (outcomes, _) =
            evaluate_guarded_slice(levels, thresholds, 1, &images, Parallelism::Off);
        let elapsed = start.elapsed().as_secs_f64() * 1e6 / outcomes.len() as f64;
        best = best.min(elapsed);
    }
    best
}

/// Drives one open-loop scenario against a fresh server and folds the
/// ledger plus client-side latencies into a [`ServeScenario`].
fn run_scenario(
    name: &'static str,
    levels: Vec<PreparedModel>,
    thresholds: Vec<f32>,
    config: ServeConfig,
    chaos: ChaosConfig,
    set: &[Sample],
    traffic: Traffic,
) -> ServeScenario {
    let server = Server::spawn_with(levels, thresholds, config, ServeClock::wall(), chaos);
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(traffic.requests);
    for i in 0..traffic.requests {
        let image = set[i % set.len()].image.clone();
        if let Ok(t) = server.submit(image, traffic.deadline) {
            tickets.push(t);
        }
        if (i + 1) % traffic.burst_size.max(1) == 0 && !traffic.gap.is_zero() {
            std::thread::sleep(traffic.gap);
        }
    }

    let mut served_latencies = Vec::new();
    for ticket in tickets {
        let resp = ticket.wait().expect("drain contract resolves every ticket");
        if let ServeOutcome::Completed(_) | ServeOutcome::Degraded(_) = &resp.outcome {
            served_latencies.push(resp.latency);
        }
    }
    let h = server.shutdown();
    let wall = start.elapsed();
    served_latencies.sort();

    ServeScenario {
        name,
        offered: h.submitted,
        shed: h.shed,
        completed: h.completed,
        degraded: h.degraded,
        timed_out: h.timed_out,
        failed: h.failed,
        panics: h.panics,
        downshifts: h.downshifts,
        final_cap: h.effort_cap,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: h.resolved() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&served_latencies, 0.50),
        p99_ms: percentile_ms(&served_latencies, 0.99),
        deadline_ms: traffic.deadline.as_secs_f64() * 1e3,
        accounted: h.accounted(),
    }
}

/// Runs the serving benchmark: calibrates the ladder's service rate, then
/// drives the steady / burst / chaos scenarios and prints the report.
/// `smoke` shrinks the request counts for CI wiring checks.
pub fn serve_bench(smoke: bool) -> ServeBench {
    println!("\n=== Online serving under load (pivot-serve) ===");
    let (levels, thresholds) = ladder();
    let set = Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.2, 0.8], 16, 62);
    let service_us = calibrate_service_us(&levels, &thresholds, &set, if smoke { 2 } else { 5 });
    println!("calibrated service time: {service_us:.1} us/request (batched, effort-gated)");
    let service = Duration::from_nanos((service_us * 1e3) as u64).max(Duration::from_micros(20));

    let n = if smoke { 96 } else { 400 };
    // Deadlines sized in service-time units: generous enough that the
    // steady scenario completes everything, tight enough that a burst's
    // queueing delay can actually expire requests.
    let deadline = service * 400;
    let overload = OverloadPolicy {
        queue_budget: service * 32,
        recover_ratio: 0.5,
        recover_after: 4,
    };
    let config = |queue_capacity| ServeConfig {
        queue_capacity,
        max_batch: 16,
        batch_window: service,
        parallelism: Parallelism::Off,
        overload,
        threshold: None,
    };

    // Steady: bursts of 8 at half the service rate. Burst: bursts of 32
    // (2x the bounded queue) at twice the service rate, so the queue must
    // answer with typed backpressure rather than buffering.
    let steady = run_scenario(
        "steady",
        levels.clone(),
        thresholds.clone(),
        config(256),
        ChaosConfig::default(),
        &set,
        Traffic {
            requests: n,
            burst_size: 8,
            gap: service * 16,
            deadline,
        },
    );
    let burst = run_scenario(
        "burst",
        levels.clone(),
        thresholds.clone(),
        config(16),
        ChaosConfig::default(),
        &set,
        Traffic {
            requests: 2 * n,
            burst_size: 32,
            gap: service * 16,
            deadline,
        },
    );
    // The chaos deadline is an order of magnitude looser than the others:
    // a panic unwind (backtrace capture included) costs wall time that
    // scales with machine load, not with the calibrated service rate, and
    // the scenario's contract is that post-panic requests get *served* —
    // which a deadline sized only for healthy batches can turn into
    // timeouts on a loaded CI host.
    let chaos = run_scenario(
        "chaos",
        levels,
        thresholds,
        config(256),
        ChaosConfig {
            panic_batches: vec![0],
            ..ChaosConfig::default()
        },
        &set,
        Traffic {
            requests: n,
            burst_size: 8,
            gap: service * 16,
            deadline: deadline * 10,
        },
    );

    let report = ServeBench {
        scenarios: vec![steady, burst, chaos],
        service_us,
    };

    let mut table = Table::new(&[
        "Scenario",
        "Offered",
        "Shed",
        "Completed",
        "Degraded",
        "Timed out",
        "Failed",
        "Thru (req/s)",
        "p50 (ms)",
        "p99 (ms)",
        "Ledger",
    ]);
    for s in &report.scenarios {
        table.row_owned(vec![
            s.name.to_string(),
            format!("{}", s.offered),
            format!("{}", s.shed),
            format!("{}", s.completed),
            format!("{}", s.degraded),
            format!("{}", s.timed_out),
            format!("{}", s.failed),
            format!("{:.0}", s.throughput_rps),
            format!("{:.2}", s.p50_ms),
            format!("{:.2}", s.p99_ms),
            if s.accounted { "balanced" } else { "LEAKED" }.to_string(),
        ]);
    }
    println!("{table}");
    let burst = report.scenario("burst");
    println!(
        "burst pressure: {} typed non-completions ({} downshifts, final effort cap {})",
        burst.pressure(),
        burst.downshifts,
        burst.final_cap,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_serve_bench_keeps_every_contract() {
        let report = serve_bench(true);
        assert_eq!(report.scenarios.len(), 3);
        for s in &report.scenarios {
            assert!(s.accounted, "{}: ledger leaked", s.name);
            assert_eq!(
                s.offered,
                s.shed + s.resolved(),
                "{}: every offer must resolve typed",
                s.name
            );
            // Served responses beat their deadline by construction (late
            // results resolve as timeouts), so the served p99 is bounded
            // by the deadline budget.
            assert!(
                s.p99_ms <= s.deadline_ms,
                "{}: served p99 {:.2} ms exceeds deadline {:.2} ms",
                s.name,
                s.p99_ms,
                s.deadline_ms
            );
        }
        let chaos = report.scenario("chaos");
        assert_eq!(chaos.panics, 1, "the injected panic must fire once");
        assert!(chaos.failed > 0, "the panicked batch fails typed");
        // The loop must survive the panic and keep serving. The slow
        // panic unwind ages the queue, so the overload controller may
        // legitimately serve the survivors degraded.
        assert!(
            chaos.completed + chaos.degraded > 0,
            "the loop must survive the panic and keep serving"
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let report = ServeBench {
            scenarios: vec![ServeScenario {
                name: "steady",
                offered: 10,
                shed: 0,
                completed: 10,
                degraded: 0,
                timed_out: 0,
                failed: 0,
                panics: 0,
                downshifts: 0,
                final_cap: 1,
                wall_ms: 5.0,
                throughput_rps: 2000.0,
                p50_ms: 0.5,
                p99_ms: 1.0,
                deadline_ms: 100.0,
                accounted: true,
            }],
            service_us: 50.0,
        };
        let json = report.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"scenario\": \"steady\""));
        assert!(json.contains("\"throughput_rps\": 2000.0"));
        assert!(json.contains("\"accounted\": true"));
        assert!(json.trim_end().ends_with(']'));
    }
}
