//! Experiment harnesses that regenerate every table and figure of the
//! PIVOT paper (see `DESIGN.md` §8 for the index).
//!
//! Each experiment is a function in [`experiments`] that takes the shared
//! [`Reproduction`] state and prints a paper-style report (with the paper's
//! reference values alongside). The binaries in `src/bin/` are thin
//! wrappers; `all_experiments` runs everything against one shared state and
//! is what `EXPERIMENTS.md` is produced from.
//!
//! Trained models are checkpointed under `target/pivot-cache/` so repeated
//! runs skip the (single-core) training.

#![deny(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{FamilyArtifacts, Profile, Reproduction};
pub use table::Table;
