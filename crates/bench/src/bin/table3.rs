//! Regenerates Table3 of the paper (see DESIGN.md section 5).
fn main() {
    let repro = pivot_bench::Reproduction::load();
    pivot_bench::experiments::table3(&repro);
}
