//! Online serving under load (see DESIGN.md, "Serving failure model"):
//! open-loop steady / 2x-burst / chaos traffic through the `pivot-serve`
//! engine, reporting throughput and p50/p99 served latency per scenario
//! and auditing the robustness ledger. Writes the report to
//! `BENCH_serve.json` at the workspace root.
//!
//! `serve_bench smoke` shrinks the request counts for CI and asserts the
//! structural contracts: every offer resolves typed, the ledger balances,
//! served p99 stays within the deadline budget, and the injected batch
//! panic is isolated. The full run additionally expects the 2x burst to
//! exhibit visible overload pressure (sheds, degradations, or timeouts).
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let report = pivot_bench::experiments::serve_bench(smoke);

    for s in &report.scenarios {
        assert!(s.accounted, "{}: ledger leaked requests", s.name);
        assert_eq!(
            s.offered,
            s.shed + s.completed + s.degraded + s.timed_out + s.failed,
            "{}: every offered request must resolve typed",
            s.name
        );
        assert!(
            s.p99_ms <= s.deadline_ms,
            "{}: served p99 {:.2} ms exceeds the {:.2} ms deadline budget",
            s.name,
            s.p99_ms,
            s.deadline_ms
        );
    }
    let chaos = report.scenario("chaos");
    assert_eq!(
        chaos.panics, 1,
        "injected batch panic must fire exactly once"
    );
    assert!(chaos.failed > 0, "the panicked batch must fail typed");
    assert!(
        chaos.completed + chaos.degraded > 0,
        "the serve loop must survive the panic and keep serving"
    );
    if !smoke {
        let burst = report.scenario("burst");
        assert!(
            burst.pressure() > 0,
            "a sustained 2x burst against a 16-deep queue must surface \
             typed overload (shed/degraded/timed-out), got none"
        );
    }

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
