//! Runs every table and figure reproduction against one shared state.
//! This is the source of the numbers recorded in EXPERIMENTS.md.
use pivot_bench::experiments as exp;

fn main() {
    let repro = pivot_bench::Reproduction::load();
    exp::fig1b(&repro.sim);
    exp::fig3a(&repro);
    exp::fig4a(&repro, 6, 6);
    exp::fig4b();
    exp::fig4c(&repro);
    exp::table2(&repro);
    exp::table3(&repro);
    exp::fig6a(&repro);
    exp::fig6b(&repro);
    exp::table4(&repro);
    exp::fig1c(&repro);
    exp::fig7(&repro);
    exp::fig8(&repro);
    exp::fig9(&repro);
    exp::ablation_path_selection(&repro, 6);
    exp::ablation_entropy_regularizer(&repro);
    exp::ablation_gating(&repro);
    exp::ablation_dataflow();
    exp::ablation_ladder(&repro);
    exp::ablation_quantization(&repro);
    println!("\nAll experiments complete.");
}
