//! Runs the ablation suite of DESIGN.md section 6: path selection, entropy
//! regularizer, gating policy, dataflow, ladder depth and quantization.
use pivot_bench::experiments as exp;

fn main() {
    let repro = pivot_bench::Reproduction::load();
    exp::ablation_path_selection(&repro, 6);
    exp::ablation_entropy_regularizer(&repro);
    exp::ablation_gating(&repro);
    exp::ablation_dataflow();
    exp::ablation_ladder(&repro);
    exp::ablation_quantization(&repro);
    println!("\nAblation suite complete.");
}
