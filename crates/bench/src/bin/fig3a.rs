//! Regenerates Fig3a of the paper (see DESIGN.md section 5).
fn main() {
    let repro = pivot_bench::Reproduction::load();
    pivot_bench::experiments::fig3a(&repro);
}
