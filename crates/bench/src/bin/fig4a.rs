//! Regenerates Fig. 4a: path accuracy vs Path-Score at a fixed effort.
fn main() {
    let repro = pivot_bench::Reproduction::load();
    pivot_bench::experiments::fig4a(&repro, 6, 6);
}
