//! Per-layer PIVOT-Sim profile of a ViT on the ZCU102 — the per-layer view
//! a SCALE-Sim-class simulator exports.
//!
//! Usage: `cargo run -p pivot-bench --bin profile_vit [deit|lvvit] [effort]`

use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let geom = match args.get(1).map(String::as_str) {
        Some("lvvit") => VitGeometry::lvvit_s(),
        _ => VitGeometry::deit_s(),
    };
    let effort: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(geom.depth)
        .min(geom.depth);
    let mask: Vec<bool> = (0..geom.depth).map(|i| i < effort).collect();

    let sim = Simulator::new(AcceleratorConfig::zcu102());
    let (perf, layers) = sim.simulate_detailed(&geom, &mask);

    println!(
        "{} @ effort {effort} on ZCU102 (64x36 IS, 125 MHz)",
        geom.name
    );
    println!(
        "{:<16} {:>4} {:>10} {:>12} {:>12} {:>7}",
        "layer", "unit", "delay (ms)", "MACs", "DRAM bytes", "util %"
    );
    for l in &layers {
        println!(
            "{:<16} {:>4} {:>10.4} {:>12} {:>12} {:>7.1}",
            l.name,
            if l.on_ps { "PS" } else { "PL" },
            l.delay_ms,
            l.macs,
            l.dram_bytes,
            100.0 * l.utilization
        );
    }
    println!("\ntotal: {perf}");
}
