//! Measures the parallel evaluation engine against sequential execution:
//! cascade `evaluate` over 1000 samples (batched vs. the per-sample PR 1
//! path, and sequential vs. the worker pool), `Phase2Search::run`, and
//! the cached vs. uncached threshold sweep (see DESIGN.md, "The
//! evaluation engine"). Needs no trained models — throughput and
//! bit-identity do not depend on weights.
fn main() {
    let report = pivot_bench::experiments::parallel_speedup(1000);
    assert!(report.bit_identical, "determinism contract violated");
    println!(
        "\nbatched cascade evaluation: {:.2}x over the per-sample path",
        report.batch_speedup()
    );
}
