//! Packed-int8 inference vs. the fake-quant f32 reference (see DESIGN.md,
//! "The packed int8 inference path"): the same batched evaluation of a
//! trained model, once against the fake-quant prepared view, once against
//! the packed `i8` panels with the integer GEMM (packing cost included).
//!
//! Always asserts the numeric contract — logits within the documented
//! tolerance, weights exactly a quarter of the bytes, cascade predictions
//! argmax-identical to the fake-quant reference on the full synthetic
//! eval set. `int8_speedup smoke` runs a reduced sample count for CI and
//! skips only the timing assertion, which is reserved for the full run.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let n_samples = if smoke { 96 } else { 1000 };
    let report = pivot_bench::experiments::int8_speedup(n_samples);
    assert!(
        report.tolerance_ok(),
        "int8 logits deviate {:.3} from the fake-quant reference (tolerance {})",
        report.max_rel_diff,
        pivot_bench::experiments::INT8_LOGIT_TOL
    );
    assert!(
        report.argmax_identical(),
        "int8 cascade predictions diverged from the fake-quant reference: {}/{} agree",
        report.cascade_agree,
        report.cascade_total
    );
    assert_eq!(
        report.weight_ratio, 4.0,
        "packed weights must be exactly a quarter of the reference bytes"
    );
    println!(
        "\nint8 batched evaluation: {:.2}x over the fake-quant reference",
        report.speedup()
    );
    // The integer GEMM beat the then-scalar f32 kernel >2x when this
    // path landed; the f32 SIMD microkernel (DESIGN.md §4f) has since
    // closed the arithmetic gap, so on AVX2 hosts the two paths run at
    // parity and int8's enduring win is the exact 4x weight-byte
    // reduction asserted above. The floor guards against a real kernel
    // regression (a broken pack or sweep is an order of magnitude
    // slower), not a speedup claim.
    if !smoke {
        assert!(
            report.speedup() >= 0.8,
            "int8 batched eval {:.2}x vs fake-quant — below the parity floor",
            report.speedup()
        );
    }
}
