//! Dispatched f32 GEMM vs. the naive reference (see DESIGN.md §4f): the
//! packed SIMD microkernel (or the scalar dispatch ladder on non-AVX2
//! hosts) timed against `matmul_naive` at the shapes the tiny ViTs
//! actually execute.
//!
//! Always asserts the numeric contracts — every benched product inside
//! the documented fused-accumulation tolerance, and cascade predictions
//! through the prepared views argmax-identical to the gate replayed from
//! unprepared per-sample inference — plus the no-regression timing
//! contract (dispatched never slower than naive at any benched shape;
//! this is the point of dispatching, and it holds on scalar hosts too,
//! where the chosen arm is the same loop as naive). `f32_speedup smoke`
//! runs fewer timing iterations for CI and skips only the SIMD-speedup
//! floor, which is reserved for the full run.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let iters = if smoke { 20 } else { 200 };
    let report = pivot_bench::experiments::f32_speedup(iters);
    assert!(
        report.tolerance_ok(),
        "dispatched GEMM deviates {:.3}x the documented fused tolerance",
        report.max_tolerance_ratio
    );
    assert!(
        report.argmax_identical(),
        "prepared cascade diverged from the unprepared gate: {}/{} agree",
        report.cascade_agree,
        report.cascade_total
    );
    assert!(
        report.no_shape_regresses(),
        "dispatched GEMM slower than naive at a benched shape (min speedup {:.2}x)",
        report.min_speedup()
    );
    println!(
        "\ndispatched f32 GEMM: {:.2}x minimum speedup over naive across benched shapes",
        report.min_speedup()
    );
    // On SIMD hosts the microkernel's worst benched shape still clears
    // 2x in isolation (see BENCH_matmul); the floor leaves slack for a
    // loaded machine.
    if !smoke && report.simd {
        assert!(
            report.min_speedup() >= 1.5,
            "SIMD GEMM only {:.2}x faster than naive at its worst benched shape",
            report.min_speedup()
        );
    }
}
