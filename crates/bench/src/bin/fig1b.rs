//! Regenerates Fig. 1b: delay distribution across ViT modules.
fn main() {
    let sim = pivot_bench::Reproduction::simulator();
    pivot_bench::experiments::fig1b(&sim);
}
