//! Accuracy-under-fault curves: the hardened entropy cascade (graceful
//! degradation to the cached low-effort prediction, DESIGN.md §5) vs. a
//! naive single full-effort ViT whose non-finite outputs are simply lost.
//! Also demonstrates that byte-corrupted PVIT2 checkpoints are rejected
//! with typed errors. Fully deterministic from the fixed seed.
//!
//! `fault_injection smoke` runs a reduced sweep for CI.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let (n_samples, counts): (usize, &[usize]) = if smoke {
        (18, &[0, 8, 4096])
    } else {
        (120, &[0, 1, 4, 16, 64, 4096])
    };
    let report = pivot_bench::experiments::fault_injection(n_samples, counts, 42);

    assert!(
        report.corrupt_checkpoints_rejected,
        "a corrupted checkpoint was loaded silently"
    );
    // The contract the curves must show: wherever the baseline loses
    // samples to non-finite logits, the cascade serves every sample and
    // never does worse.
    for p in &report.points {
        if p.baseline_non_finite > 0 {
            assert!(
                p.cascade_fallbacks > 0,
                "{} x{}: baseline lost samples but the cascade never fell back",
                p.kind.label(),
                p.n_faults
            );
            assert!(
                p.cascade_accuracy >= p.baseline_accuracy,
                "{} x{}: degraded cascade ({:.3}) below baseline ({:.3})",
                p.kind.label(),
                p.n_faults,
                p.cascade_accuracy,
                p.baseline_accuracy
            );
        }
        if p.n_faults == 0 {
            assert_eq!(p.cascade_accuracy, report.healthy_cascade_accuracy);
            assert_eq!(p.cascade_fallbacks, 0);
        }
    }
    println!(
        "\ngraceful degradation verified: healthy accuracy {:.3}; \
         faulted-low escalations {}; corrupt checkpoints rejected",
        report.healthy_cascade_accuracy, report.low_fault_escalations
    );
}
