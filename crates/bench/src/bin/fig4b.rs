//! Regenerates Fig. 4b: Phase-2 design-space size, random vs PIVOT.
fn main() {
    pivot_bench::experiments::fig4b();
}
