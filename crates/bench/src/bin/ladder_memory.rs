//! Effort-ladder resident memory and checkpoint cold start (see
//! DESIGN.md, "Content-addressed weight sharing"): 2/4/8-level ladders
//! over one backbone, f32 and int8, measuring what the shared
//! `PreparedStore` keeps resident versus naive per-level preparation,
//! and `load_prepared`'s checkpoint-to-first-inference latency versus
//! the load-then-prepare path. Writes the report to `BENCH_ladder.json`
//! at the workspace root.
//!
//! `ladder_memory smoke` runs a single timing repetition for CI and
//! asserts only the memory-sharing and bit-identity contracts — the
//! cold-start speedup assertion is reserved for the full run.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let reps = if smoke { 1 } else { 5 };
    let report = pivot_bench::experiments::ladder_memory(reps);

    assert!(
        report.bit_identical,
        "load_prepared logits must be bit-identical to load-then-prepare"
    );
    for row in &report.rows {
        assert!(
            row.unique_ratio() <= 1.1,
            "{}-level {} ladder holds {:.2}x a single backbone (limit 1.1x)",
            row.levels,
            row.kernel,
            row.unique_ratio()
        );
    }
    if !smoke {
        for row in &report.rows {
            assert!(
                row.cold_start_speedup() >= 1.0,
                "{}-level {} cold start slower than load+prepare: {:.2}x",
                row.levels,
                row.kernel,
                row.cold_start_speedup()
            );
        }
    }

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ladder.json");
    std::fs::write(path, json).expect("write BENCH_ladder.json");
    println!("\nwrote {path}");
}
