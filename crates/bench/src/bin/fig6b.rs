//! Regenerates Fig6b of the paper (see DESIGN.md section 5).
fn main() {
    let repro = pivot_bench::Reproduction::load();
    pivot_bench::experiments::fig6b(&repro);
}
