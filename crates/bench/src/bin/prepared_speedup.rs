//! Prepared-view vs. per-chunk-rematerializing batched evaluation of an
//! Int8 model (see DESIGN.md, "The prepared inference view"): the same
//! chunked sweep, once against a view prepared up front (preparation cost
//! included), once refitting quantizers and rematerializing weights per
//! chunk. Logits must be bit-identical; the delta is pure overhead.
//!
//! `prepared_speedup smoke` runs a reduced sample count for CI and only
//! asserts the bit-identity contract — the timing assertion is reserved
//! for the full run, which uses 1000 samples.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let n_samples = if smoke { 96 } else { 1000 };
    let report = pivot_bench::experiments::prepared_speedup(n_samples);
    assert!(
        report.bit_identical,
        "prepared logits must be bit-identical to the rematerializing path"
    );
    println!(
        "\nprepared batched evaluation: {:.2}x over per-chunk rematerialization",
        report.speedup()
    );
    if !smoke {
        assert!(
            report.speedup() >= 1.3,
            "prepared batched eval only {:.2}x faster than rematerializing",
            report.speedup()
        );
    }
}
