//! Serving under difficulty drift (see DESIGN.md §7): replays each drift
//! schedule through the deterministic `ReplayEngine` twice — once with
//! the frozen Phase 2-style threshold, once with the adaptive
//! `ThresholdController` — and compares back-half `F_L` and simulated
//! energy-per-request. Writes the report to `BENCH_drift.json` at the
//! workspace root.
//!
//! `drift_bench smoke` shrinks the stream and runs only the headline
//! `ramp` plus the `stationary` control, asserting the acceptance bar:
//! both ledgers balance, the adaptive policy's back-half `F_L` beats the
//! static policy's under hardening drift, and it does so at equal or
//! better energy per request. The full run additionally demands the
//! issue's quantitative bar on the ramp: adaptive within ±5% of the LEC
//! while static degrades ≥ 15%.
fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let report = pivot_bench::experiments::drift_bench(smoke);

    for s in &report.scenarios {
        assert!(
            s.static_run.accounted && s.adaptive_run.accounted,
            "{}: ledger leaked requests",
            s.name
        );
        assert_eq!(s.static_run.retunes, 0, "{}: static policy retuned", s.name);
    }
    let ramp = report.scenario("ramp");
    assert!(
        ramp.adaptive_run.back_f_low > ramp.static_run.back_f_low,
        "adaptive back-half F_L {:.3} must beat static {:.3} under hardening drift",
        ramp.adaptive_run.back_f_low,
        ramp.static_run.back_f_low
    );
    assert!(
        ramp.adaptive_run.mean_energy_j <= ramp.static_run.mean_energy_j,
        "adaptive energy {:.4} J/req must not exceed static {:.4} J/req",
        ramp.adaptive_run.mean_energy_j,
        ramp.static_run.mean_energy_j
    );
    if !smoke {
        let lec = report.lec;
        let static_shortfall = (lec - ramp.static_run.back_f_low) / lec;
        let adaptive_shortfall = (lec - ramp.adaptive_run.back_f_low) / lec;
        assert!(
            static_shortfall >= 0.15,
            "static back-half F_L {:.3} degraded only {:.0}% (need >= 15%)",
            ramp.static_run.back_f_low,
            static_shortfall * 100.0
        );
        assert!(
            adaptive_shortfall.abs() <= 0.05,
            "adaptive back-half F_L {:.3} outside +/-5% of LEC {lec}",
            ramp.adaptive_run.back_f_low
        );
    }

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_drift.json");
    std::fs::write(path, json).expect("write BENCH_drift.json");
    println!("\nwrote {path}");
}
