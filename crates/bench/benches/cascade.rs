//! Cascade inference cost: easy inputs (low effort only) vs hard inputs
//! (low + high re-computation) vs always-full baseline, plus the batched
//! evaluation engine sequential vs. worker-pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_core::{MultiEffortVit, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{VisionTransformer, VitConfig};

fn bench_cascade(c: &mut Criterion) {
    let cfg = VitConfig::tiny();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(0));
    low.set_active_attentions(&[0, 1, 2]);
    let high = VisionTransformer::new(&cfg, &mut Rng::new(0));
    let mut rng = Rng::new(2);
    let image = Matrix::rand_uniform(32, 32, 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("cascade");
    group.sample_size(20);

    // Threshold 1.0: every input exits at the low effort (easy-path cost).
    let easy_gate = MultiEffortVit::new(low.clone(), high.clone(), 1.0);
    group.bench_function("low-exit inference", |b| {
        b.iter(|| easy_gate.infer(black_box(&image)))
    });

    // Threshold 0.0: every input escalates (worst-case re-computation).
    let hard_gate = MultiEffortVit::new(low.clone(), high.clone(), 0.0);
    group.bench_function("escalated inference", |b| {
        b.iter(|| hard_gate.infer(black_box(&image)))
    });

    // The always-full baseline for comparison.
    group.bench_function("baseline full ViT", |b| {
        b.iter(|| high.infer(black_box(&image)))
    });

    group.finish();
}

/// Batched evaluation throughput: the sequential loop vs. the scoped
/// worker pool, and the per-threshold sweep vs. one `CascadeCache`. The
/// parallel variants are bit-identical to sequential by contract, so
/// this group measures pure engine overhead/speedup.
fn bench_batched_evaluation(c: &mut Criterion) {
    let cfg = VitConfig::test_small();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(0));
    low.set_active_attentions(&[0, 1]);
    let high = VisionTransformer::new(&cfg, &mut Rng::new(0));
    let cascade = MultiEffortVit::new(low, high, 0.6);

    let samples: Vec<Sample> =
        Dataset::generate_difficulty_stripes(&DatasetConfig::small(), &[0.1, 0.5, 0.9], 32, 21);

    let mut group = c.benchmark_group("batched-evaluation");
    group.sample_size(10);

    group.bench_function("evaluate sequential", |b| {
        b.iter(|| cascade.evaluate_with(black_box(&samples), Parallelism::Off))
    });
    group.bench_function("evaluate parallel", |b| {
        b.iter(|| cascade.evaluate_with(black_box(&samples), Parallelism::Auto))
    });

    let thresholds: Vec<f32> = (0..=20).map(|i| i as f32 / 20.0).collect();
    group.bench_function("F_L sweep uncached", |b| {
        b.iter(|| {
            thresholds
                .iter()
                .map(|&th| cascade.f_low_at(black_box(&samples), th))
                .collect::<Vec<f64>>()
        })
    });
    group.bench_function("F_L sweep via cache", |b| {
        b.iter(|| cascade.cache(black_box(&samples)).f_low_curve(&thresholds))
    });

    group.finish();
}

criterion_group!(benches, bench_cascade, bench_batched_evaluation);
criterion_main!(benches);
