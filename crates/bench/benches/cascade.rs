//! Cascade inference cost: easy inputs (low effort only) vs hard inputs
//! (low + high re-computation) vs always-full baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_core::MultiEffortVit;
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{VisionTransformer, VitConfig};

fn bench_cascade(c: &mut Criterion) {
    let cfg = VitConfig::tiny();
    let mut low = VisionTransformer::new(&cfg, &mut Rng::new(0));
    low.set_active_attentions(&[0, 1, 2]);
    let high = VisionTransformer::new(&cfg, &mut Rng::new(0));
    let mut rng = Rng::new(2);
    let image = Matrix::rand_uniform(32, 32, 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("cascade");
    group.sample_size(20);

    // Threshold 1.0: every input exits at the low effort (easy-path cost).
    let easy_gate = MultiEffortVit::new(low.clone(), high.clone(), 1.0);
    group.bench_function("low-exit inference", |b| {
        b.iter(|| easy_gate.infer(black_box(&image)))
    });

    // Threshold 0.0: every input escalates (worst-case re-computation).
    let hard_gate = MultiEffortVit::new(low.clone(), high.clone(), 0.0);
    group.bench_function("escalated inference", |b| {
        b.iter(|| hard_gate.infer(black_box(&image)))
    });

    // The always-full baseline for comparison.
    group.bench_function("baseline full ViT", |b| {
        b.iter(|| high.infer(black_box(&image)))
    });

    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
