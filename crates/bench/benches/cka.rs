//! CKA computation cost at calibration-batch scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_cka::{linear_cka, stack_flattened, CkaMatrix};
use pivot_tensor::{Matrix, Rng};

fn bench_cka(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let mut group = c.benchmark_group("cka");
    group.sample_size(15);

    // A 128-image batch of flattened tiny-ViT activations (17 x 64).
    let x = Matrix::randn(128, 17 * 64, 1.0, &mut rng);
    let y = Matrix::randn(128, 17 * 64, 1.0, &mut rng);
    group.bench_function("linear_cka 128x1088", |b| {
        b.iter(|| linear_cka(black_box(&x), black_box(&y)))
    });

    let samples: Vec<Matrix> = (0..64)
        .map(|_| Matrix::randn(17, 64, 1.0, &mut rng))
        .collect();
    group.bench_function("stack_flattened 64x(17x64)", |b| {
        b.iter(|| stack_flattened(black_box(&samples)))
    });

    // Full 12-encoder CKA matrix from smaller reps.
    let reps: Vec<Matrix> = (0..12)
        .map(|_| Matrix::randn(64, 17 * 16, 1.0, &mut rng))
        .collect();
    group.bench_function("CkaMatrix 12 encoders", |b| {
        b.iter(|| CkaMatrix::compute(black_box(&reps), black_box(&reps)))
    });

    group.finish();
}

criterion_group!(benches, bench_cka);
criterion_main!(benches);
