//! ViT inference cost at different efforts — PIVOT's core claim measured
//! on our own runtime: skipping attention modules is a *general-purpose*
//! speedup (no special kernels required).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{VisionTransformer, VitConfig};

fn bench_forward(c: &mut Criterion) {
    let cfg = VitConfig::tiny();
    let mut model = VisionTransformer::new(&cfg, &mut Rng::new(0));
    let mut rng = Rng::new(1);
    let image = Matrix::rand_uniform(32, 32, 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("vit_forward");
    group.sample_size(20);

    for effort in [12usize, 9, 6, 3] {
        let active: Vec<usize> = (0..effort).collect();
        model.set_active_attentions(&active);
        let snapshot = model.clone();
        group.bench_function(format!("tiny-deit effort {effort}"), |b| {
            b.iter(|| snapshot.infer(black_box(&image)))
        });
    }

    // Traced forward (CKA capture) overhead.
    model.set_active_attentions(&(0..12).collect::<Vec<_>>());
    let full = model.clone();
    group.bench_function("tiny-deit traced forward", |b| {
        b.iter(|| full.infer_traced(black_box(&image)))
    });

    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
