//! Microbenchmarks of the non-linear kernels: softmax, entropy, GELU.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_nn::normalized_entropy;
use pivot_tensor::{gelu, softmax_row, Matrix, Rng};

fn bench_nonlinear(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let mut group = c.benchmark_group("nonlinear");
    group.sample_size(30);

    let row197: Vec<f32> = (0..197).map(|_| rng.normal()).collect();
    group.bench_function("softmax_row (197)", |b| {
        b.iter(|| softmax_row(black_box(&row197)))
    });

    let logits = Matrix::randn(1, 1000, 1.0, &mut rng);
    group.bench_function("normalized_entropy (K=1000)", |b| {
        b.iter(|| normalized_entropy(black_box(&logits)))
    });

    let logits10 = Matrix::randn(1, 10, 1.0, &mut rng);
    group.bench_function("normalized_entropy (K=10)", |b| {
        b.iter(|| normalized_entropy(black_box(&logits10)))
    });

    let acts = Matrix::randn(17, 128, 1.0, &mut rng);
    group.bench_function("gelu map (17x128)", |b| {
        b.iter(|| black_box(&acts).map(gelu))
    });

    group.finish();
}

criterion_group!(benches, bench_nonlinear);
criterion_main!(benches);
