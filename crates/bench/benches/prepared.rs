//! Prepared-view vs. per-chunk-rematerializing batched evaluation of an
//! Int8 model over 1000 samples — the whole-evaluation amortization of
//! fake-quant weight materialization (see `experiments::prepared_speedup`
//! for the self-checking report variant). Results are written to
//! `BENCH_prepared.json` at the workspace root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_core::{batched_logits, batched_logits_rematerializing, Parallelism};
use pivot_data::{Dataset, DatasetConfig, Sample};
use pivot_nn::QuantMode;
use pivot_tensor::Rng;
use pivot_vit::{VisionTransformer, VitConfig};

/// Samples in the evaluated sweep.
const SAMPLES: usize = 1000;

fn bench_prepared(c: &mut Criterion) {
    // The Int8 deployment model at the 2-token latency geometry (one
    // patch + cls): each 32-sample chunk contributes only 64 GEMM rows to
    // amortize a full per-chunk refit + rematerialization of every
    // layer's weights, which is exactly the per-chunk cost the prepared
    // view hoists out of the sweep.
    let cfg = VitConfig {
        patch_size: 16,
        dim: 64,
        ..VitConfig::test_small()
    };
    let mut model = VisionTransformer::new(&cfg, &mut Rng::new(7));
    model.set_quant_mode(QuantMode::Int8);
    let samples: Vec<Sample> = Dataset::generate_difficulty_stripes(
        &DatasetConfig::small(),
        &[0.1, 0.5, 0.9],
        SAMPLES.div_ceil(3),
        33,
    );
    let samples = &samples[..SAMPLES];

    // The contract the timing rows rely on: both paths produce the same
    // logits bitwise, so the delta is pure overhead, not different work.
    let prepared = model.prepare();
    assert_eq!(
        batched_logits(&prepared, samples, Parallelism::Auto),
        batched_logits_rematerializing(&model, samples, Parallelism::Auto),
        "prepared and rematerializing logits must be bit-identical"
    );

    let mut group = c.benchmark_group("prepared_eval");
    group.sample_size(10);
    group.bench_function(format!("prepared {SAMPLES} int8 (incl. prepare)"), |b| {
        b.iter(|| {
            let view = black_box(&model).prepare();
            batched_logits(&view, black_box(samples), Parallelism::Auto)
        })
    });
    group.bench_function(format!("rematerializing {SAMPLES} int8 (per chunk)"), |b| {
        b.iter(|| {
            batched_logits_rematerializing(black_box(&model), black_box(samples), Parallelism::Auto)
        })
    });
    group.finish();

    c.save_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_prepared.json"
    ))
    .expect("write BENCH_prepared.json");
}

criterion_group!(benches, bench_prepared);
criterion_main!(benches);
