//! Search-machinery cost: path enumeration, Algorithm-1 scoring, and
//! Phase-1 optimal-path selection at DeiT-S and LVViT-S scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_cka::CkaMatrix;
use pivot_core::{path_score, select_optimal_path, PathConfig};
use pivot_tensor::Matrix;

fn synthetic_cka(depth: usize) -> CkaMatrix {
    let mut m = Matrix::zeros(depth, depth);
    for i in 0..depth {
        for j in (i + 1)..depth {
            m[(i, j)] = 0.3 + 0.6 * (j as f32 / depth as f32);
        }
    }
    CkaMatrix::from_matrix(m)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(15);

    group.bench_function("enumerate C(12,6)=924 paths", |b| {
        b.iter(|| PathConfig::enumerate(black_box(12), black_box(6)))
    });

    let cka12 = synthetic_cka(12);
    let path = PathConfig::new(12, &[0, 1, 2, 3, 6, 9]);
    group.bench_function("path_score (Algorithm 1)", |b| {
        b.iter(|| path_score(black_box(&path), black_box(&cka12)))
    });

    group.bench_function("phase1 select C(12,6)", |b| {
        b.iter(|| select_optimal_path(black_box(6), black_box(&cka12)))
    });

    let cka16 = synthetic_cka(16);
    group.bench_function("phase1 select C(16,8)=12870", |b| {
        b.iter(|| select_optimal_path(black_box(8), black_box(&cka16)))
    });

    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
