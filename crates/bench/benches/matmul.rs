//! Microbenchmarks of the dense matmul kernels under `pivot-tensor`,
//! at the shapes the tiny ViTs actually execute: naive reference vs. the
//! blocked microkernel vs. one wide batched GEMM over a stacked batch.
//! Results are written to `BENCH_matmul.json` at the workspace root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_tensor::{Batch, Matrix, Rng, MATMUL_TILE};

/// Samples stacked into the wide-GEMM comparison (matches
/// `pivot_core::EVAL_BATCH`).
const BATCH: usize = 32;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);

    // Tiny-ViT projection: tokens x dim * dim x dim, naive vs blocked.
    let x17 = Matrix::randn(17, 64, 1.0, &mut rng);
    let w64 = Matrix::randn(64, 64, 1.0, &mut rng);
    group.bench_function("naive 17x64 * 64x64 (qkv slice)", |b| {
        b.iter(|| black_box(&x17).matmul_naive(black_box(&w64)))
    });
    group.bench_function("blocked 17x64 * 64x64 (qkv slice)", |b| {
        b.iter(|| black_box(&x17).matmul_blocked(black_box(&w64)))
    });

    // MLP expansion.
    let w_up = Matrix::randn(64, 128, 1.0, &mut rng);
    group.bench_function("naive 17x64 * 64x128 (mlp fc1)", |b| {
        b.iter(|| black_box(&x17).matmul_naive(black_box(&w_up)))
    });
    group.bench_function("blocked 17x64 * 64x128 (mlp fc1)", |b| {
        b.iter(|| black_box(&x17).matmul_blocked(black_box(&w_up)))
    });

    // A multi-tile square GEMM where blocking earns its keep.
    let sq = 3 * MATMUL_TILE;
    let a_sq = Matrix::randn(sq, sq, 1.0, &mut rng);
    let b_sq = Matrix::randn(sq, sq, 1.0, &mut rng);
    group.bench_function(format!("naive {sq}x{sq} * {sq}x{sq}"), |b| {
        b.iter(|| black_box(&a_sq).matmul_naive(black_box(&b_sq)))
    });
    group.bench_function(format!("blocked {sq}x{sq} * {sq}x{sq}"), |b| {
        b.iter(|| black_box(&a_sq).matmul_blocked(black_box(&b_sq)))
    });

    // Batched: BATCH per-sample GEMMs vs. one wide GEMM over the stack —
    // the comparison `forward_batch` makes per layer.
    let samples: Vec<Matrix> = (0..BATCH)
        .map(|_| Matrix::randn(17, 64, 1.0, &mut rng))
        .collect();
    let stacked = Batch::from_samples(&samples);
    group.bench_function(format!("per-sample {BATCH} x (17x64 * 64x64)"), |b| {
        b.iter(|| {
            for s in black_box(&samples) {
                black_box(s.matmul(&w64));
            }
        })
    });
    group.bench_function(
        format!("batched {}x64 * 64x64 (one GEMM)", BATCH * 17),
        |b| b.iter(|| black_box(stacked.as_matrix()).matmul(black_box(&w64))),
    );

    // Buffer-reusing variant: no output allocation per call.
    let mut out = Matrix::zeros(BATCH * 17, 64);
    group.bench_function(
        format!("batched {}x64 * 64x64 (matmul_into)", BATCH * 17),
        |b| b.iter(|| black_box(stacked.as_matrix()).matmul_into(black_box(&w64), &mut out)),
    );

    // Attention scores via the no-transpose kernel.
    let q = Matrix::randn(17, 16, 1.0, &mut rng);
    let k = Matrix::randn(17, 16, 1.0, &mut rng);
    group.bench_function("17x16 * (17x16)^T (scores)", |b| {
        b.iter(|| black_box(&q).matmul_transpose_b(black_box(&k)))
    });

    // Gradient-style A^T B.
    let a = Matrix::randn(17, 64, 1.0, &mut rng);
    let g = Matrix::randn(17, 64, 1.0, &mut rng);
    group.bench_function("(17x64)^T * 17x64 (weight grad)", |b| {
        b.iter(|| black_box(&a).matmul_transpose_a(black_box(&g)))
    });

    group.finish();
    c.save_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_matmul.json"
    ))
    .expect("write BENCH_matmul.json");
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
