//! Microbenchmarks of the dense matmul kernels under `pivot-tensor`,
//! at the shapes the tiny ViTs actually execute: naive reference vs. the
//! dispatched kernel (packed SIMD microkernel on AVX2+FMA hosts, scalar
//! untiled/tiled otherwise) vs. one wide batched GEMM over a stacked
//! batch, plus the prepacked-weight path and the packed-int8 quantized
//! GEMM against the f32 kernels on the same shapes. Results are written
//! to `BENCH_matmul.json` at the workspace root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_tensor::{matmul_quantized_into, Batch, Matrix, PackedF32, PackedInt8, Rng};

/// Samples stacked into the wide-GEMM comparison (matches
/// `pivot_core::EVAL_BATCH`).
const BATCH: usize = 32;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);

    // Tiny-ViT projection: tokens x dim * dim x dim, naive vs dispatched.
    let x17 = Matrix::randn(17, 64, 1.0, &mut rng);
    let w64 = Matrix::randn(64, 64, 1.0, &mut rng);
    group.bench_function("naive 17x64 * 64x64 (qkv slice)", |b| {
        b.iter(|| black_box(&x17).matmul_naive(black_box(&w64)))
    });
    group.bench_function("dispatched 17x64 * 64x64 (qkv slice)", |b| {
        b.iter(|| black_box(&x17).matmul(black_box(&w64)))
    });

    // MLP expansion.
    let w_up = Matrix::randn(64, 128, 1.0, &mut rng);
    group.bench_function("naive 17x64 * 64x128 (mlp fc1)", |b| {
        b.iter(|| black_box(&x17).matmul_naive(black_box(&w_up)))
    });
    group.bench_function("dispatched 17x64 * 64x128 (mlp fc1)", |b| {
        b.iter(|| black_box(&x17).matmul(black_box(&w_up)))
    });

    // A multi-tile square GEMM — the shape where the old tiled kernel
    // regressed below naive.
    let sq = 96;
    let a_sq = Matrix::randn(sq, sq, 1.0, &mut rng);
    let b_sq = Matrix::randn(sq, sq, 1.0, &mut rng);
    group.bench_function(format!("naive {sq}x{sq} * {sq}x{sq}"), |b| {
        b.iter(|| black_box(&a_sq).matmul_naive(black_box(&b_sq)))
    });
    group.bench_function(format!("dispatched {sq}x{sq} * {sq}x{sq}"), |b| {
        b.iter(|| black_box(&a_sq).matmul(black_box(&b_sq)))
    });

    // Batched: BATCH per-sample GEMMs vs. one wide GEMM over the stack —
    // the comparison `forward_batch` makes per layer.
    let samples: Vec<Matrix> = (0..BATCH)
        .map(|_| Matrix::randn(17, 64, 1.0, &mut rng))
        .collect();
    let stacked = Batch::from_samples(&samples);
    group.bench_function(format!("per-sample {BATCH} x (17x64 * 64x64)"), |b| {
        b.iter(|| {
            for s in black_box(&samples) {
                black_box(s.matmul(&w64));
            }
        })
    });
    group.bench_function(
        format!("batched {}x64 * 64x64 (one GEMM)", BATCH * 17),
        |b| b.iter(|| black_box(stacked.as_matrix()).matmul(black_box(&w64))),
    );

    // Buffer-reusing variant: no output allocation per call.
    let mut out = Matrix::zeros(BATCH * 17, 64);
    group.bench_function(
        format!("batched {}x64 * 64x64 (matmul_into)", BATCH * 17),
        |b| b.iter(|| black_box(stacked.as_matrix()).matmul_into(black_box(&w64), &mut out)),
    );
    // Naive reference at the batched shape — the ISSUE-7 speedup target
    // and the floor the dispatched kernel must never fall below.
    group.bench_function(format!("naive {}x64 * 64x64 (batched)", BATCH * 17), |b| {
        b.iter(|| black_box(stacked.as_matrix()).matmul_naive(black_box(&w64)))
    });
    // Weight prepacked once (the PreparedLinear fast path): the same
    // kernel as matmul_into with the per-call pack hoisted out.
    let packed_f32 = PackedF32::pack(&w64);
    group.bench_function(
        format!(
            "prepacked {}x64 * 64x64 (matmul_prepacked_into)",
            BATCH * 17
        ),
        |b| {
            b.iter(|| {
                black_box(stacked.as_matrix())
                    .matmul_prepacked_into(black_box(&packed_f32), &mut out)
            })
        },
    );
    group.bench_function("pack 64x64 weights (f32 panels)", |b| {
        b.iter(|| black_box(PackedF32::pack(black_box(&w64))))
    });

    // Packed int8 GEMM vs. the f32 kernels on the same shapes: the
    // per-row activation quantization + i8xi8->i32 sweep + requantization
    // against f32 `matmul_into` over identical operands. The pack row
    // prices the one-off weight quantization the prepared view amortizes.
    let packed = PackedInt8::pack(&w64);
    let mut out17 = Matrix::zeros(17, 64);
    group.bench_function("int8 17x64 * 64x64 (quantized qkv slice)", |b| {
        b.iter(|| matmul_quantized_into(black_box(&x17), black_box(&packed), &mut out17))
    });
    group.bench_function(
        format!("int8 {}x64 * 64x64 (quantized batched)", BATCH * 17),
        |b| {
            b.iter(|| {
                matmul_quantized_into(black_box(stacked.as_matrix()), black_box(&packed), &mut out)
            })
        },
    );
    group.bench_function("pack 64x64 weights (int8 panels)", |b| {
        b.iter(|| black_box(PackedInt8::pack(black_box(&w64))))
    });

    // Attention scores via the no-transpose kernel.
    let q = Matrix::randn(17, 16, 1.0, &mut rng);
    let k = Matrix::randn(17, 16, 1.0, &mut rng);
    group.bench_function("17x16 * (17x16)^T (scores)", |b| {
        b.iter(|| black_box(&q).matmul_transpose_b(black_box(&k)))
    });

    // Gradient-style A^T B.
    let a = Matrix::randn(17, 64, 1.0, &mut rng);
    let g = Matrix::randn(17, 64, 1.0, &mut rng);
    group.bench_function("(17x64)^T * 17x64 (weight grad)", |b| {
        b.iter(|| black_box(&a).matmul_transpose_a(black_box(&g)))
    });

    group.finish();
    c.save_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_matmul.json"
    ))
    .expect("write BENCH_matmul.json");
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
