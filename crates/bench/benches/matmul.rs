//! Microbenchmarks of the dense matmul kernels under `pivot-tensor`,
//! at the shapes the tiny ViTs actually execute.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_tensor::{Matrix, Rng};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);

    // Tiny-ViT projection: tokens x dim * dim x dim.
    let x17 = Matrix::randn(17, 64, 1.0, &mut rng);
    let w64 = Matrix::randn(64, 64, 1.0, &mut rng);
    group.bench_function("17x64 * 64x64 (qkv slice)", |b| {
        b.iter(|| black_box(&x17).matmul(black_box(&w64)))
    });

    // MLP expansion.
    let w_up = Matrix::randn(64, 128, 1.0, &mut rng);
    group.bench_function("17x64 * 64x128 (mlp fc1)", |b| {
        b.iter(|| black_box(&x17).matmul(black_box(&w_up)))
    });

    // Attention scores via the no-transpose kernel.
    let q = Matrix::randn(17, 16, 1.0, &mut rng);
    let k = Matrix::randn(17, 16, 1.0, &mut rng);
    group.bench_function("17x16 * (17x16)^T (scores)", |b| {
        b.iter(|| black_box(&q).matmul_transpose_b(black_box(&k)))
    });

    // Gradient-style A^T B.
    let a = Matrix::randn(17, 64, 1.0, &mut rng);
    let g = Matrix::randn(17, 64, 1.0, &mut rng);
    group.bench_function("(17x64)^T * 17x64 (weight grad)", |b| {
        b.iter(|| black_box(&a).matmul_transpose_a(black_box(&g)))
    });

    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
