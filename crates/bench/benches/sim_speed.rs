//! PIVOT-Sim throughput: how many full-model cycle-accurate evaluations
//! per second the simulator sustains (it sits inside the Phase-2 loop, so
//! this matters for search cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};

fn bench_sim(c: &mut Criterion) {
    let sim = Simulator::new(AcceleratorConfig::zcu102());
    let deit = VitGeometry::deit_s();
    let lvvit = VitGeometry::lvvit_s();
    let full12 = vec![true; 12];
    let full16 = vec![true; 16];
    let half12: Vec<bool> = (0..12).map(|i| i < 6).collect();

    let mut group = c.benchmark_group("pivot_sim");

    group.bench_function("simulate DeiT-S full", |b| {
        b.iter(|| sim.simulate(black_box(&deit), black_box(&full12)))
    });
    group.bench_function("simulate DeiT-S effort 6", |b| {
        b.iter(|| sim.simulate(black_box(&deit), black_box(&half12)))
    });
    group.bench_function("simulate LVViT-S full", |b| {
        b.iter(|| sim.simulate(black_box(&lvvit), black_box(&full16)))
    });

    let low = sim.simulate(&deit, &half12);
    let high = sim.simulate(&deit, &full12);
    group.bench_function("combine_efforts", |b| {
        b.iter(|| pivot_sim::combine_efforts(black_box(&low), black_box(&high), 0.75))
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
