//! Checkpoint cold start for a 4-level effort ladder: `load_prepared`
//! (parse once, build the frozen view, per-level Arc re-views) against
//! the classic load -> clone -> mask -> prepare-per-level path, each
//! through first inference at every level (see
//! `experiments::ladder_memory` for the self-checking report variant
//! that also accounts resident weight bytes into `BENCH_ladder.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pivot_bench::experiments::LADDER_DEPTH;
use pivot_tensor::{Matrix, Rng};
use pivot_vit::{PreparedModel, VisionTransformer, VitConfig};

/// Attention-module counts of the benchmarked 4-level ladder.
const EFFORTS: [usize; 4] = [2, 4, 6, 8];

fn bench_cold_start(c: &mut Criterion) {
    let cfg = VitConfig {
        name: "ladder-cold".to_string(),
        depth: LADDER_DEPTH,
        ..VitConfig::test_small()
    };
    let backbone = VisionTransformer::new(&cfg, &mut Rng::new(42));
    let ckpt = std::env::temp_dir().join(format!("pivot_bench_ladder_{}.bin", std::process::id()));
    backbone.save(&ckpt).expect("save benchmark checkpoint");
    let image = Matrix::from_fn(cfg.image_size, cfg.image_size, |r, c| {
        ((r * 31 + c * 7) as f32) / 331.0 - 0.5
    });

    let mut group = c.benchmark_group("ladder_cold_start");
    group.sample_size(10);
    group.bench_function("load_prepared + 4 re-views (f32)", |b| {
        b.iter(|| {
            let base = VisionTransformer::load_prepared(black_box(&ckpt)).expect("load_prepared");
            EFFORTS
                .iter()
                .map(|&e| {
                    let mask: Vec<usize> = (0..e).collect();
                    base.with_active_attentions(&mask).infer(black_box(&image))
                })
                .collect::<Vec<Matrix>>()
        })
    });
    group.bench_function("load + 4x clone/mask/prepare (f32)", |b| {
        b.iter(|| {
            let model = VisionTransformer::load(black_box(&ckpt)).expect("load");
            EFFORTS
                .iter()
                .map(|&e| {
                    let mut m = model.clone();
                    m.set_active_attentions(&(0..e).collect::<Vec<usize>>());
                    m.prepare()
                })
                .collect::<Vec<PreparedModel>>()
                .iter()
                .map(|v| v.infer(black_box(&image)))
                .collect::<Vec<Matrix>>()
        })
    });
    group.finish();

    std::fs::remove_file(&ckpt).ok();
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
