//! 128-bit structural content hashing for weight deduplication.
//!
//! The effort ladder derives every level from one backbone, so most
//! prepared layers across levels are bit-for-bit identical. The
//! content-addressed store in `pivot-nn` keys shared panels by a hash of
//! their defining bits; this module provides that hash.
//!
//! The function is FNV-1a widened to 128 bits and fed 64-bit words
//! instead of bytes: `state = (state ^ word) * PRIME` per word, which
//! keeps the hot loop at one multiply per 8 bytes while retaining FNV's
//! per-word avalanche-through-multiplication. At 128 bits, accidental
//! collision between distinct weight tensors is negligible (birthday
//! bound ~2^64 tensors), so store lookups trust the hash without a
//! verify-on-hit pass — the same reasoning as content-addressed object
//! stores. The hash is **structural**: callers absorb shape and
//! quantizer fields alongside raw bits, so tensors with identical bytes
//! but different shapes (or quant grids) never alias.
//!
//! Determinism: `f32` values are absorbed via [`f32::to_bits`], so the
//! hash distinguishes `-0.0` from `0.0` and every NaN payload — exactly
//! the bit-identity granularity the dedup contract needs (two layers
//! share storage only if inference through them is bit-identical).

/// Incremental 128-bit FNV-1a-style hasher over 64-bit words.
///
/// # Example
///
/// ```
/// use pivot_tensor::ContentHasher;
///
/// let mut a = ContentHasher::new();
/// a.write_f32_slice(&[1.0, 2.0]);
/// let mut b = ContentHasher::new();
/// b.write_f32_slice(&[1.0, 2.0]);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, word: u64) {
        self.state = (self.state ^ u128::from(word)).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u32` (widened; domain-separated by the caller's field
    /// order, which is fixed per type).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Absorbs a `usize` (shape fields).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `i32` via its two's-complement bits.
    pub fn write_i32(&mut self, v: i32) {
        self.write_u64(u64::from(v as u32));
    }

    /// Absorbs one `f32` by bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u64(u64::from(v.to_bits()));
    }

    /// Absorbs a slice of `f32` by bit pattern, two lanes per word.
    ///
    /// The slice length is absorbed first so `[x]` followed by `[y]`
    /// never collides with `[x, y]` across separate calls.
    pub fn write_f32_slice(&mut self, values: &[f32]) {
        self.write_usize(values.len());
        let mut chunks = values.chunks_exact(2);
        for pair in &mut chunks {
            let word = u64::from(pair[0].to_bits()) | (u64::from(pair[1].to_bits()) << 32);
            self.write_u64(word);
        }
        if let [tail] = chunks.remainder() {
            self.write_u64(u64::from(tail.to_bits()));
        }
    }

    /// Absorbs a slice of `i8`, eight lanes per word.
    pub fn write_i8_slice(&mut self, values: &[i8]) {
        self.write_usize(values.len());
        let mut chunks = values.chunks_exact(8);
        for octet in &mut chunks {
            let mut bytes = [0u8; 8];
            for (b, &v) in bytes.iter_mut().zip(octet) {
                *b = v as u8;
            }
            self.write_u64(u64::from_le_bytes(bytes));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut bytes = [0u8; 8];
            for (b, &v) in bytes.iter_mut().zip(remainder) {
                *b = v as u8;
            }
            self.write_u64(u64::from_le_bytes(bytes));
        }
    }

    /// Absorbs a slice of `usize` (index lists, e.g. poisoned columns).
    pub fn write_usize_slice(&mut self, values: &[usize]) {
        self.write_usize(values.len());
        for &v in values {
            self.write_usize(v);
        }
    }

    /// The accumulated 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_hash_identically() {
        let mut a = ContentHasher::new();
        let mut b = ContentHasher::new();
        for h in [&mut a, &mut b] {
            h.write_usize(3);
            h.write_f32_slice(&[1.0, -2.5, 0.125]);
            h.write_i8_slice(&[1, -1, 127, -128, 0]);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = {
            let mut h = ContentHasher::new();
            h.write_f32_slice(&[1.0, 2.0, 3.0]);
            h.finish()
        };
        let flipped = {
            let mut h = ContentHasher::new();
            h.write_f32_slice(&[1.0, 2.0, f32::from_bits(3.0f32.to_bits() ^ 1)]);
            h.finish()
        };
        assert_ne!(base, flipped);
    }

    #[test]
    fn negative_zero_and_nan_payloads_are_distinguished() {
        let h = |v: f32| {
            let mut h = ContentHasher::new();
            h.write_f32(v);
            h.finish()
        };
        assert_ne!(h(0.0), h(-0.0));
        assert_ne!(
            h(f32::from_bits(0x7fc0_0000)),
            h(f32::from_bits(0x7fc0_0001))
        );
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let split = {
            let mut h = ContentHasher::new();
            h.write_f32_slice(&[1.0]);
            h.write_f32_slice(&[2.0]);
            h.finish()
        };
        let joined = {
            let mut h = ContentHasher::new();
            h.write_f32_slice(&[1.0, 2.0]);
            h.finish()
        };
        assert_ne!(split, joined);
    }

    #[test]
    fn i8_tail_is_absorbed() {
        let a = {
            let mut h = ContentHasher::new();
            h.write_i8_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
            h.finish()
        };
        let b = {
            let mut h = ContentHasher::new();
            h.write_i8_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
            h.finish()
        };
        assert_ne!(a, b);
    }
}
