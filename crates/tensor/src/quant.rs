//! 8-bit affine quantization.
//!
//! The paper trains and evaluates all ViTs with 8-bit quantization
//! (Section 4.1, Table 4). This module implements per-tensor affine
//! quantization: `q = clamp(round(x / scale) + zero_point, -128, 127)` and the
//! matching dequantization, plus the *fake-quant* round trip used during
//! quantization-aware training with a straight-through estimator.

use crate::Matrix;

/// Scale and zero-point of an affine 8-bit quantizer.
///
/// # Example
///
/// ```
/// use pivot_tensor::{Matrix, QuantParams};
///
/// let m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
/// let qp = QuantParams::fit(&m);
/// let rt = qp.fake_quant_matrix(&m);
/// assert!(rt.approx_eq(&m, qp.scale()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
}

impl QuantParams {
    /// Smallest representable scale; guards against degenerate all-zero
    /// tensors producing a zero scale. Crate-visible so the int8 kernel's
    /// per-row activation fit lands on the identical grid.
    pub(crate) const MIN_SCALE: f32 = 1e-8;

    /// Creates quantization parameters from an explicit scale and zero point.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f32, zero_point: i32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        Self { scale, zero_point }
    }

    /// Fits asymmetric 8-bit parameters to the value range of `m`.
    ///
    /// The range is widened to include zero so that zero is exactly
    /// representable (required for padding / skipped attention outputs).
    pub fn fit(m: &Matrix) -> Self {
        Self::fit_slice(m.as_slice())
    }

    /// Fits asymmetric 8-bit parameters to the value range of a slice.
    pub fn fit_slice(values: &[f32]) -> Self {
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let scale = ((hi - lo) / 255.0).max(Self::MIN_SCALE);
        let zero_point = (-lo / scale).round() as i32 - 128;
        Self { scale, zero_point }
    }

    /// Fits symmetric 8-bit parameters (zero point 0), typical for weights.
    ///
    /// Non-finite values are ignored when fitting the range (mirroring
    /// [`QuantParams::fit_slice`]), so a single corrupted weight cannot poison
    /// the scale of the whole tensor; the corrupted element itself shows up in
    /// [`QuantParams::saturation_count`] instead.
    pub fn fit_symmetric(m: &Matrix) -> Self {
        Self::fit_symmetric_slice(m.as_slice())
    }

    /// Fits symmetric 8-bit parameters to a slice (zero point 0).
    ///
    /// The slice form is what the int8 GEMM uses to fit one quantizer per
    /// activation row; the semantics are identical to
    /// [`QuantParams::fit_symmetric`], including ignoring non-finite values.
    pub fn fit_symmetric_slice(values: &[f32]) -> Self {
        let max_abs = values
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let scale = (max_abs / 127.0).max(Self::MIN_SCALE);
        Self {
            scale,
            zero_point: 0,
        }
    }

    /// The quantization step size.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The integer value representing real zero.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Quantizes one value to `i8`.
    ///
    /// No 8-bit code represents a non-finite value: `±inf` saturates to the
    /// range endpoints, and NaN is pinned to `i8::MAX`. (The naive
    /// `(NaN / scale).round() as i32` would saturating-cast to 0, laundering
    /// a corrupted value into the zero point — an exact, healthy-looking
    /// 0.0 after dequantization.) Non-finite inputs always register in
    /// [`QuantParams::saturation_count`].
    pub fn quantize(&self, x: f32) -> i8 {
        if x.is_nan() {
            return i8::MAX;
        }
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Dequantizes one `i8` back to `f32`.
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }

    /// Requantizes a widened `i32` accumulator back to `f32`.
    ///
    /// The int8 GEMM accumulates `i8 x i8` products in `i32` (the widest
    /// value is `127 * 127 * K`, in-range for any realistic reduction depth
    /// `K`), then maps the accumulator back to real units through the
    /// *combined* quantizer whose scale is the product of the two operand
    /// scales. This is [`QuantParams::dequantize`] extended to the full
    /// `i32` domain: for every `i8` code the two agree exactly.
    ///
    /// The zero-point shift runs in `f64` so `acc - zero_point` cannot
    /// overflow; the shifted accumulator is then rounded to `f32` (exact
    /// below 2^24, correctly rounded above) and scaled with a single `f32`
    /// multiply — the same two operations the vectorized int8 kernel
    /// performs (`cvtdq2ps` + `mulps`), so the helper and the kernel are
    /// bit-identical. An accumulator product too large for `f32` becomes
    /// `±inf` rather than being clamped into range — saturation stays
    /// visible downstream, matching the non-finite-propagation contract of
    /// [`QuantParams::fake_quant`]: the integer path must never re-launder
    /// a fault into a healthy value.
    pub fn requantize(&self, acc: i32) -> f32 {
        ((acc as f64 - self.zero_point as f64) as f32) * self.scale
    }

    /// Quantize-then-dequantize round trip of one value (fake quant).
    ///
    /// Non-finite inputs pass through unchanged: fake quantization emulates
    /// deployment numerics for *healthy* values, while a NaN or ±inf is a
    /// fault signal that must stay visible to downstream health checks
    /// (`Matrix::is_all_finite`, the cascade's guarded evaluation) rather
    /// than being rounded to an in-range code.
    pub fn fake_quant(&self, x: f32) -> f32 {
        if !x.is_finite() {
            return x;
        }
        self.dequantize(self.quantize(x))
    }

    /// Fake-quantizes every element of a matrix.
    pub fn fake_quant_matrix(&self, m: &Matrix) -> Matrix {
        m.map(|x| self.fake_quant(x))
    }

    /// Number of values that this quantizer cannot represent in-range.
    ///
    /// Counts elements whose quantized code would fall outside `[-128, 127]`
    /// before clamping, plus any non-finite elements (which always saturate
    /// or corrupt the code). Healthy weights quantized with parameters fitted
    /// to their own range never saturate; a non-zero count is a per-layer
    /// fault indicator used by the degradation tooling in higher crates.
    pub fn saturation_count(&self, values: &[f32]) -> usize {
        values
            .iter()
            .filter(|&&x| {
                if !x.is_finite() {
                    return true;
                }
                let q = (x / self.scale).round() + self.zero_point as f32;
                !(-128.0..=127.0).contains(&q)
            })
            .count()
    }
}

/// A matrix stored in quantized `i8` form together with its parameters.
///
/// Used by the inference path to emulate the 8-bit deployment numerics and by
/// `pivot-sim` to size SRAM traffic in bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    params: QuantParams,
    rows: usize,
    cols: usize,
    values: Vec<i8>,
}

impl Quantized {
    /// Quantizes a matrix with parameters fitted to its own range.
    pub fn from_matrix(m: &Matrix) -> Self {
        Self::from_matrix_with(m, QuantParams::fit(m))
    }

    /// Quantizes a matrix with caller-provided parameters.
    pub fn from_matrix_with(m: &Matrix, params: QuantParams) -> Self {
        Self {
            params,
            rows: m.rows(),
            cols: m.cols(),
            values: m.as_slice().iter().map(|&x| params.quantize(x)).collect(),
        }
    }

    /// The quantization parameters in use.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw quantized bytes.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Storage footprint in bytes (one byte per element).
    pub fn size_bytes(&self) -> usize {
        self.values.len()
    }

    /// Reconstructs the (lossy) `f32` matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.values
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;
    use proptest::prelude::*;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = Rng::new(5);
        let m = Matrix::randn(16, 16, 1.0, &mut rng);
        let qp = QuantParams::fit(&m);
        let rt = qp.fake_quant_matrix(&m);
        let max_err = (&m - &rt).max_abs();
        assert!(
            max_err <= qp.scale() * 0.5 + 1e-6,
            "err {max_err} > step/2 {}",
            qp.scale()
        );
    }

    #[test]
    fn zero_is_exactly_representable() {
        let m = Matrix::from_rows(&[&[-3.0, 0.0, 1.0]]);
        let qp = QuantParams::fit(&m);
        assert_eq!(qp.fake_quant(0.0), 0.0);
    }

    #[test]
    fn symmetric_fit_has_zero_zero_point() {
        let m = Matrix::from_rows(&[&[-2.0, 1.5]]);
        let qp = QuantParams::fit_symmetric(&m);
        assert_eq!(qp.zero_point(), 0);
        assert!(qp.fake_quant(0.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_tensor_does_not_blow_up() {
        let m = Matrix::zeros(4, 4);
        let qp = QuantParams::fit(&m);
        assert!(qp.scale() > 0.0);
        assert_eq!(qp.fake_quant_matrix(&m), m);
    }

    #[test]
    fn self_fitted_weights_never_saturate() {
        let mut rng = Rng::new(11);
        let m = Matrix::randn(8, 8, 3.0, &mut rng);
        let qp = QuantParams::fit_symmetric(&m);
        assert_eq!(qp.saturation_count(m.as_slice()), 0);
    }

    #[test]
    fn corrupted_weights_are_counted_as_saturated() {
        let mut rng = Rng::new(12);
        let mut m = Matrix::randn(4, 4, 1.0, &mut rng);
        m.as_mut_slice()[3] = f32::NAN;
        m.as_mut_slice()[7] = f32::INFINITY;
        // Symmetric fit ignores the non-finite entries, so the scale stays
        // sane and exactly the two corrupted elements saturate.
        let qp = QuantParams::fit_symmetric(&m);
        assert!(qp.scale().is_finite());
        assert_eq!(qp.saturation_count(m.as_slice()), 2);
    }

    #[test]
    fn out_of_range_values_saturate_under_fixed_params() {
        let qp = QuantParams::new(1.0, 0);
        assert_eq!(qp.saturation_count(&[0.0, 127.0, 128.0, -129.0, 1e9]), 3);
    }

    #[test]
    fn nan_is_not_laundered_to_the_zero_point() {
        // Regression: `(NaN / scale).round() as i32` saturating-casts to 0,
        // so NaN used to quantize to the zero point and dequantize to an
        // exact 0.0 — invisible to every health check downstream.
        let qp = QuantParams::new(0.5, -3);
        assert_eq!(qp.quantize(f32::NAN), i8::MAX);
        assert!(qp.fake_quant(f32::NAN).is_nan());
        assert_eq!(qp.fake_quant(f32::INFINITY), f32::INFINITY);
        assert_eq!(qp.fake_quant(f32::NEG_INFINITY), f32::NEG_INFINITY);
        // And they all count as saturated.
        let sat = qp.saturation_count(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY]);
        assert_eq!(sat, 3);
    }

    #[test]
    fn fake_quant_matrix_keeps_nan_visible() {
        let mut rng = Rng::new(13);
        let mut m = Matrix::randn(4, 4, 1.0, &mut rng);
        m.as_mut_slice()[5] = f32::NAN;
        let qp = QuantParams::fit_symmetric(&m);
        let fq = qp.fake_quant_matrix(&m);
        assert!(fq.as_slice()[5].is_nan(), "NaN must survive fake quant");
    }

    #[test]
    fn requantize_agrees_with_dequantize_on_every_i8_code() {
        for &(scale, zp) in &[(0.5f32, 0i32), (0.013, -3), (1e-6, 100), (3.0, -128)] {
            let qp = QuantParams::new(scale, zp);
            for q in i8::MIN..=i8::MAX {
                assert_eq!(
                    qp.requantize(q as i32),
                    qp.dequantize(q),
                    "scale {scale} zp {zp} code {q}"
                );
            }
        }
    }

    #[test]
    fn requantize_known_accumulator() {
        // A 64-deep dot product of maximal codes: 127 * 127 * 64.
        let qp = QuantParams::new(2.0, 0);
        let acc = 127 * 127 * 64;
        assert_eq!(qp.requantize(acc), acc as f32 * 2.0);
        // Zero point is subtracted before scaling, like dequantize.
        let qp = QuantParams::new(0.5, 10);
        assert_eq!(qp.requantize(10), 0.0);
        assert_eq!(qp.requantize(14), 2.0);
    }

    #[test]
    fn requantize_saturation_overflows_to_inf_not_a_clamped_value() {
        // An accumulator whose real value exceeds f32 range must come back
        // as +-inf (visible to health checks), never clamped in-range: the
        // int8 path is not allowed to re-launder faults (PR 4 contract).
        let qp = QuantParams::new(f32::MAX / 2.0, 0);
        assert_eq!(qp.requantize(4), f32::INFINITY);
        assert_eq!(qp.requantize(-4), f32::NEG_INFINITY);
        // i32 extremes with a huge zero-point offset stay finite-exact in
        // the f64 intermediate (no wrap-around) and keep their sign.
        let qp = QuantParams::new(1.0, i32::MIN);
        assert!(qp.requantize(i32::MAX) > 0.0);
        assert!(qp.requantize(i32::MAX).is_finite());
    }

    #[test]
    fn requantize_never_fabricates_nan() {
        // i32 has no NaN, and a finite-positive scale is enforced by
        // QuantParams::new — so requantize can produce +-inf on overflow
        // but never NaN: a NaN downstream of the int8 GEMM always traces
        // back to a poisoned input, not to requantization.
        for &(scale, zp) in &[(QuantParams::MIN_SCALE, 0), (f32::MAX, i32::MIN)] {
            let qp = QuantParams::new(scale, zp);
            for &acc in &[i32::MIN, -1, 0, 1, i32::MAX] {
                assert!(!qp.requantize(acc).is_nan(), "scale {scale} acc {acc}");
            }
        }
    }

    #[test]
    fn fit_symmetric_slice_matches_matrix_fit() {
        let mut rng = Rng::new(17);
        let m = Matrix::randn(6, 6, 2.0, &mut rng);
        assert_eq!(
            QuantParams::fit_symmetric(&m),
            QuantParams::fit_symmetric_slice(m.as_slice())
        );
        // Per-row fits see only their own row's range.
        let qp = QuantParams::fit_symmetric_slice(m.row(2));
        let max_abs = m.row(2).iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!((qp.scale() - max_abs / 127.0).abs() < 1e-12);
    }

    #[test]
    fn quantized_size_is_one_byte_per_element() {
        let m = Matrix::zeros(8, 24);
        let q = Quantized::from_matrix(&m);
        assert_eq!(q.size_bytes(), 8 * 24);
        assert_eq!(q.shape(), (8, 24));
    }

    #[test]
    fn quantized_matrix_round_trip() {
        let mut rng = Rng::new(9);
        let m = Matrix::randn(10, 10, 2.0, &mut rng);
        let q = Quantized::from_matrix(&m);
        let rt = q.to_matrix();
        assert!(rt.approx_eq(&m, q.params().scale()));
    }

    proptest! {
        #[test]
        fn prop_fake_quant_idempotent(x in -100.0f32..100.0, s in 1e-3f32..1.0) {
            let qp = QuantParams::new(s, 0);
            let once = qp.fake_quant(x);
            let twice = qp.fake_quant(once);
            prop_assert!((once - twice).abs() < 1e-6);
        }

        #[test]
        fn prop_quantize_in_i8_range(x in -1e6f32..1e6, s in 1e-3f32..10.0, zp in -128i32..127) {
            let qp = QuantParams::new(s, zp);
            let q = qp.quantize(x);
            prop_assert!((-128..=127).contains(&(q as i32)));
        }
    }
}
