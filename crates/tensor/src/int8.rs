//! Packed int8 GEMM: the true integer deployment path.
//!
//! The fake-quant pipeline ([`QuantParams::fake_quant_matrix`]) simulates
//! 8-bit numerics while still storing and multiplying `f32` — full-precision
//! memory traffic and FLOPs. This module is the real thing: weights are
//! stored as `i8` **panels** (one contiguous panel per output column, i.e.
//! the transposed weight laid out row-major), activations are quantized
//! per-row on the fly, and the product is accumulated in `i32` before being
//! requantized back to `f32` through [`QuantParams::requantize`].
//!
//! Numerics contract (see `DESIGN.md` §4e): the weight quantizer is the same
//! symmetric per-tensor fit the fake-quant reference uses, so the *weight*
//! error is identical; the only divergence is the per-row activation
//! quantization, bounded by half an activation quantization step per input.
//! The `pivot-vit` property tests pin int8 logits to the fake-quant
//! reference within a documented tolerance.
//!
//! Fault visibility: `i8` has no code for NaN/±inf, so quantizing a
//! corrupted value would launder it into a healthy-looking finite number.
//! Instead, non-finite values are detected *before* quantization — a
//! corrupted weight poisons its output column, a corrupted activation
//! poisons its output row, both to NaN — preserving the PR 4 contract that
//! faults stay visible to downstream health checks.

use crate::{Matrix, QuantParams};

/// An `i8`-storage weight matrix packed for the int8 GEMM.
///
/// The logical matrix is `in_dim x out_dim` (same orientation as the `W` in
/// `y = x W`); storage is the transpose, row-major: panel `j` is the
/// `in_dim` quantized weights feeding output column `j`, contiguous in
/// memory so the reduction loop streams exactly one cache-friendly panel
/// per output element. One byte per weight — a quarter of the `f32`
/// effective-weight traffic.
///
/// # Example
///
/// ```
/// use pivot_tensor::{matmul_quantized, Matrix, PackedInt8, Rng};
///
/// let mut rng = Rng::new(0);
/// let x = Matrix::randn(4, 8, 1.0, &mut rng);
/// let w = Matrix::randn(8, 3, 0.02, &mut rng);
/// let packed = PackedInt8::pack(&w);
/// let y = matmul_quantized(&x, &packed);
/// assert_eq!(y.shape(), (4, 3));
/// assert!(y.approx_eq(&x.matmul(&packed.dequantize()), 0.05));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedInt8 {
    params: QuantParams,
    in_dim: usize,
    out_dim: usize,
    /// `out_dim` panels of `in_dim` bytes each (the transposed weight).
    data: Vec<i8>,
    /// Output columns fed by at least one non-finite source weight; the
    /// GEMM poisons these columns to NaN. Empty for healthy weights.
    poisoned_cols: Vec<usize>,
}

impl PackedInt8 {
    /// Packs a weight matrix with a symmetric quantizer fitted to its own
    /// range — the same fit the fake-quant reference path uses, so both
    /// paths share one weight grid.
    pub fn pack(w: &Matrix) -> Self {
        Self::pack_with(w, QuantParams::fit_symmetric(w))
    }

    /// Packs a weight matrix with caller-provided parameters.
    ///
    /// Columns containing non-finite weights are recorded and poisoned to
    /// NaN by the GEMM instead of being quantized into finite codes.
    pub fn pack_with(w: &Matrix, params: QuantParams) -> Self {
        let (in_dim, out_dim) = w.shape();
        let mut data = vec![0i8; in_dim * out_dim];
        let mut poisoned_cols = Vec::new();
        for j in 0..out_dim {
            let panel = &mut data[j * in_dim..(j + 1) * in_dim];
            let mut healthy = true;
            for (k, q) in panel.iter_mut().enumerate() {
                let v = w[(k, j)];
                healthy &= v.is_finite();
                *q = params.quantize(v);
            }
            if !healthy {
                poisoned_cols.push(j);
            }
        }
        Self {
            params,
            in_dim,
            out_dim,
            data,
            poisoned_cols,
        }
    }

    /// The weight quantizer.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Input dimensionality (rows of the logical weight).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality (columns of the logical weight).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Storage footprint of the packed weights in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// 128-bit structural content hash: quantizer grid, shape, every
    /// packed code, and the poisoned-column set. Two packs hash equal
    /// exactly when the int8 GEMM through them is bit-identical — the
    /// sharing contract the content-addressed store relies on.
    pub fn content_hash(&self) -> u128 {
        let mut h = crate::ContentHasher::new();
        h.write_f32(self.params.scale());
        h.write_i32(self.params.zero_point());
        h.write_usize(self.in_dim);
        h.write_usize(self.out_dim);
        h.write_i8_slice(&self.data);
        h.write_usize_slice(&self.poisoned_cols);
        h.finish()
    }

    /// The contiguous panel of quantized weights for output column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.out_dim()`.
    pub fn panel(&self, j: usize) -> &[i8] {
        assert!(
            j < self.out_dim,
            "panel {j} out of {} columns",
            self.out_dim
        );
        &self.data[j * self.in_dim..(j + 1) * self.in_dim]
    }

    /// Whether any output column is poisoned by a non-finite source weight.
    pub fn is_poisoned(&self) -> bool {
        !self.poisoned_cols.is_empty()
    }

    /// Reconstructs the dequantized `f32` weight in its logical
    /// (`in_dim x out_dim`) orientation. Poisoned columns come back as NaN,
    /// mirroring what the GEMM computes with them.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::from_fn(self.in_dim, self.out_dim, |k, j| {
            self.params.dequantize(self.data[j * self.in_dim + k])
        });
        for &j in &self.poisoned_cols {
            for k in 0..self.in_dim {
                w[(k, j)] = f32::NAN;
            }
        }
        w
    }
}

/// `x * W` through the packed int8 pipeline, allocating the output.
///
/// See [`matmul_quantized_into`] for the kernel contract.
///
/// # Panics
///
/// Panics if `x.cols() != w.in_dim()`.
pub fn matmul_quantized(x: &Matrix, w: &PackedInt8) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.out_dim());
    matmul_quantized_into(x, w, &mut out);
    out
}

/// `x * W` through the packed int8 pipeline into a caller-owned buffer.
///
/// Per activation row: a symmetric quantizer is fitted to the row (the same
/// `max_abs / 127` grid as [`QuantParams::fit_symmetric_slice`]), the row
/// is quantized into a reusable widened (`i16`) scratch, and each output
/// element is one `i8 x i8 -> i32` dot product against a contiguous weight
/// panel. Accumulators are requantized to `f32` through the combined
/// row-by-weight quantizer ([`QuantParams::requantize`]).
///
/// Activation codes are computed as `trunc(x * (1/step) + copysign(0.5, x))`
/// rather than `round(x / step)`: the divide + half-away-from-zero round
/// sequence costs more than the integer GEMM itself on the baseline target,
/// while the reciprocal-multiply form stays within one code of the
/// [`QuantParams::quantize`] grid (see [`quantize_activation`]) — noise
/// already inside the documented int8-vs-fake-quant tolerance.
///
/// Two kernels compute the dot products, following the same two-path
/// pattern as `matmul_naive` vs the dispatched kernel: a portable reference
/// loop with unrolled `i32` accumulator lanes over the contiguous panels
/// (the shape the autovectorizer maps onto integer multiply-add lanes),
/// and on `x86_64` with runtime-detected AVX2 an explicit `pmaddwd`
/// microkernel, four panels per sweep. Integer accumulation is exact and
/// order-independent, so the two are **bit-identical** — dispatch can
/// never change results — and results are a pure function of the inputs,
/// independent of batching.
///
/// Fault visibility: rows containing non-finite activations and columns
/// containing non-finite weights are poisoned to NaN *after* the integer
/// sweep — quantizing them would launder the fault into a finite code.
///
/// # Panics
///
/// Panics if `x.cols() != w.in_dim()` or `out` is not
/// `x.rows() x w.out_dim()`.
pub fn matmul_quantized_into(x: &Matrix, w: &PackedInt8, out: &mut Matrix) {
    assert_eq!(
        x.cols(),
        w.in_dim,
        "matmul_quantized shape mismatch: {:?} x {}x{}",
        x.shape(),
        w.in_dim,
        w.out_dim
    );
    assert_eq!(
        out.shape(),
        (x.rows(), w.out_dim),
        "matmul_quantized_into output shape mismatch"
    );
    let k_dim = w.in_dim;
    let w_scale = w.params.scale();
    let mut qa = vec![0i16; k_dim];
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
    for i in 0..x.rows() {
        let a_row = x.row(i);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 support was verified at runtime above.
        let fitted = if use_avx2 {
            unsafe { avx2::prep_row(a_row, &mut qa) }
        } else {
            prep_row(a_row, &mut qa)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let fitted = prep_row(a_row, &mut qa);
        let out_row = out.row_mut(i);
        let Some(row_scale) = fitted else {
            // A corrupted activation must not be laundered through a finite
            // i8 code: the whole output row it feeds is poisoned, matching
            // the f32 path where NaN contaminates every dot product it
            // enters.
            out_row.fill(f32::NAN);
            continue;
        };
        // Combined quantizer of the i32 accumulator: the product of the two
        // operand scales (both >= MIN_SCALE, so the product stays positive).
        let requant = QuantParams::new((row_scale as f64 * w_scale as f64) as f32, 0);
        gemm_row(&qa, &w.data, k_dim, requant, out_row);
    }
    for &j in &w.poisoned_cols {
        for i in 0..x.rows() {
            out[(i, j)] = f32::NAN;
        }
    }
}

/// Portable activation-row preparation: one pass computing the finite check
/// and `max_abs`, then (for healthy rows) the symmetric fit
/// `scale = (max_abs / 127).max(MIN_SCALE)` — the identical grid to
/// [`QuantParams::fit_symmetric_slice`] — and the quantization of the row
/// into the widened `i16` scratch via [`quantize_activation`].
///
/// Returns `None` when the row contains any non-finite value (the caller
/// poisons the output row; `qa` contents are then unspecified), otherwise
/// `Some(scale)`. The AVX2 variant ([`avx2::prep_row`]) is bit-identical on
/// every input: `max` is order-independent, and the quantization formula is
/// the same sequence of IEEE operations in both.
fn prep_row(a_row: &[f32], qa: &mut [i16]) -> Option<f32> {
    let mut max_abs = 0f32;
    let mut finite = true;
    for &v in a_row {
        finite &= v.is_finite();
        max_abs = max_abs.max(v.abs());
    }
    if !finite {
        return None;
    }
    let scale = (max_abs / 127.0).max(QuantParams::MIN_SCALE);
    let inv = 1.0 / scale;
    for (q, &v) in qa.iter_mut().zip(a_row) {
        *q = quantize_activation(v, inv);
    }
    Some(scale)
}

/// The activation quantization formula shared by both row-prep paths:
/// `clamp(trunc(v * inv + copysign(0.5, v * inv)), -128, 127)`.
///
/// This is add-half-then-truncate against the reciprocal of the step — the
/// branch-free form whose vector lowering is three cheap instructions —
/// and it lands within one code of `QuantParams::quantize`'s
/// `round(v / step)`: the reciprocal multiply differs from the division by
/// at most a couple of ULP, and the two roundings agree everywhere except
/// within that ULP slack of half-integer boundaries. Callers only invoke
/// this on finite `v` with a row-fitted `inv`, so `v * inv` is always in
/// `[-127.01, 127.01]` and the truncating cast cannot saturate.
#[inline]
fn quantize_activation(v: f32, inv: f32) -> i16 {
    let y = v * inv;
    ((y + 0.5f32.copysign(y)) as i32).clamp(-128, 127) as i16
}

/// One output row of the int8 GEMM: dot products of the widened activation
/// row against every weight panel, requantized into `out_row`. Dispatches
/// to the AVX2 microkernel when available; the portable lane-unrolled loop
/// is the bit-identical reference path.
fn gemm_row(qa: &[i16], panels: &[i8], k_dim: usize, requant: QuantParams, out_row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if k_dim >= 16 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { avx2::gemm_row(qa, panels, k_dim, requant, out_row) };
        return;
    }
    for (j, o) in out_row.iter_mut().enumerate() {
        let panel = &panels[j * k_dim..(j + 1) * k_dim];
        *o = requant.requantize(dot_panel(qa, panel));
    }
}

/// Portable `i8 x i8 -> i32` panel dot product with eight unrolled `i32`
/// accumulator lanes — a reduction shape the autovectorizer turns into
/// integer multiply-add lanes on any target. Integer adds are associative,
/// so the lane split cannot change the result.
fn dot_panel(qa: &[i16], panel: &[i8]) -> i32 {
    let mut lanes = [0i32; 8];
    for (ca, cp) in qa.chunks_exact(8).zip(panel.chunks_exact(8)) {
        for l in 0..8 {
            lanes[l] += ca[l] as i32 * cp[l] as i32;
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&a, &b) in qa
        .chunks_exact(8)
        .remainder()
        .iter()
        .zip(panel.chunks_exact(8).remainder())
    {
        acc += a as i32 * b as i32;
    }
    acc
}

/// Explicit AVX2 microkernel for the int8 GEMM row sweep.
///
/// The baseline `x86-64` target the workspace builds for is SSE2-only,
/// where the autovectorized f32 kernels already saturate the 4-wide FP
/// units — integer code gains nothing at the same width. `pmaddwd`
/// (16 `i16 x i16` products with pairwise `i32` adds per instruction) is
/// what makes int8 pay off, so this path is selected by runtime feature
/// detection, computing exactly the same `i32` accumulators as
/// [`dot_panel`].
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::QuantParams;
    use std::arch::x86_64::*;

    /// Horizontal max of eight non-negative `f32` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hmax(v: __m256) -> f32 {
        let m = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b00_00_11_10));
        let m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b00_00_00_01));
        _mm_cvtss_f32(m)
    }

    /// AVX2 activation-row preparation, bit-identical to [`super::prep_row`]
    /// on every input: the finite/`max_abs` scan is 8-wide (`max` is
    /// order-independent, and the unordered `<  inf` compare rejects NaN
    /// exactly like `is_finite`), and the quantize pass applies the same
    /// multiply / add-signed-half / truncate sequence as
    /// [`super::quantize_activation`], 16 lanes per sweep.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support. `qa.len() == a_row.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prep_row(a_row: &[f32], qa: &mut [i16]) -> Option<f32> {
        let n = a_row.len();
        let p = a_row.as_ptr();
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
        let inf = _mm256_set1_ps(f32::INFINITY);
        let mut vmax = _mm256_setzero_ps();
        let mut finite_mask = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
        let mut t = 0;
        while t + 8 <= n {
            let a = _mm256_and_ps(_mm256_loadu_ps(p.add(t)), abs_mask);
            finite_mask = _mm256_and_ps(finite_mask, _mm256_cmp_ps::<_CMP_LT_OQ>(a, inf));
            vmax = _mm256_max_ps(vmax, a);
            t += 8;
        }
        let mut finite = _mm256_movemask_ps(finite_mask) == 0xFF;
        let mut max_abs = if finite { hmax(vmax) } else { 0.0 };
        while t < n {
            let v = *p.add(t);
            finite &= v.is_finite();
            max_abs = max_abs.max(v.abs());
            t += 1;
        }
        if !finite {
            return None;
        }
        let scale = (max_abs / 127.0).max(QuantParams::MIN_SCALE);
        let inv = 1.0 / scale;
        let invv = _mm256_set1_ps(inv);
        let half = _mm256_set1_ps(0.5);
        let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
        let lo = _mm256_set1_epi32(-128);
        let hi = _mm256_set1_epi32(127);
        let q = qa.as_mut_ptr();
        let mut t = 0;
        while t + 16 <= n {
            let y0 = _mm256_mul_ps(_mm256_loadu_ps(p.add(t)), invv);
            let y1 = _mm256_mul_ps(_mm256_loadu_ps(p.add(t + 8)), invv);
            let r0 = _mm256_add_ps(y0, _mm256_or_ps(half, _mm256_and_ps(y0, sign_mask)));
            let r1 = _mm256_add_ps(y1, _mm256_or_ps(half, _mm256_and_ps(y1, sign_mask)));
            let i0 = _mm256_min_epi32(_mm256_max_epi32(_mm256_cvttps_epi32(r0), lo), hi);
            let i1 = _mm256_min_epi32(_mm256_max_epi32(_mm256_cvttps_epi32(r1), lo), hi);
            // packssdw interleaves per 128-bit lane; the permute restores
            // source order before the 16-code store.
            let packed = _mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_packs_epi32(i0, i1));
            _mm256_storeu_si256(q.add(t) as *mut __m256i, packed);
            t += 16;
        }
        while t < n {
            *q.add(t) = super::quantize_activation(*p.add(t), inv);
            t += 1;
        }
        Some(scale)
    }

    /// Horizontal sum of eight `i32` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// Sixteen products of a widened activation chunk (loaded once by the
    /// caller, shared across panels) against one panel chunk, accumulated
    /// pairwise into eight `i32` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn madd16(acc: __m256i, av: __m256i, p: *const i8) -> __m256i {
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i));
        _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv))
    }

    /// One GEMM output row: four-panel-unrolled `pmaddwd` sweeps sharing
    /// each activation load, a single-panel sweep for the panel tail and a
    /// scalar loop for the sub-16 reduction tail.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support. `qa.len() == k_dim`,
    /// `panels.len() == out_row.len() * k_dim` (guaranteed by the
    /// [`super::PackedInt8`] layout).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_row(
        qa: &[i16],
        panels: &[i8],
        k_dim: usize,
        requant: QuantParams,
        out_row: &mut [f32],
    ) {
        let n = out_row.len();
        let a = qa.as_ptr();
        let k_main = k_dim - k_dim % 16;
        let scale4 = _mm_set1_ps(requant.scale());
        let mut j = 0;
        while j + 4 <= n {
            let p0 = panels.as_ptr().add(j * k_dim);
            let p1 = panels.as_ptr().add((j + 1) * k_dim);
            let p2 = panels.as_ptr().add((j + 2) * k_dim);
            let p3 = panels.as_ptr().add((j + 3) * k_dim);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut t = 0;
            while t < k_main {
                let av = _mm256_loadu_si256(a.add(t) as *const __m256i);
                acc0 = madd16(acc0, av, p0.add(t));
                acc1 = madd16(acc1, av, p1.add(t));
                acc2 = madd16(acc2, av, p2.add(t));
                acc3 = madd16(acc3, av, p3.add(t));
                t += 16;
            }
            // Cross-panel horizontal reduce: three hadds fold the four
            // 8-lane accumulators into one [s0, s1, s2, s3] vector (integer
            // adds in any order — same sums as four independent hsums).
            let t01 = _mm256_hadd_epi32(acc0, acc1);
            let t23 = _mm256_hadd_epi32(acc2, acc3);
            let quad = _mm256_hadd_epi32(t01, t23);
            let mut sums = _mm_add_epi32(
                _mm256_castsi256_si128(quad),
                _mm256_extracti128_si256(quad, 1),
            );
            if t < k_dim {
                let mut s = [0i32; 4];
                _mm_storeu_si128(s.as_mut_ptr() as *mut __m128i, sums);
                while t < k_dim {
                    let av = *a.add(t) as i32;
                    s[0] += av * *p0.add(t) as i32;
                    s[1] += av * *p1.add(t) as i32;
                    s[2] += av * *p2.add(t) as i32;
                    s[3] += av * *p3.add(t) as i32;
                    t += 1;
                }
                sums = _mm_loadu_si128(s.as_ptr() as *const __m128i);
            }
            // Requantize all four outputs at once: cvtdq2ps + mulps is the
            // exact vector form of `QuantParams::requantize` with the
            // kernel's zero point of 0.
            let f = _mm_mul_ps(_mm_cvtepi32_ps(sums), scale4);
            _mm_storeu_ps(out_row.as_mut_ptr().add(j), f);
            j += 4;
        }
        while j < n {
            let p = panels.as_ptr().add(j * k_dim);
            let mut acc = _mm256_setzero_si256();
            let mut t = 0;
            while t < k_main {
                let av = _mm256_loadu_si256(a.add(t) as *const __m256i);
                acc = madd16(acc, av, p.add(t));
                t += 16;
            }
            let mut s = hsum(acc);
            while t < k_dim {
                s += *a.add(t) as i32 * *p.add(t) as i32;
                t += 1;
            }
            out_row[j] = requant.requantize(s);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;
    use proptest::prelude::*;

    #[test]
    fn pack_round_trips_onto_the_fake_quant_grid() {
        let mut rng = Rng::new(1);
        let w = Matrix::randn(16, 8, 0.02, &mut rng);
        let packed = PackedInt8::pack(&w);
        // Same fit as the fake-quant reference: dequantized weights land on
        // the identical grid.
        let qp = QuantParams::fit_symmetric(&w);
        assert_eq!(packed.params(), qp);
        assert_eq!(packed.dequantize(), qp.fake_quant_matrix(&w));
        assert_eq!(packed.size_bytes(), 16 * 8);
        assert!(!packed.is_poisoned());
    }

    #[test]
    fn panels_are_the_transposed_weight() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0], &[-5.0, 6.0]]);
        let packed = PackedInt8::pack(&w);
        let qp = packed.params();
        for j in 0..2 {
            let panel = packed.panel(j);
            assert_eq!(panel.len(), 3);
            for k in 0..3 {
                assert_eq!(panel[k], qp.quantize(w[(k, j)]), "panel {j} elem {k}");
            }
        }
    }

    /// The dequantized activations exactly as the kernel's row prep
    /// computes them: `code * row_scale` per element.
    fn dequantized_activations(x: &Matrix) -> Matrix {
        let mut x_q = Matrix::zeros(x.rows(), x.cols());
        let mut qa = vec![0i16; x.cols()];
        for r in 0..x.rows() {
            let scale = prep_row(x.row(r), &mut qa).expect("finite row");
            for c in 0..x.cols() {
                x_q[(r, c)] = qa[c] as f32 * scale;
            }
        }
        x_q
    }

    #[test]
    fn gemm_matches_f32_gemm_of_dequantized_operands() {
        // The integer kernel must compute exactly x_q * w_q (in real
        // units): compare against the f32 GEMM over both dequantized
        // operands, with a tolerance covering only f32 summation rounding.
        let mut rng = Rng::new(2);
        let x = Matrix::randn(9, 33, 1.0, &mut rng);
        let w = Matrix::randn(33, 7, 0.02, &mut rng);
        let packed = PackedInt8::pack(&w);
        let y = matmul_quantized(&x, &packed);
        let reference = dequantized_activations(&x).matmul(&packed.dequantize());
        assert!(
            y.approx_eq(&reference, 1e-4),
            "int8 GEMM diverged from dequantized reference"
        );
    }

    #[test]
    fn activation_codes_stay_within_one_step_of_the_quantize_grid() {
        // The reciprocal-multiply / add-half-truncate formula is documented
        // to land within one code of QuantParams::quantize's
        // round-half-away grid.
        let mut rng = Rng::new(11);
        let x = Matrix::randn(8, 97, 1.0, &mut rng);
        let mut qa = vec![0i16; x.cols()];
        for r in 0..x.rows() {
            let scale = prep_row(x.row(r), &mut qa).unwrap();
            let qp = QuantParams::fit_symmetric_slice(x.row(r));
            assert_eq!(qp.scale(), scale, "prep fit must match fit_symmetric_slice");
            for (c, &v) in x.row(r).iter().enumerate() {
                let reference = qp.quantize(v) as i16;
                assert!(
                    (qa[c] - reference).abs() <= 1,
                    "row {r} col {c}: code {} vs grid {reference}",
                    qa[c]
                );
            }
        }
    }

    #[test]
    fn avx2_prep_is_bit_identical_to_portable_prep() {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut rng = Rng::new(12);
            // Lengths exercising the 16-wide quantize body, the 8-wide scan
            // body and both scalar tails.
            for &n in &[1usize, 7, 8, 15, 16, 17, 31, 32, 64, 100] {
                let row = Matrix::randn(1, n, 2.0, &mut rng);
                let mut qa_ref = vec![0i16; n];
                let mut qa_vec = vec![0i16; n];
                let s_ref = prep_row(row.row(0), &mut qa_ref);
                // SAFETY: AVX2 verified above.
                let s_vec = unsafe { avx2::prep_row(row.row(0), &mut qa_vec) };
                assert_eq!(s_ref, s_vec, "scale diverged at n={n}");
                assert_eq!(qa_ref, qa_vec, "codes diverged at n={n}");
                // Non-finite anywhere: both reject.
                let mut bad = row.clone();
                bad[(0, n / 2)] = f32::NAN;
                assert_eq!(prep_row(bad.row(0), &mut qa_ref), None);
                // SAFETY: AVX2 verified above.
                assert_eq!(unsafe { avx2::prep_row(bad.row(0), &mut qa_vec) }, None);
            }
        }
    }

    #[test]
    fn gemm_is_close_to_full_precision() {
        let mut rng = Rng::new(3);
        let x = Matrix::randn(5, 64, 1.0, &mut rng);
        let w = Matrix::randn(64, 12, 0.02, &mut rng);
        let y = matmul_quantized(&x, &PackedInt8::pack(&w));
        let exact = x.matmul(&w);
        // Error budget: weight step/2 + activation step/2 per product term.
        let tol = 0.05 * exact.max_abs().max(1.0);
        assert!(y.approx_eq(&exact, tol), "int8 too far from f32");
    }

    #[test]
    fn into_variant_reuses_dirty_buffer() {
        let mut rng = Rng::new(4);
        let x = Matrix::randn(3, 8, 1.0, &mut rng);
        let w = Matrix::randn(8, 5, 0.02, &mut rng);
        let packed = PackedInt8::pack(&w);
        let mut out = Matrix::filled(3, 5, f32::NAN);
        matmul_quantized_into(&x, &packed, &mut out);
        assert_eq!(out, matmul_quantized(&x, &packed));
    }

    #[test]
    fn nonfinite_activation_poisons_its_output_row_only() {
        let mut rng = Rng::new(5);
        let mut x = Matrix::randn(4, 6, 1.0, &mut rng);
        x[(2, 3)] = f32::NAN;
        let w = Matrix::randn(6, 5, 0.02, &mut rng);
        let y = matmul_quantized(&x, &PackedInt8::pack(&w));
        for j in 0..5 {
            assert!(y[(2, j)].is_nan(), "row 2 col {j} must be poisoned");
        }
        for i in [0, 1, 3] {
            assert!(y.row(i).iter().all(|v| v.is_finite()), "row {i} healthy");
        }
        // +inf is a fault too, not just NaN.
        x[(2, 3)] = f32::INFINITY;
        let y = matmul_quantized(&x, &PackedInt8::pack(&w));
        assert!(y.row(2).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn nonfinite_weight_poisons_its_output_column_only() {
        let mut rng = Rng::new(6);
        let x = Matrix::randn(4, 6, 1.0, &mut rng);
        let mut w = Matrix::randn(6, 5, 0.02, &mut rng);
        w[(1, 2)] = f32::NAN;
        let packed = PackedInt8::pack(&w);
        assert!(packed.is_poisoned());
        let y = matmul_quantized(&x, &packed);
        for i in 0..4 {
            assert!(y[(i, 2)].is_nan(), "col 2 row {i} must be poisoned");
            for j in [0, 1, 3, 4] {
                assert!(y[(i, j)].is_finite(), "col {j} healthy");
            }
        }
        // The dequantized view shows the same poisoned column.
        let deq = packed.dequantize();
        assert!(deq[(0, 2)].is_nan());
        assert!(deq[(0, 1)].is_finite());
    }

    #[test]
    fn kernel_matches_exact_integer_reference_on_ragged_shapes() {
        // Whichever kernel dispatch selects (AVX2 or the portable lanes),
        // the result must equal the plainly-written i32 accumulation over
        // the quantized operands, bit for bit — including reduction tails
        // (k % 16 != 0) and panel tails (n % 4 != 0).
        let mut rng = Rng::new(7);
        for &(m, k, n) in &[(3, 16, 4), (2, 19, 7), (5, 64, 10), (1, 7, 3), (4, 33, 1)] {
            let x = Matrix::randn(m, k, 1.0, &mut rng);
            let w = Matrix::randn(k, n, 0.02, &mut rng);
            let packed = PackedInt8::pack(&w);
            let y = matmul_quantized(&x, &packed);
            let w_scale = packed.params().scale();
            let mut codes = vec![0i16; k];
            for i in 0..m {
                let scale = prep_row(x.row(i), &mut codes).unwrap();
                let qa: Vec<i32> = codes.iter().map(|&q| q as i32).collect();
                let requant = QuantParams::new((scale as f64 * w_scale as f64) as f32, 0);
                for j in 0..n {
                    let acc: i32 = qa
                        .iter()
                        .zip(packed.panel(j))
                        .map(|(&a, &b)| a * b as i32)
                        .sum();
                    assert_eq!(
                        y[(i, j)],
                        requant.requantize(acc),
                        "kernel diverged at {m}x{k}x{n} elem ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let x = Matrix::zeros(0, 4);
        let w = Matrix::zeros(4, 3);
        assert_eq!(matmul_quantized(&x, &PackedInt8::pack(&w)).shape(), (0, 3));
        let x = Matrix::zeros(2, 4);
        let packed = PackedInt8::pack(&Matrix::zeros(4, 0));
        assert_eq!(matmul_quantized(&x, &packed).shape(), (2, 0));
        // All-zero operands stay exactly zero.
        let y = matmul_quantized(&x, &PackedInt8::pack(&w));
        assert_eq!(y, Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "matmul_quantized shape mismatch")]
    fn shape_mismatch_panics() {
        let x = Matrix::zeros(2, 3);
        let w = PackedInt8::pack(&Matrix::zeros(4, 5));
        let _ = matmul_quantized(&x, &w);
    }

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-5.0f32..5.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn prop_int8_gemm_matches_dequantized_reference(
            x in arb_matrix(5, 37),
            w in arb_matrix(37, 6),
        ) {
            // Exactness contract of the integer core: int8 GEMM == f32 GEMM
            // over the dequantized operands, up to f32 rounding of the
            // requantized result.
            let packed = PackedInt8::pack(&w);
            let y = matmul_quantized(&x, &packed);
            let reference = dequantized_activations(&x).matmul(&packed.dequantize());
            let tol = 1e-3 * reference.max_abs().max(1.0);
            prop_assert!(y.approx_eq(&reference, tol));
        }

        #[test]
        fn prop_unroll_is_batch_invariant(x in arb_matrix(6, 16), w in arb_matrix(16, 11)) {
            // Row i of the batched GEMM equals the GEMM of row i alone:
            // integer accumulation is exact, so batching cannot change
            // results (the analogue of the f32 kernels' fixed-order
            // contract).
            let packed = PackedInt8::pack(&w);
            let y = matmul_quantized(&x, &packed);
            for i in 0..x.rows() {
                let yi = matmul_quantized(&x.slice_rows(i, i + 1), &packed);
                prop_assert_eq!(y.slice_rows(i, i + 1), yi);
            }
        }
    }
}
