//! Scalar and row-wise nonlinear operations: softmax, GELU, erf.

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Maximum absolute error is about `1.5e-7`, which is far below the `f32`
/// noise floor of the models in this workspace.
///
/// # Example
///
/// ```
/// assert!((pivot_tensor::erf(0.0)).abs() < 1e-7);
/// assert!((pivot_tensor::erf(10.0) - 1.0).abs() < 1e-6);
/// ```
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061_405_4 * t - 1.453_152_1) * t) + 1.421_413_8) * t - 0.284_496_72) * t
            + 0.254_829_6)
            * t
            * (-x * x).exp();
    sign * y
}

/// Exact (erf-based) GELU activation, as used in the ViT MLP blocks.
///
/// `gelu(x) = x/2 * (1 + erf(x / sqrt(2)))`
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x * std::f32::consts::FRAC_1_SQRT_2))
}

/// Derivative of [`gelu`] with respect to its input.
///
/// `d/dx gelu(x) = Phi(x) + x * phi(x)` where `Phi`/`phi` are the standard
/// normal CDF/PDF.
pub fn gelu_derivative(x: f32) -> f32 {
    let cdf = 0.5 * (1.0 + erf(x * std::f32::consts::FRAC_1_SQRT_2));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f32::consts::PI).sqrt();
    cdf + x * pdf
}

/// Numerically stable softmax of one row (paper Eq. 2: subtracts the max
/// before exponentiation).
///
/// Returns a vector of the same length summing to 1. An empty input returns
/// an empty vector.
pub fn softmax_row(row: &[f32]) -> Vec<f32> {
    if row.is_empty() {
        return Vec::new();
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax of one row.
///
/// An empty input returns an empty vector.
pub fn log_softmax_row(row: &[f32]) -> Vec<f32> {
    if row.is_empty() {
        return Vec::new();
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    row.iter().map(|&x| x - max - log_sum).collect()
}

/// Applies the stable softmax to every row of a matrix in place.
pub fn stable_softmax_in_place(m: &mut crate::Matrix) {
    for r in 0..m.rows() {
        let soft = softmax_row(m.row(r));
        m.row_mut(r).copy_from_slice(&soft);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax_row(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_row(&[1.0, 2.0, 3.0]);
        let b = softmax_row(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let s = softmax_row(&[1e30f32.ln(), 0.0]);
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let row = [0.5, -1.0, 2.0, 0.0];
        let ls = log_softmax_row(&row);
        let s = softmax_row(&row);
        for (l, p) in ls.iter().zip(&s) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.84134).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.15866).abs() < 1e-3);
        // Large positive saturates to identity, large negative to zero.
        assert!((gelu(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_derivative_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_derivative(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} fd {fd}",
                gelu_derivative(x)
            );
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        assert!(softmax_row(&[]).is_empty());
        assert!(log_softmax_row(&[]).is_empty());
    }

    #[test]
    fn softmax_with_some_neg_inf_underflows_to_zero_probability() {
        // A -inf logit is a representable "impossible class": it must get
        // probability exactly 0 while the rest stays a valid distribution.
        let s = softmax_row(&[0.0, f32::NEG_INFINITY, 1.0]);
        assert_eq!(s[1], 0.0);
        assert!(s.iter().all(|p| p.is_finite()));
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_degenerate_rows_produce_nan_fault_signature() {
        // All--inf and NaN-containing rows cannot form a distribution; the
        // kernel propagates NaN and callers (pivot-nn's normalized entropy,
        // the cascade gate) are responsible for mapping that to a defined
        // escalate/degrade decision. This test pins the fault signature.
        let all_neg_inf = softmax_row(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!(all_neg_inf.iter().all(|p| p.is_nan()));
        let with_nan = softmax_row(&[0.0, f32::NAN]);
        assert!(with_nan.iter().any(|p| p.is_nan()));
    }

    proptest! {
        #[test]
        fn prop_softmax_simplex(row in proptest::collection::vec(-20.0f32..20.0, 1..32)) {
            let s = softmax_row(&row);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
            prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_softmax_order_preserving(row in proptest::collection::vec(-20.0f32..20.0, 2..16)) {
            let s = softmax_row(&row);
            for i in 0..row.len() {
                for j in 0..row.len() {
                    if row[i] > row[j] {
                        prop_assert!(s[i] >= s[j]);
                    }
                }
            }
        }

        #[test]
        fn prop_erf_bounded_and_odd(x in -6.0f32..6.0) {
            prop_assert!(erf(x).abs() <= 1.0 + 1e-6);
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-6);
        }
    }
}
