//! Seeded random number generation.
//!
//! Every stochastic component in the workspace (weight init, dataset
//! synthesis, shuffling) draws from this wrapper so that experiments are
//! reproducible from a single `u64` seed.
//!
//! The generator is a self-contained xoshiro256++ implementation (public
//! domain algorithm by Blackman & Vigna) seeded through SplitMix64, so the
//! workspace builds with **zero external dependencies** — the previous
//! `rand::rngs::StdRng` backend required crates.io access, which the build
//! environment does not have.

/// A deterministic random number generator seeded from a `u64`.
///
/// Implements xoshiro256++ with SplitMix64 state expansion and adds the
/// normal sampling used for weight initialization (Box-Muller, so no extra
/// distribution dependency is needed).
///
/// # Example
///
/// ```
/// use pivot_tensor::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    cached_normal: Option<f32>,
}

/// SplitMix64 step, used to expand a 64-bit seed into the 256-bit
/// xoshiro state (the seeding procedure recommended by the authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            state,
            cached_normal: None,
        }
    }

    /// The raw xoshiro256++ step: uniform over all `u64` values.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 24 bits of mantissa entropy.
    fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift reduction
    /// with rejection (unbiased).
    fn below_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem its own stream without coupling their draw counts.
    pub fn fork(&mut self, salt: u64) -> Self {
        let base: u64 = self.next_u64();
        Self::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform requires lo < hi");
        lo + (hi - lo) * self.unit_f32()
    }

    /// Uniform integer sample in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        self.below_u64(n as u64) as usize
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit_f32() < p
    }

    /// Standard normal sample via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - self.unit_f32();
        let u2: f32 = self.unit_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.normal() == b.normal()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::new(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            let x = rng.uniform(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::new(13);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7)] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(7);
        let idx = rng.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Rng::new(3);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(1);
        // Forks taken sequentially consume base state, so they differ.
        assert_ne!(f1.normal().to_bits(), f2.normal().to_bits());
    }
}
