//! Tensor health checks: non-finite detection for fault-tolerant inference.
//!
//! Quantized edge deployments routinely see corrupted weights (SRAM bit
//! flips), degenerate activations, and checkpoint damage. The cascade in
//! `pivot-core` uses these checks to decide when to escalate a sample or fall
//! back to an already-computed lower-effort prediction instead of silently
//! propagating NaN through softmax and entropy.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// A tensor that must be finite contained NaN or ±inf values.
///
/// Carries enough detail to localize the damage without retaining the tensor
/// itself: per-kind counts and the position of the first offending element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonFiniteError {
    /// Human-readable name of the checked tensor (e.g. `"logits"`).
    pub context: String,
    /// Number of NaN entries.
    pub nan: usize,
    /// Number of `+inf` entries.
    pub pos_inf: usize,
    /// Number of `-inf` entries.
    pub neg_inf: usize,
    /// `(row, col)` of the first non-finite entry.
    pub first: (usize, usize),
}

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite values in {}: {} NaN, {} +inf, {} -inf (first at {:?})",
            self.context, self.nan, self.pos_inf, self.neg_inf, self.first
        )
    }
}

impl Error for NonFiniteError {}

impl Matrix {
    /// Whether every element is finite (no NaN, no ±inf).
    ///
    /// Fast path used on hot inference loops; use [`Matrix::validate_finite`]
    /// when a diagnostic error is needed.
    pub fn is_all_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }

    /// Checks that every element is finite, returning a detailed
    /// [`NonFiniteError`] otherwise.
    ///
    /// `context` names the tensor in the error (e.g. `"enc3.mlp.fc1.weight"`).
    pub fn validate_finite(&self, context: &str) -> Result<(), NonFiniteError> {
        let mut nan = 0usize;
        let mut pos_inf = 0usize;
        let mut neg_inf = 0usize;
        let mut first = None;
        for (i, &v) in self.as_slice().iter().enumerate() {
            if v.is_finite() {
                continue;
            }
            if v.is_nan() {
                nan += 1;
            } else if v > 0.0 {
                pos_inf += 1;
            } else {
                neg_inf += 1;
            }
            if first.is_none() {
                let cols = self.cols().max(1);
                first = Some((i / cols, i % cols));
            }
        }
        match first {
            None => Ok(()),
            Some(first) => Err(NonFiniteError {
                context: context.to_string(),
                nan,
                pos_inf,
                neg_inf,
                first,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_matrix_passes() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.5]]);
        assert!(m.is_all_finite());
        assert!(m.validate_finite("m").is_ok());
    }

    #[test]
    fn non_finite_kinds_are_counted_and_located() {
        let m = Matrix::from_rows(&[
            &[1.0, f32::NAN, 2.0],
            &[f32::INFINITY, f32::NEG_INFINITY, f32::NAN],
        ]);
        assert!(!m.is_all_finite());
        let err = m.validate_finite("acts").unwrap_err();
        assert_eq!(err.nan, 2);
        assert_eq!(err.pos_inf, 1);
        assert_eq!(err.neg_inf, 1);
        assert_eq!(err.first, (0, 1));
        assert!(err.to_string().contains("acts"));
    }

    #[test]
    fn empty_matrix_is_finite() {
        let m = Matrix::zeros(0, 4);
        assert!(m.is_all_finite());
        assert!(m.validate_finite("empty").is_ok());
    }
}
