//! Row-major dense `f32` matrix.

use crate::microkernel::{f32_simd_available, LhsView, PackedF32};
use crate::rng::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Tile edge used by the tiled scalar matmul fallback.
///
/// 32 rows of f32 at ViT widths (64–1536 columns) keep one tile of the
/// streamed operand plus a block of output rows inside a typical 256 KiB
/// L2 while staying comfortably under L1 for the small test configs. The
/// accumulation order of every kernel is independent of this constant
/// (ascending `k` per output element), so changing it cannot change
/// results — only speed.
pub const MATMUL_TILE: usize = 32;

/// `rhs` footprint (bytes) below which the scalar matmul arms skip tiling.
///
/// When the whole streamed operand is cache-resident (L2 on any machine
/// this targets), blocking saves no memory traffic — every `rhs` row is a
/// hit anyway — and the extra tile loops only cost overhead. The earlier
/// 16 KiB (half-of-L1) threshold was too conservative: `BENCH_matmul.json`
/// showed the tiled path *losing* to naive at 96x96x96 (36 KiB rhs), so
/// the cutoff now admits anything up to 128 KiB and tiling is reserved
/// for operands that genuinely spill (large MLP expansions). Both scalar
/// paths share the same ascending-`k` accumulation order, so this
/// dispatch can never change results.
const SMALL_GEMM_RHS_BYTES: usize = 128 * 1024;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type used across the PIVOT workspace.
/// Higher-rank data (a batch of token embeddings, a stack of attention heads)
/// is represented as a `Vec<Matrix>` or by packing along rows, which keeps
/// the kernel surface small and easy to verify.
///
/// # Example
///
/// ```
/// use pivot_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} expected {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix that takes ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a matrix with entries drawn i.i.d. from `N(0, std^2)`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.normal() * std)
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.uniform(lo, hi))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// 128-bit structural content hash: shape plus every element's bit
    /// pattern. Equal hashes identify matrices whose use in inference is
    /// bit-identical (see [`crate::ContentHasher`] for the collision
    /// argument); `-0.0`/`0.0` and distinct NaN payloads hash apart.
    pub fn content_hash(&self) -> u128 {
        let mut h = crate::ContentHasher::new();
        h.write_usize(self.rows);
        h.write_usize(self.cols);
        h.write_f32_slice(&self.data);
        h.finish()
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow of the contiguous row range `start..end` as a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn rows_slice(&self, start: usize, end: usize) -> &[f32] {
        assert!(
            start <= end && end <= self.rows,
            "row range {start}..{end} out of bounds ({} rows)",
            self.rows
        );
        &self.data[start * self.cols..end * self.cols]
    }

    /// Mutable borrow of the contiguous row range `start..end` as a flat
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn rows_mut(&mut self, start: usize, end: usize) -> &mut [f32] {
        assert!(
            start <= end && end <= self.rows,
            "row range {start}..{end} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[start * self.cols..end * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Delegates to the dispatched kernel ([`Self::matmul_into`]): the
    /// packed SIMD microkernel on AVX2+FMA hosts, the scalar
    /// untiled/tiled ladder elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Reference ikj matmul with no blocking — the ground truth every
    /// other kernel is validated against. Accumulates each output element
    /// in ascending-`k` order with one scalar accumulator (round after
    /// every multiply, no fusing): the scalar arms of [`Self::matmul_into`]
    /// reproduce it bit for bit, and the SIMD arm is pinned to it within
    /// the fused-rounding tolerance documented in [`crate::microkernel`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = rhs.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Matrix product written into a caller-owned output buffer, so hot
    /// loops (batched forwards, attention scores) can reuse one allocation
    /// across calls.
    ///
    /// Dispatch ladder, decided per call:
    ///
    /// 1. **SIMD** — on x86-64 with AVX2+FMA ([`crate::f32_simd_available`]),
    ///    `rhs` is packed into [`PackedF32`] column panels and the
    ///    register-tiled fused kernel in [`crate::microkernel`] runs. Hot
    ///    loops that reuse the same `rhs` should pack once and call
    ///    [`Self::matmul_prepacked_into`] to skip the per-call pack.
    /// 2. **Untiled scalar** — when `rhs` is cache-resident
    ///    ([`SMALL_GEMM_RHS_BYTES`]), the plain ikj loop: tiling an operand
    ///    that already fits in cache only adds loop overhead.
    /// 3. **Tiled scalar** — output rows and the reduction tiled at
    ///    [`MATMUL_TILE`] so a `MATMUL_TILE`-row panel of `rhs` is streamed
    ///    once per row block.
    ///
    /// Both scalar arms accumulate each element in ascending-`k` order with
    /// one scalar accumulator and are **bit-identical** to
    /// [`Self::matmul_naive`]. The SIMD arm keeps the same per-element
    /// chain but fuses each multiply-add (one rounding per term), so it
    /// matches naive within the documented tolerance — see
    /// [`crate::microkernel`] — while staying a pure function of
    /// `(a_row, rhs)`: results never depend on the output's row count, on
    /// batching, or on how callers parallelize around the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not
    /// `self.rows() x rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            let packed = PackedF32::pack(rhs);
            crate::microkernel::gemm_packed(self.lhs_view(), self.rows, &packed, &mut out.data);
            return;
        }
        self.matmul_into_scalar(rhs, out);
    }

    /// Row-major [`LhsView`] of this matrix for the packed kernels.
    fn lhs_view(&self) -> LhsView<'_> {
        LhsView {
            base: &self.data,
            row_stride: self.cols,
            k_stride: 1,
        }
    }

    /// The scalar dispatch of [`Self::matmul_into`]: untiled when `rhs` is
    /// cache-resident, tiled otherwise. Both arms are bit-identical to
    /// [`Self::matmul_naive`].
    fn matmul_into_scalar(&self, rhs: &Matrix, out: &mut Matrix) {
        if rhs.data.len() * std::mem::size_of::<f32>() <= SMALL_GEMM_RHS_BYTES {
            self.matmul_into_scalar_untiled(rhs, out);
        } else {
            self.matmul_into_scalar_tiled(rhs, out);
        }
    }

    /// Untiled scalar ikj arm — the [`Self::matmul_naive`] loop writing
    /// into a reused buffer.
    fn matmul_into_scalar_untiled(&self, rhs: &Matrix, out: &mut Matrix) {
        out.data.fill(0.0);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
    }

    /// Tiled scalar arm: output rows and the reduction tiled at
    /// [`MATMUL_TILE`]. Ascending-`k` per element, bit-identical to the
    /// untiled arm — tiling only reorders *which rows* are in flight,
    /// never the reduction order within an element.
    fn matmul_into_scalar_tiled(&self, rhs: &Matrix, out: &mut Matrix) {
        out.data.fill(0.0);
        let n = rhs.cols;
        for ii in (0..self.rows).step_by(MATMUL_TILE) {
            let i_end = (ii + MATMUL_TILE).min(self.rows);
            for kk in (0..self.cols).step_by(MATMUL_TILE) {
                let k_end = (kk + MATMUL_TILE).min(self.cols);
                for i in ii..i_end {
                    let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    for (k, &a_ik) in a_row[kk..k_end].iter().enumerate() {
                        let b_row = &rhs.data[(kk + k) * n..(kk + k + 1) * n];
                        for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                            *o += a_ik * b_kj;
                        }
                    }
                }
            }
        }
    }

    /// Matrix product against an operand packed once with
    /// [`PackedF32::pack`] — the panel-cached fast path for weight
    /// operands that are reused across many calls (see
    /// `pivot_nn::PreparedLinear`).
    ///
    /// Bit-identical to [`Self::matmul`] against the unpacked operand on
    /// every machine: the SIMD arm runs the identical kernel (packing is
    /// the only work hoisted out), and the non-SIMD fallback replays the
    /// scalar unfused accumulation order through the panel layout.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != packed.k()`.
    pub fn matmul_prepacked(&self, packed: &PackedF32) -> Matrix {
        let mut out = Matrix::zeros(self.rows, packed.n());
        self.matmul_prepacked_into(packed, &mut out);
        out
    }

    /// [`Self::matmul_prepacked`] into a caller-owned output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != packed.k()` or `out` is not
    /// `self.rows() x packed.n()`.
    pub fn matmul_prepacked_into(&self, packed: &PackedF32, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            packed.k(),
            "matmul_prepacked shape mismatch: {:?} x packed {}x{}",
            self.shape(),
            packed.k(),
            packed.n()
        );
        assert_eq!(
            out.shape(),
            (self.rows, packed.n()),
            "matmul_prepacked_into output shape mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            crate::microkernel::gemm_packed(self.lhs_view(), self.rows, packed, &mut out.data);
            return;
        }
        crate::microkernel::gemm_panels_unfused(self.lhs_view(), self.rows, packed, &mut out.data);
    }

    /// Matrix product `self * rhs.transpose()` without materializing the
    /// transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_b_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transpose_b`] into a caller-owned output buffer.
    ///
    /// Each output element is one dot product of two contiguous rows, so
    /// no packing is needed; the dispatch ladder is:
    ///
    /// 1. **SIMD** — AVX2+FMA lane-split fused dot kernel (exact
    ///    accumulation order documented in [`crate::microkernel`]).
    /// 2. **Untiled scalar** — when `rhs` is cache-resident
    ///    ([`SMALL_GEMM_RHS_BYTES`]), plain row-pair dot products: the
    ///    attention-score GEMM (`17x16 * (17x16)^T`, ~1 KiB rhs) lives
    ///    here and previously paid the tile-loop overhead for nothing.
    /// 3. **Tiled scalar** — output rows and `rhs` rows tiled at
    ///    [`MATMUL_TILE`] so a block of `rhs` rows stays cache-resident
    ///    across a block of `self` rows.
    ///
    /// Both scalar arms are single ascending-`k` accumulator chains and
    /// bit-identical to each other (and to `matmul_naive` against the
    /// materialized transpose).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()` or `out` is not
    /// `self.rows() x rhs.rows()`.
    pub fn matmul_transpose_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_transpose_b shape mismatch: {:?} x {:?}^T",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_transpose_b_into output shape mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            crate::microkernel::gemm_transpose_b(self, rhs, out);
            return;
        }
        self.matmul_transpose_b_into_scalar(rhs, out);
    }

    /// The scalar dispatch of [`Self::matmul_transpose_b_into`]: untiled
    /// row-pair dots when `rhs` is cache-resident, tiled otherwise.
    fn matmul_transpose_b_into_scalar(&self, rhs: &Matrix, out: &mut Matrix) {
        if rhs.data.len() * std::mem::size_of::<f32>() <= SMALL_GEMM_RHS_BYTES {
            self.matmul_transpose_b_scalar_untiled(rhs, out);
        } else {
            self.matmul_transpose_b_scalar_tiled(rhs, out);
        }
    }

    /// Untiled scalar arm of the transposed-B product.
    fn matmul_transpose_b_scalar_untiled(&self, rhs: &Matrix, out: &mut Matrix) {
        let n = rhs.rows;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..n {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// Tiled scalar arm of the transposed-B product — same per-element dot
    /// as the untiled arm, reordered across elements only.
    fn matmul_transpose_b_scalar_tiled(&self, rhs: &Matrix, out: &mut Matrix) {
        let n = rhs.rows;
        for ii in (0..self.rows).step_by(MATMUL_TILE) {
            let i_end = (ii + MATMUL_TILE).min(self.rows);
            for jj in (0..n).step_by(MATMUL_TILE) {
                let j_end = (jj + MATMUL_TILE).min(n);
                for i in ii..i_end {
                    let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for j in jj..j_end {
                        let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                        let mut acc = 0.0;
                        for (&a, &b) in a_row.iter().zip(b_row) {
                            acc += a * b;
                        }
                        out.data[i * n + j] = acc;
                    }
                }
            }
        }
    }

    /// Matrix product `self.transpose() * rhs` without materializing the
    /// transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transpose_a(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transpose_a_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transpose_a`] into a caller-owned output buffer.
    ///
    /// On AVX2+FMA machines this packs `rhs` and runs the same fused
    /// packed kernel as [`Self::matmul_into`] with a column-strided view
    /// of `self` — the transpose is never materialized. The scalar
    /// fallback runs the reduction over `self` rows in ascending order
    /// (dense inner loops, untiled: the weight-gradient shapes this serves
    /// keep `rhs` cache-resident), bit-identical to `transpose().matmul_naive(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()` or `out` is not
    /// `self.cols() x rhs.cols()`.
    pub fn matmul_transpose_a_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_transpose_a shape mismatch: {:?}^T x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_transpose_a_into output shape mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            let packed = PackedF32::pack(rhs);
            let view = LhsView {
                base: &self.data,
                row_stride: 1,
                k_stride: self.cols,
            };
            crate::microkernel::gemm_packed(view, self.cols, &packed, &mut out.data);
            return;
        }
        self.matmul_transpose_a_into_scalar(rhs, out);
    }

    /// Scalar arm of the transposed-A product (k-major accumulation,
    /// ascending `k` per element).
    fn matmul_transpose_a_into_scalar(&self, rhs: &Matrix, out: &mut Matrix) {
        out.data.fill(0.0);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b_kj;
                }
            }
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination `f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scaled(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|x| x * s);
    }

    /// Adds `other * s` to `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_in_place(&mut self, other: &Matrix, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Adds a row vector to every row (broadcast add), returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Sums all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute value, 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element in row `r` (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or the matrix has zero columns.
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "row_argmax on zero-column matrix");
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Centers each column to zero mean, returning a new matrix.
    pub fn center_columns(&self) -> Matrix {
        if self.rows == 0 {
            return self.clone();
        }
        let means: Vec<f32> = self
            .col_sums()
            .into_iter()
            .map(|s| s / self.rows as f32)
            .collect();
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &m) in out.row_mut(r).iter_mut().zip(&means) {
                *o -= m;
            }
        }
        out
    }

    /// Extracts rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows range out of bounds"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Extracts columns `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols range out of bounds"
        );
        Matrix::from_fn(self.rows, end - start, |r, c| self[(r, start + c)])
    }

    /// Horizontally concatenates `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        Matrix::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                other[(r, c - self.cols)]
            }
        })
    }

    /// Vertically concatenates `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// True when every pairwise element difference is at most `tol`.
    ///
    /// Shapes must match for the result to be `true`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {:?}",
            self.shape()
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {:?}",
            self.shape()
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        self.scaled(s)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled_in_place(rhs, 1.0);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// Worst elementwise deviation of `got` from `a.matmul_naive(b)`, as a
/// fraction of the documented fused-rounding envelope
/// `2k · ε · max(|A|·|B|, 1)` (see [`crate::microkernel`]); `<= 1.0`
/// means every element is within tolerance. Test-only oracle for the
/// SIMD arm; requires finite inputs.
#[cfg(test)]
pub(crate) fn max_fused_violation(got: &Matrix, a: &Matrix, b: &Matrix) -> f32 {
    let want = a.matmul_naive(b);
    let bound = a.map(f32::abs).matmul_naive(&b.map(f32::abs));
    let k = a.cols() as f32;
    got.as_slice()
        .iter()
        .zip(want.as_slice())
        .zip(bound.as_slice())
        .map(|((&g, &w), &bd)| (g - w).abs() / (2.0 * k * f32::EPSILON * bd.max(1.0)))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let mut rng = Rng::new(7);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(5, 6, 1.0, &mut rng);
        let direct = a.matmul(&b.transpose());
        assert!(a.matmul_transpose_b(&b).approx_eq(&direct, 1e-5));

        let c = Matrix::randn(4, 3, 1.0, &mut rng);
        let direct2 = a.transpose().matmul(&c);
        assert!(a.matmul_transpose_a(&c).approx_eq(&direct2, 1e-5));
    }

    #[test]
    fn scalar_arms_are_bit_identical_to_naive() {
        let mut rng = Rng::new(42);
        // Sizes straddling the tile edge: smaller, equal, off-by-one, multi-tile.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (MATMUL_TILE, MATMUL_TILE, MATMUL_TILE),
            (MATMUL_TILE + 1, MATMUL_TILE - 1, 2 * MATMUL_TILE + 3),
            (70, 65, 33),
        ] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let naive = a.matmul_naive(&b);
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_scalar_untiled(&b, &mut out);
            assert_eq!(naive, out, "untiled arm differs from naive at {m}x{k}x{n}");
            a.matmul_into_scalar_tiled(&b, &mut out);
            assert_eq!(naive, out, "tiled arm differs from naive at {m}x{k}x{n}");
            a.matmul_into_scalar(&b, &mut out);
            assert_eq!(naive, out, "scalar dispatch differs at {m}x{k}x{n}");
        }
    }

    #[test]
    fn scalar_dispatch_is_bit_identical_across_the_threshold() {
        // rhs footprints straddling SMALL_GEMM_RHS_BYTES (128 KiB):
        // 256x126 f32 = 126 KiB takes the untiled arm, 256x130 = 130 KiB
        // the tiled arm. Dispatch must never change results.
        let mut rng = Rng::new(77);
        for &(m, k, n) in &[(8, 256, 126), (8, 256, 130)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let naive = a.matmul_naive(&b);
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_scalar(&b, &mut out);
            assert_eq!(out, naive, "scalar dispatch changed results at {m}x{k}x{n}");
        }
    }

    #[test]
    fn dispatched_matmul_tracks_naive_at_vit_shapes() {
        // The benched ViT shapes: qkv slice, mlp expansion, square, batched.
        // The SIMD arm fuses multiply-adds, so it is pinned to naive within
        // the documented envelope; without SIMD the dispatch is bit-identical.
        let mut rng = Rng::new(78);
        for &(m, k, n) in &[(17, 64, 64), (17, 64, 128), (96, 96, 96), (544, 64, 64)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let got = a.matmul(&b);
            if f32_simd_available() {
                let v = max_fused_violation(&got, &a, &b);
                assert!(v <= 1.0, "SIMD arm out of tolerance at {m}x{k}x{n}: {v}");
            } else {
                assert_eq!(got, a.matmul_naive(&b), "dispatch changed results");
            }
        }
    }

    #[test]
    fn prepacked_matmul_is_bit_identical_to_matmul() {
        // Packing is the only work hoisted out: the prepacked entry point
        // must reproduce matmul() exactly on every machine, including into
        // a dirty output buffer.
        let mut rng = Rng::new(79);
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 17), (17, 64, 64), (33, 31, 40)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let packed = PackedF32::pack(&b);
            let want = a.matmul(&b);
            assert_eq!(a.matmul_prepacked(&packed), want, "{m}x{k}x{n}");
            let mut out = Matrix::filled(m, n, f32::NAN);
            a.matmul_prepacked_into(&packed, &mut out);
            assert_eq!(out, want, "dirty-buffer prepacked at {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_scalar_arms_are_bit_identical_to_naive() {
        let mut rng = Rng::new(80);
        // Attention-score shape (17x16 * (17x16)^T) plus tile-straddling.
        for &(m, k, n) in &[(17, 16, 17), (40, 33, 37), (5, 70, 64)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let bt = Matrix::randn(n, k, 1.0, &mut rng);
            let naive = a.matmul_naive(&bt.transpose());
            let mut out = Matrix::zeros(m, n);
            a.matmul_transpose_b_scalar_untiled(&bt, &mut out);
            assert_eq!(out, naive, "tb untiled arm differs at {m}x{k}x{n}");
            a.matmul_transpose_b_scalar_tiled(&bt, &mut out);
            assert_eq!(out, naive, "tb tiled arm differs at {m}x{k}x{n}");
            a.matmul_transpose_b_into_scalar(&bt, &mut out);
            assert_eq!(out, naive, "tb scalar dispatch differs at {m}x{k}x{n}");

            // transpose_a: the k-major scalar arm accumulates each element
            // in the same ascending-k order as naive on the transpose.
            let c = Matrix::randn(m, n, 1.0, &mut rng);
            let naive_ta = a.transpose().matmul_naive(&c);
            let mut out_ta = Matrix::zeros(k, n);
            a.matmul_transpose_a_into_scalar(&c, &mut out_ta);
            assert_eq!(out_ta, naive_ta, "ta scalar arm differs at {m}x{k}x{n}");
        }
    }

    #[test]
    fn dispatched_transpose_kernels_track_naive() {
        let mut rng = Rng::new(81);
        for &(m, k, n) in &[(17, 16, 17), (40, 33, 37)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let bt = Matrix::randn(n, k, 1.0, &mut rng);
            let got = a.matmul_transpose_b(&bt);
            let c = Matrix::randn(m, n, 1.0, &mut rng);
            let got_ta = a.matmul_transpose_a(&c);
            if f32_simd_available() {
                let v = max_fused_violation(&got, &a, &bt.transpose());
                assert!(v <= 1.0, "tb SIMD out of tolerance at {m}x{k}x{n}: {v}");
                let v = max_fused_violation(&got_ta, &a.transpose(), &c);
                assert!(v <= 1.0, "ta SIMD out of tolerance at {m}x{k}x{n}: {v}");
            } else {
                assert_eq!(got, a.matmul_naive(&bt.transpose()));
                assert_eq!(got_ta, a.transpose().matmul_naive(&c));
            }
        }
    }

    #[test]
    fn non_finite_inputs_propagate_on_every_arm() {
        // Fault-visibility contract: a poisoned lhs element must poison its
        // whole output row, a poisoned rhs element its whole output column,
        // and nothing else — on the dispatched path and both scalar arms.
        // (±inf may legitimately become NaN through inf−inf, so the
        // assertion is non-finiteness, not exact value.)
        let (m, k, n) = (9, 11, 18);
        for &bad in &[f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut rng = Rng::new(82);
            let mut a = Matrix::randn(m, k, 1.0, &mut rng);
            a[(3, 5)] = bad;
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let check_row = |out: &Matrix, label: &str| {
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(
                            out[(i, j)].is_finite(),
                            i != 3,
                            "{label}: ({i},{j}) with bad={bad}"
                        );
                    }
                }
            };
            check_row(&a.matmul(&b), "dispatched");
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_scalar_untiled(&b, &mut out);
            check_row(&out, "untiled");
            a.matmul_into_scalar_tiled(&b, &mut out);
            check_row(&out, "tiled");
            check_row(&a.matmul_prepacked(&PackedF32::pack(&b)), "prepacked");

            let a2 = Matrix::randn(m, k, 1.0, &mut rng);
            let mut b2 = Matrix::randn(k, n, 1.0, &mut rng);
            b2[(4, 7)] = bad;
            let check_col = |out: &Matrix, label: &str| {
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(
                            out[(i, j)].is_finite(),
                            j != 7,
                            "{label}: ({i},{j}) with bad={bad}"
                        );
                    }
                }
            };
            check_col(&a2.matmul(&b2), "dispatched");
            a2.matmul_into_scalar_untiled(&b2, &mut out);
            check_col(&out, "untiled");
            a2.matmul_into_scalar_tiled(&b2, &mut out);
            check_col(&out, "tiled");
            check_col(&a2.matmul_prepacked(&PackedF32::pack(&b2)), "prepacked");
            // transposed-B: same poisoned operand through the dot kernels.
            check_col(&a2.matmul_transpose_b(&b2.transpose()), "dispatched tb");
            let mut out_tb = Matrix::zeros(m, n);
            a2.matmul_transpose_b_into_scalar(&b2.transpose(), &mut out_tb);
            check_col(&out_tb, "scalar tb");
        }
    }

    #[test]
    fn matmul_into_reuses_dirty_buffer() {
        let mut rng = Rng::new(9);
        let a = Matrix::randn(7, 5, 1.0, &mut rng);
        let b = Matrix::randn(5, 6, 1.0, &mut rng);
        let mut out = Matrix::filled(7, 6, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let mut out_tb = Matrix::filled(7, 7, -3.0);
        a.matmul_transpose_b_into(&a, &mut out_tb);
        assert_eq!(out_tb, a.matmul_transpose_b(&a));

        let c = Matrix::randn(7, 6, 1.0, &mut rng);
        let mut out_ta = Matrix::filled(5, 6, 1e30);
        a.matmul_transpose_a_into(&c, &mut out_ta);
        assert_eq!(out_ta, a.matmul_transpose_a(&c));
    }

    #[test]
    #[should_panic(expected = "matmul_into output shape mismatch")]
    fn matmul_into_output_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 5);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(1);
        let a = Matrix::randn(5, 3, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn center_columns_zeroes_means() {
        let mut rng = Rng::new(3);
        let a = Matrix::randn(20, 4, 2.0, &mut rng);
        let c = a.center_columns();
        for s in c.col_sums() {
            assert!(s.abs() < 1e-4, "column sum {s} not ~0");
        }
    }

    #[test]
    fn row_argmax_picks_first_max() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 3.0, 2.0]]);
        assert_eq!(m.row_argmax(0), 1);
    }

    #[test]
    fn slicing_and_concatenation_roundtrip() {
        let mut rng = Rng::new(11);
        let a = Matrix::randn(6, 5, 1.0, &mut rng);
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 6);
        assert_eq!(top.vcat(&bottom), a);
        let left = a.slice_cols(0, 3);
        let right = a.slice_cols(3, 5);
        assert_eq!(left.hcat(&right), a);
    }

    #[test]
    fn broadcast_add() {
        let a = Matrix::zeros(2, 3);
        let b = a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(b.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn hadamard_and_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-5.0f32..5.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn prop_transpose_of_product(
            a in arb_matrix(3, 4),
            b in arb_matrix(4, 2),
        ) {
            // (AB)^T = B^T A^T
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            prop_assert!(left.approx_eq(&right, 1e-4));
        }

        #[test]
        fn prop_matmul_distributes_over_addition(
            a in arb_matrix(3, 3),
            b in arb_matrix(3, 3),
            c in arb_matrix(3, 3),
        ) {
            // A(B + C) = AB + AC
            let left = a.matmul(&(&b + &c));
            let right = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!(left.approx_eq(&right, 1e-3));
        }

        #[test]
        fn prop_matmul_associative(
            a in arb_matrix(2, 3),
            b in arb_matrix(3, 4),
            c in arb_matrix(4, 2),
        ) {
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.approx_eq(&right, 1e-2));
        }

        #[test]
        fn prop_scaling_commutes_with_matmul(
            a in arb_matrix(3, 3),
            b in arb_matrix(3, 3),
            s in -3.0f32..3.0,
        ) {
            let left = a.scaled(s).matmul(&b);
            let right = a.matmul(&b).scaled(s);
            prop_assert!(left.approx_eq(&right, 1e-3));
        }

        #[test]
        fn prop_frobenius_triangle_inequality(
            a in arb_matrix(4, 4),
            b in arb_matrix(4, 4),
        ) {
            let sum = &a + &b;
            prop_assert!(
                sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4
            );
        }

        #[test]
        fn prop_center_columns_is_idempotent(a in arb_matrix(6, 3)) {
            let once = a.center_columns();
            let twice = once.center_columns();
            prop_assert!(once.approx_eq(&twice, 1e-4));
        }

        #[test]
        fn prop_dispatched_matmul_matches_naive_at_adversarial_shapes(
            // Free dims up to 49: straddles the 8-lane width, every MR row
            // block split (6/4/2/1), the 16-column panel tail, and
            // MATMUL_TILE — with K deliberately off every multiple.
            m in 1usize..50,
            k in 1usize..50,
            n in 1usize..50,
            seed in 0u64..1u64 << 32,
        ) {
            let mut rng = Rng::new(seed);
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let naive = a.matmul_naive(&b);
            // Both scalar arms are exact at every shape, regardless of
            // which one the size dispatch would pick.
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_scalar_untiled(&b, &mut out);
            prop_assert_eq!(&out, &naive);
            a.matmul_into_scalar_tiled(&b, &mut out);
            prop_assert_eq!(&out, &naive);
            // The dispatched kernel: exact without SIMD, pinned to the
            // documented fused-rounding envelope with it.
            let got = a.matmul(&b);
            if f32_simd_available() {
                let v = max_fused_violation(&got, &a, &b);
                prop_assert!(v <= 1.0, "SIMD arm out of tolerance at {}x{}x{}: {}", m, k, n, v);
            } else {
                prop_assert_eq!(&got, &naive);
            }
            // Prepacking never changes results.
            prop_assert_eq!(&a.matmul_prepacked(&PackedF32::pack(&b)), &got);
        }

        #[test]
        fn prop_dispatched_transpose_b_matches_naive_at_adversarial_shapes(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            seed in 0u64..1u64 << 32,
        ) {
            let mut rng = Rng::new(seed);
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let bt = Matrix::randn(n, k, 1.0, &mut rng);
            let naive = a.matmul_naive(&bt.transpose());
            let mut out = Matrix::zeros(m, n);
            a.matmul_transpose_b_scalar_untiled(&bt, &mut out);
            prop_assert_eq!(&out, &naive);
            a.matmul_transpose_b_scalar_tiled(&bt, &mut out);
            prop_assert_eq!(&out, &naive);
            let got = a.matmul_transpose_b(&bt);
            if f32_simd_available() {
                let v = max_fused_violation(&got, &a, &bt.transpose());
                prop_assert!(v <= 1.0, "tb SIMD out of tolerance at {}x{}x{}: {}", m, k, n, v);
            } else {
                prop_assert_eq!(&got, &naive);
            }
        }

        #[test]
        fn prop_transpose_kernels_match_naive(
            a in arb_matrix(MATMUL_TILE + 2, 6),
            c in arb_matrix(MATMUL_TILE + 5, 6),
            d in arb_matrix(MATMUL_TILE + 2, 5),
        ) {
            let tb = a.matmul_transpose_b(&c);
            prop_assert!(tb.approx_eq(&a.matmul_naive(&c.transpose()), 1e-4));
            let ta = a.matmul_transpose_a(&d);
            prop_assert!(ta.approx_eq(&a.transpose().matmul_naive(&d), 1e-4));
        }

        #[test]
        fn prop_hcat_vcat_shapes(a in arb_matrix(3, 2), b in arb_matrix(3, 5)) {
            let h = a.hcat(&b);
            prop_assert_eq!(h.shape(), (3, 7));
            let v = h.slice_cols(0, 2).vcat(&a);
            prop_assert_eq!(v.shape(), (6, 2));
        }
    }
}
