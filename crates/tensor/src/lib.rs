//! Dense `f32` matrix kernels for the PIVOT reproduction.
//!
//! This crate is the numerical substrate under everything else in the
//! workspace: the neural-network layers in `pivot-nn`, the CKA similarity in
//! `pivot-cka` and the ViT models in `pivot-vit` are all written against the
//! row-major [`Matrix`] type defined here.
//!
//! The crate deliberately avoids external linear-algebra dependencies: every
//! kernel (matmul, softmax, GELU, layer statistics, quantization) is written
//! from scratch so that the whole reproduction is self-contained and
//! deterministic.
//!
//! # Example
//!
//! ```
//! use pivot_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![deny(missing_docs)]

mod batch;
mod hash;
mod health;
mod int8;
mod matrix;
mod microkernel;
mod ops;
mod quant;
mod rng;

pub use batch::Batch;
pub use hash::ContentHasher;
pub use health::NonFiniteError;
pub use int8::{matmul_quantized, matmul_quantized_into, PackedInt8};
pub use matrix::{Matrix, MATMUL_TILE};
pub use microkernel::{f32_simd_available, PackedF32, PANEL_WIDTH};
pub use ops::{erf, gelu, gelu_derivative, log_softmax_row, softmax_row, stable_softmax_in_place};
pub use quant::{QuantParams, Quantized};
pub use rng::Rng;

#[cfg(test)]
mod thread_safety {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn core_types_are_send_and_sync() {
        assert_send_sync::<crate::Batch>();
        assert_send_sync::<crate::Matrix>();
        assert_send_sync::<crate::PackedInt8>();
        assert_send_sync::<crate::QuantParams>();
        assert_send_sync::<crate::Quantized>();
        assert_send_sync::<crate::Rng>();
    }
}
