//! Row-stacked sample batches.
//!
//! A [`Batch`] packs `len` equally-shaped sample matrices into one tall
//! [`Matrix`] (samples stacked along rows). Because every row-wise kernel in
//! the workspace (linear layers, layer norm, softmax, GELU) treats rows
//! independently with a fixed per-row accumulation order, running a kernel on
//! the stacked matrix is bit-identical to running it on each sample and
//! restacking — that is what lets `forward_batch` fuse per-sample GEMMs into
//! one wide GEMM without changing results.

use crate::matrix::Matrix;

/// A batch of `len` samples, each `rows_per_sample x cols`, stored stacked
/// along rows in a single dense matrix.
///
/// Sample `i` occupies rows `i * rows_per_sample .. (i + 1) * rows_per_sample`
/// of [`Batch::as_matrix`].
///
/// # Example
///
/// ```
/// use pivot_tensor::{Batch, Matrix};
///
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(2, 3, 2.0);
/// let batch = Batch::from_samples(&[a.clone(), b.clone()]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.as_matrix().shape(), (4, 3));
/// assert_eq!(batch.sample(1), b);
/// assert_eq!(batch.unstack(), vec![a, b]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    data: Matrix,
    rows_per_sample: usize,
    len: usize,
}

impl Batch {
    /// Stacks equally-shaped samples along rows.
    ///
    /// An empty slice yields an empty batch (`len() == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the samples do not all share one shape.
    pub fn from_samples(samples: &[Matrix]) -> Self {
        let Some(first) = samples.first() else {
            return Self {
                data: Matrix::zeros(0, 0),
                rows_per_sample: 0,
                len: 0,
            };
        };
        let (rows, cols) = first.shape();
        let mut data = Matrix::zeros(rows * samples.len(), cols);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(
                s.shape(),
                (rows, cols),
                "batch sample {i} shape mismatch: {:?} vs {:?}",
                s.shape(),
                (rows, cols)
            );
            data.rows_mut(i * rows, (i + 1) * rows)
                .copy_from_slice(s.as_slice());
        }
        Self {
            data,
            rows_per_sample: rows,
            len: samples.len(),
        }
    }

    /// Wraps an already-stacked matrix as a batch of
    /// `data.rows() / rows_per_sample` samples.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_sample == 0` (unless `data` is empty) or if
    /// `data.rows()` is not divisible by `rows_per_sample`.
    pub fn from_matrix(data: Matrix, rows_per_sample: usize) -> Self {
        if data.rows() == 0 {
            return Self {
                data,
                rows_per_sample,
                len: 0,
            };
        }
        assert!(rows_per_sample > 0, "rows_per_sample must be positive");
        assert_eq!(
            data.rows() % rows_per_sample,
            0,
            "batch rows {} not divisible by rows_per_sample {}",
            data.rows(),
            rows_per_sample
        );
        let len = data.rows() / rows_per_sample;
        Self {
            data,
            rows_per_sample,
            len,
        }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows occupied by each sample.
    pub fn rows_per_sample(&self) -> usize {
        self.rows_per_sample
    }

    /// Columns of every sample.
    pub fn cols(&self) -> usize {
        self.data.cols()
    }

    /// The underlying stacked matrix (samples along rows).
    pub fn as_matrix(&self) -> &Matrix {
        &self.data
    }

    /// Consumes the batch, returning the stacked matrix.
    pub fn into_matrix(self) -> Matrix {
        self.data
    }

    /// Row range of sample `i` within the stacked matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample_rows(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.len, "sample index {i} out of range {}", self.len);
        i * self.rows_per_sample..(i + 1) * self.rows_per_sample
    }

    /// Copies sample `i` out as its own matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> Matrix {
        let r = self.sample_rows(i);
        self.data.slice_rows(r.start, r.end)
    }

    /// Splits the batch back into per-sample matrices.
    pub fn unstack(&self) -> Vec<Matrix> {
        (0..self.len).map(|i| self.sample(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_unstack_roundtrip() {
        let samples: Vec<Matrix> = (0..3)
            .map(|i| Matrix::from_fn(2, 4, |r, c| (i * 8 + r * 4 + c) as f32))
            .collect();
        let batch = Batch::from_samples(&samples);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.rows_per_sample(), 2);
        assert_eq!(batch.cols(), 4);
        assert_eq!(batch.unstack(), samples);
        assert_eq!(batch.sample_rows(2), 4..6);
    }

    #[test]
    fn empty_batch() {
        let batch = Batch::from_samples(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.unstack(), Vec::<Matrix>::new());
    }

    #[test]
    fn single_sample_batch_matches_sample() {
        let m = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let batch = Batch::from_samples(std::slice::from_ref(&m));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.as_matrix(), &m);
        assert_eq!(batch.sample(0), m);
    }

    #[test]
    fn from_matrix_splits_rows() {
        let stacked = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        let batch = Batch::from_matrix(stacked.clone(), 3);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.sample(0), stacked.slice_rows(0, 3));
        assert_eq!(batch.sample(1), stacked.slice_rows(3, 6));
        assert_eq!(batch.clone().into_matrix(), stacked);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_samples_panic() {
        let _ = Batch::from_samples(&[Matrix::zeros(2, 3), Matrix::zeros(3, 3)]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_rows_panic() {
        let _ = Batch::from_matrix(Matrix::zeros(5, 2), 3);
    }

    #[test]
    fn row_wise_kernel_on_stack_is_bit_identical_to_per_sample() {
        // The core batching invariant: a row-wise GEMM over the stacked
        // matrix equals per-sample GEMMs, bitwise.
        let mut rng = crate::Rng::new(5);
        let samples: Vec<Matrix> = (0..4).map(|_| Matrix::randn(3, 6, 1.0, &mut rng)).collect();
        let w = Matrix::randn(6, 5, 1.0, &mut rng);
        let batch = Batch::from_samples(&samples);
        let wide = Batch::from_matrix(batch.as_matrix().matmul(&w), 3);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(wide.sample(i), s.matmul(&w), "sample {i} diverged");
        }
    }
}
