//! Packed-panel f32 SIMD microkernel (AVX2+FMA) behind runtime dispatch.
//!
//! This is the f32 counterpart of the packed int8 path in [`crate::int8`]:
//! the streamed operand `B` of `A·B` is repacked once into contiguous
//! column panels ([`PackedF32`]), then an unrolled register-tiled kernel
//! sweeps the reduction with fused multiply-adds — AVX2+FMA via
//! `core::arch`, selected by `is_x86_feature_detected!` exactly like the
//! int8 kernel. Weight operands can be packed once and reused across calls
//! (`Matrix::matmul_prepacked_into`, cached by `pivot_nn::PreparedLinear`).
//!
//! # Numerics contract
//!
//! Unlike the int8 kernel (integer accumulation, exact), fusing the
//! multiply and add changes f32 rounding: the SIMD path is **not**
//! bit-identical to `Matrix::matmul_naive`. The contract instead has two
//! layers, both pinned by tests:
//!
//! * **Exact accumulation order.** Every output element is one ascending-`k`
//!   chain `acc = fma(a_ik, b_kj, acc)` with a single accumulator — the
//!   same chain regardless of the row-block size (`MR`) the element landed
//!   in, of the output's row count, or of panel padding. [`gemm_mirror`]
//!   replays that chain in scalar `f32::mul_add` and is **bit-identical**
//!   to the AVX2 kernel on every input, so the vector kernel is pinned
//!   exactly, not just within a tolerance. (The dot-product kernel used by
//!   `matmul_transpose_b_into` splits the reduction over 8 lanes; its
//!   fixed lane order and reduction tree are mirrored by [`dot_mirror`].)
//! * **Documented tolerance vs. the unfused reference.** Against
//!   `matmul_naive` (round after every multiply), each element differs by
//!   at most one rounding per fused term: `|simd − naive| ≤ k · ε · (|A|·|B|)`
//!   elementwise with `ε = 2^-23`, asserted with slack by the property
//!   tests. Non-finite inputs propagate (NaN in a row/column of the
//!   operands lands in every output element it feeds — fused arithmetic
//!   cannot launder it into a finite value).
//!
//! Because each element is a pure function of its input row and the packed
//! operand, results are independent of batching — stacking samples into a
//! wide GEMM reproduces the per-sample rows bit for bit, which is what the
//! workspace's batch-invariance `assert_eq!` contracts rely on.

use crate::Matrix;

/// Column-panel width of [`PackedF32`]: 16 f32 lanes = two AVX2 registers,
/// giving the 6×16 register tile (12 accumulators) that keeps enough
/// independent FMA chains in flight to hide the FMA latency.
pub const PANEL_WIDTH: usize = 16;

/// Whether the runtime CPU takes the f32 SIMD path (AVX2 **and** FMA).
///
/// The decision is a property of the machine, not of operand shapes, so
/// dispatch can never differ between a per-sample GEMM and the wide
/// batched GEMM over the same streamed operand.
pub fn f32_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// A `k x n` f32 operand repacked into contiguous [`PANEL_WIDTH`]-column
/// panels for the SIMD microkernel.
///
/// Panel `p` holds columns `p*16 .. p*16+16` of the source, laid out
/// `k`-major (`panel[kk*16 + jj]`), so the kernel's reduction loop streams
/// one cache-line-aligned stretch of 16 columns per `k` step. The last
/// panel is zero-padded to full width; padded lanes are computed and
/// discarded, never stored (`fma(a, 0, acc)` leaves real lanes untouched).
///
/// # Example
///
/// ```
/// use pivot_tensor::{Matrix, PackedF32, Rng};
///
/// let mut rng = Rng::new(0);
/// let x = Matrix::randn(4, 8, 1.0, &mut rng);
/// let w = Matrix::randn(8, 3, 1.0, &mut rng);
/// let packed = PackedF32::pack(&w);
/// // Bit-identical to x.matmul(&w): same kernel, packing hoisted out.
/// assert_eq!(x.matmul_prepacked(&packed), x.matmul(&w));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedF32 {
    k: usize,
    n: usize,
    /// `ceil(n/16)` panels of `k * 16` floats each.
    data: Vec<f32>,
}

impl PackedF32 {
    /// Packs a matrix (the `rhs` of `Matrix::matmul`) into column panels.
    pub fn pack(rhs: &Matrix) -> Self {
        let (k, n) = rhs.shape();
        let n_panels = n.div_ceil(PANEL_WIDTH);
        let mut data = vec![0.0f32; n_panels * k * PANEL_WIDTH];
        let src = rhs.as_slice();
        for p in 0..n_panels {
            let j0 = p * PANEL_WIDTH;
            let width = (n - j0).min(PANEL_WIDTH);
            let panel = &mut data[p * k * PANEL_WIDTH..(p + 1) * k * PANEL_WIDTH];
            for kk in 0..k {
                panel[kk * PANEL_WIDTH..kk * PANEL_WIDTH + width]
                    .copy_from_slice(&src[kk * n + j0..kk * n + j0 + width]);
            }
        }
        Self { k, n, data }
    }

    /// Reduction length (rows of the packed operand).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count (padding excluded).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes of panel storage, padding included.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// 128-bit structural content hash over the panel layout: logical
    /// shape plus every padded lane's bit pattern. Since `pack` is a pure
    /// function of the source matrix, equal source hashes imply equal
    /// panel hashes; this direct form lets tests and stores verify panel
    /// identity without reconstituting the source.
    pub fn content_hash(&self) -> u128 {
        let mut h = crate::ContentHasher::new();
        h.write_usize(self.k);
        h.write_usize(self.n);
        h.write_f32_slice(&self.data);
        h.finish()
    }

    /// Number of [`PANEL_WIDTH`]-column panels.
    fn n_panels(&self) -> usize {
        self.n.div_ceil(PANEL_WIDTH)
    }

    /// The packed panel `p` (`k * 16` floats).
    fn panel(&self, p: usize) -> &[f32] {
        &self.data[p * self.k * PANEL_WIDTH..(p + 1) * self.k * PANEL_WIDTH]
    }

    /// Element `(kk, j)` of the logical operand, read back through the
    /// panel layout.
    fn get(&self, kk: usize, j: usize) -> f32 {
        self.panel(j / PANEL_WIDTH)[kk * PANEL_WIDTH + j % PANEL_WIDTH]
    }
}

/// Strided view of the left operand: element `(i, kk)` of the logical
/// `m x k` matrix lives at `base[i * row_stride + kk * k_stride]`.
///
/// `matmul` passes a plain row-major view (`row_stride = k, k_stride = 1`);
/// `matmul_transpose_a` passes the transposed view of the same buffer
/// (`row_stride = 1, k_stride = a.cols()`), so both entry points share one
/// kernel without materializing a transpose.
#[derive(Clone, Copy)]
pub(crate) struct LhsView<'a> {
    pub base: &'a [f32],
    pub row_stride: usize,
    pub k_stride: usize,
}

impl LhsView<'_> {
    #[inline]
    fn get(&self, i: usize, kk: usize) -> f32 {
        self.base[i * self.row_stride + kk * self.k_stride]
    }
}

/// Scalar mirror of the AVX2 packed kernel: the identical per-element
/// chain `acc = a_ik.mul_add(b_kj, acc)` in ascending `k` with a single
/// accumulator. `f32::mul_add` is the IEEE fused multiply-add (one
/// rounding), the same operation `vfmadd` performs, so this is
/// **bit-identical** to [`gemm_packed`] on every input — the oracle the
/// property tests pin the vector kernel against.
#[cfg(test)]
pub(crate) fn gemm_mirror(a: LhsView<'_>, m: usize, packed: &PackedF32, out: &mut [f32]) {
    let (k, n) = (packed.k, packed.n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a.get(i, kk).mul_add(packed.get(kk, j), acc);
            }
            *o = acc;
        }
    }
}

/// Unfused scalar GEMM over the panel layout: `acc += a_ik * b_kj` in
/// ascending `k` with a single accumulator — the exact accumulation order
/// of `Matrix::matmul_naive` and of both scalar `matmul_into` arms, read
/// through the packed layout. This is the non-SIMD fallback of
/// `Matrix::matmul_prepacked_into`, keeping the prepacked entry point
/// bit-identical to `Matrix::matmul` on machines without AVX2+FMA.
pub(crate) fn gemm_panels_unfused(a: LhsView<'_>, m: usize, packed: &PackedF32, out: &mut [f32]) {
    let (k, n) = (packed.k, packed.n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * packed.get(kk, j);
            }
            *o = acc;
        }
    }
}

/// Runs the packed GEMM on the SIMD path.
///
/// # Panics
///
/// Panics (in the caller's shape asserts) unless `out.len() == m * packed.n()`
/// and the lhs view spans `m x packed.k()`. Must only be called when
/// [`f32_simd_available`] is true.
#[cfg(target_arch = "x86_64")]
pub(crate) fn gemm_packed(a: LhsView<'_>, m: usize, packed: &PackedF32, out: &mut [f32]) {
    debug_assert!(f32_simd_available());
    // SAFETY: the caller verified AVX2+FMA support at runtime; slice
    // bounds are enforced by the debug asserts and the callers' shape
    // checks.
    unsafe { avx2::gemm(a, m, packed, out) }
}

/// Scalar mirror of the AVX2 row-dot kernel used by
/// `matmul_transpose_b_into`: the reduction is split over 8 lanes
/// (lane `l` accumulates `k ≡ l (mod 8)` in ascending order, fused), the
/// lanes are folded by the fixed tree
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, and the sub-8 tail is fused
/// into the folded sum in ascending order. Bit-identical to the AVX2
/// kernel on every input.
#[cfg(test)]
pub(crate) fn dot_mirror(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let mut chunks = a.chunks_exact(8).zip(b.chunks_exact(8));
    for (ca, cb) in &mut chunks {
        for l in 0..8 {
            lanes[l] = ca[l].mul_add(cb[l], lanes[l]);
        }
    }
    let quad = [
        lanes[0] + lanes[4],
        lanes[1] + lanes[5],
        lanes[2] + lanes[6],
        lanes[3] + lanes[7],
    ];
    let mut acc = (quad[0] + quad[2]) + (quad[1] + quad[3]);
    for (&x, &y) in a
        .chunks_exact(8)
        .remainder()
        .iter()
        .zip(b.chunks_exact(8).remainder())
    {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// `A · B^T` on the SIMD path: each output element is one lane-split
/// fused dot product of two contiguous rows (see [`dot_mirror`] for the
/// exact order). Must only be called when [`f32_simd_available`] is true.
#[cfg(target_arch = "x86_64")]
pub(crate) fn gemm_transpose_b(a: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    debug_assert!(f32_simd_available());
    let (m, k) = a.shape();
    let n = rhs.rows();
    let (a_s, b_s) = (a.as_slice(), rhs.as_slice());
    let out_s = out.as_mut_slice();
    for i in 0..m {
        let a_row = &a_s[i * k..(i + 1) * k];
        let out_row = &mut out_s[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            // SAFETY: AVX2+FMA verified by the caller; the four rhs rows
            // and the output quad are in bounds.
            unsafe {
                avx2::dot4(
                    a_row,
                    &b_s[j * k..(j + 1) * k],
                    &b_s[(j + 1) * k..(j + 2) * k],
                    &b_s[(j + 2) * k..(j + 3) * k],
                    &b_s[(j + 3) * k..(j + 4) * k],
                    &mut out_row[j..j + 4],
                )
            };
            j += 4;
        }
        while j < n {
            // SAFETY: AVX2+FMA verified by the caller.
            out_row[j] = unsafe { avx2::dot1(a_row, &b_s[j * k..(j + 1) * k]) };
            j += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{LhsView, PackedF32, PANEL_WIDTH};
    use std::arch::x86_64::*;

    /// One register tile: `MR` output rows by one 16-column panel, the
    /// full reduction in registers. Every output element is a single
    /// ascending-`k` `vfmadd` chain — the accumulation order [`super::gemm_mirror`]
    /// replays — so the tile size is invisible in the results.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support, and the pointers must
    /// span `MR` lhs rows, a `k * 16` panel, and `MR` output rows of at
    /// least `cols` elements (`1 ..= 16`).
    // The argument list is the flattened tile geometry (SIMD kernels
    // take raw pointers + strides by convention), and indexing `acc` by
    // `r` keeps the three per-row register arrays visibly in lockstep.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn kernel<const MR: usize>(
        a: *const f32,
        a_row_stride: usize,
        a_k_stride: usize,
        panel: *const f32,
        k: usize,
        out: *mut f32,
        out_stride: usize,
        cols: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let mut p = panel;
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(p);
            let b1 = _mm256_loadu_ps(p.add(8));
            for r in 0..MR {
                let av = _mm256_broadcast_ss(&*a.add(r * a_row_stride + kk * a_k_stride));
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
            p = p.add(PANEL_WIDTH);
        }
        if cols == PANEL_WIDTH {
            for (r, acc_r) in acc.iter().enumerate() {
                _mm256_storeu_ps(out.add(r * out_stride), acc_r[0]);
                _mm256_storeu_ps(out.add(r * out_stride + 8), acc_r[1]);
            }
        } else {
            // Ragged last panel: spill the full tile row and copy only the
            // real columns (padded lanes carried zeros of the padding, or
            // NaN from a non-finite lhs — either way they are discarded).
            let mut spill = [0.0f32; PANEL_WIDTH];
            for (r, acc_r) in acc.iter().enumerate() {
                _mm256_storeu_ps(spill.as_mut_ptr(), acc_r[0]);
                _mm256_storeu_ps(spill.as_mut_ptr().add(8), acc_r[1]);
                std::ptr::copy_nonoverlapping(spill.as_ptr(), out.add(r * out_stride), cols);
            }
        }
    }

    /// Packed GEMM driver: greedy 6/4/2/1 row blocks (17 = 6+6+4+1,
    /// 544 = 90·6+4), panels streamed innermost so the active panel stays
    /// L1-resident across a row block.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `out` must hold
    /// `m * packed.n()` elements and the lhs view must span `m x packed.k()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm(a: LhsView<'_>, m: usize, packed: &PackedF32, out: &mut [f32]) {
        let (k, n) = (packed.k(), packed.n());
        let a_ptr = a.base.as_ptr();
        let out_ptr = out.as_mut_ptr();
        let mut i = 0;
        while i < m {
            let rem = m - i;
            let mr = if rem >= 6 {
                6
            } else if rem >= 4 {
                4
            } else if rem >= 2 {
                2
            } else {
                1
            };
            for p in 0..packed.n_panels() {
                let j0 = p * PANEL_WIDTH;
                let cols = (n - j0).min(PANEL_WIDTH);
                let args = (
                    a_ptr.add(i * a.row_stride),
                    a.row_stride,
                    a.k_stride,
                    packed.panel(p).as_ptr(),
                    k,
                    out_ptr.add(i * n + j0),
                    n,
                    cols,
                );
                match mr {
                    6 => kernel::<6>(
                        args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
                    ),
                    4 => kernel::<4>(
                        args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
                    ),
                    2 => kernel::<2>(
                        args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
                    ),
                    _ => kernel::<1>(
                        args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
                    ),
                }
            }
            i += mr;
        }
    }

    /// Fixed-tree horizontal sum of eight f32 lanes:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — mirrored exactly by the
    /// scalar fold in [`super::dot_mirror`].
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let quad = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let s = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 0b01));
        _mm_cvtss_f32(s)
    }

    /// One lane-split fused dot product (see [`super::dot_mirror`] for the
    /// exact accumulation order).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot1(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len();
        let k8 = k - k % 8;
        let mut acc = _mm256_setzero_ps();
        let mut t = 0;
        while t < k8 {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(t)),
                _mm256_loadu_ps(b.as_ptr().add(t)),
                acc,
            );
            t += 8;
        }
        let mut s = hsum(acc);
        while t < k {
            s = a[t].mul_add(b[t], s);
            t += 1;
        }
        s
    }

    /// Four dot products sharing each lhs chunk load — four independent
    /// chains, each bit-identical to [`dot1`] of that row pair.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; all row slices have
    /// `a.len()` elements and `out.len() == 4`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32], out: &mut [f32]) {
        let k = a.len();
        let k8 = k - k % 8;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut t = 0;
        while t < k8 {
            let av = _mm256_loadu_ps(a.as_ptr().add(t));
            acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.as_ptr().add(t)), acc0);
            acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.as_ptr().add(t)), acc1);
            acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.as_ptr().add(t)), acc2);
            acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.as_ptr().add(t)), acc3);
            t += 8;
        }
        let mut s = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
        while t < k {
            let av = a[t];
            s[0] = av.mul_add(b0[t], s[0]);
            s[1] = av.mul_add(b1[t], s[1]);
            s[2] = av.mul_add(b2[t], s[2]);
            s[3] = av.mul_add(b3[t], s[3]);
            t += 1;
        }
        out.copy_from_slice(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn lhs(a: &Matrix) -> LhsView<'_> {
        LhsView {
            base: a.as_slice(),
            row_stride: a.cols(),
            k_stride: 1,
        }
    }

    #[test]
    fn pack_round_trips_every_element() {
        let mut rng = Rng::new(1);
        for &(k, n) in &[(1, 1), (5, 16), (7, 17), (64, 64), (9, 33)] {
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let packed = PackedF32::pack(&b);
            assert_eq!((packed.k(), packed.n()), (k, n));
            for kk in 0..k {
                for j in 0..n {
                    assert_eq!(packed.get(kk, j), b[(kk, j)], "({kk},{j}) of {k}x{n}");
                }
            }
            // Padding of the last panel is exactly zero.
            let last = packed.panel(packed.n_panels() - 1);
            let width = n - (packed.n_panels() - 1) * PANEL_WIDTH;
            for kk in 0..k {
                for jj in width..PANEL_WIDTH {
                    assert_eq!(last[kk * PANEL_WIDTH + jj], 0.0);
                }
            }
        }
    }

    #[test]
    fn mirror_tracks_naive_within_fused_rounding() {
        let mut rng = Rng::new(2);
        for &(m, k, n) in &[(3, 5, 4), (17, 64, 64), (13, 31, 19)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let packed = PackedF32::pack(&b);
            let mut out = vec![0.0f32; m * n];
            gemm_mirror(lhs(&a), m, &packed, &mut out);
            let naive = a.matmul_naive(&b);
            let bound = a.map(f32::abs).matmul_naive(&b.map(f32::abs));
            for (idx, (&got, &want)) in out.iter().zip(naive.as_slice()).enumerate() {
                let tol = 2.0 * k as f32 * f32::EPSILON * bound.as_slice()[idx].max(1.0);
                assert!(
                    (got - want).abs() <= tol,
                    "{m}x{k}x{n} elem {idx}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn unfused_panels_are_bit_identical_to_naive() {
        let mut rng = Rng::new(3);
        for &(m, k, n) in &[(1, 1, 1), (6, 9, 17), (17, 64, 64), (5, 8, 16)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let packed = PackedF32::pack(&b);
            let mut out = vec![0.0f32; m * n];
            gemm_panels_unfused(lhs(&a), m, &packed, &mut out);
            assert_eq!(out, a.matmul_naive(&b).into_vec(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn avx2_gemm_is_bit_identical_to_the_mirror() {
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            let mut rng = Rng::new(4);
            // Row counts straddling every MR block split (6/4/2/1), panel
            // tails, and reduction lengths off the 8-lane width.
            for &(m, k, n) in &[
                (1, 1, 1),
                (2, 3, 2),
                (5, 7, 9),
                (6, 8, 16),
                (7, 13, 17),
                (17, 64, 64),
                (23, 31, 33),
                (544, 64, 64),
            ] {
                let a = Matrix::randn(m, k, 1.0, &mut rng);
                let b = Matrix::randn(k, n, 1.0, &mut rng);
                let packed = PackedF32::pack(&b);
                let mut simd = vec![0.0f32; m * n];
                let mut mirror = vec![0.0f32; m * n];
                gemm_packed(lhs(&a), m, &packed, &mut simd);
                gemm_mirror(lhs(&a), m, &packed, &mut mirror);
                assert_eq!(simd, mirror, "kernel diverged from mirror at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn avx2_dot_kernels_are_bit_identical_to_the_mirror() {
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            let mut rng = Rng::new(5);
            for &k in &[1usize, 7, 8, 9, 15, 16, 17, 64, 100] {
                let a = Matrix::randn(1, k, 1.0, &mut rng);
                let rows = Matrix::randn(5, k, 1.0, &mut rng);
                // SAFETY: feature support verified above.
                let mut quad = [0.0f32; 4];
                unsafe {
                    avx2::dot4(
                        a.row(0),
                        rows.row(0),
                        rows.row(1),
                        rows.row(2),
                        rows.row(3),
                        &mut quad,
                    )
                };
                for (j, &got) in quad.iter().enumerate() {
                    assert_eq!(
                        got,
                        dot_mirror(a.row(0), rows.row(j)),
                        "dot4 lane {j}, k={k}"
                    );
                    // SAFETY: feature support verified above.
                    assert_eq!(got, unsafe { avx2::dot1(a.row(0), rows.row(j)) });
                }
            }
        }
    }

    #[test]
    fn batching_cannot_change_simd_rows() {
        #[cfg(target_arch = "x86_64")]
        if f32_simd_available() {
            // Row 16 sits in an MR=1 tail at m=17 but inside an MR=6 block
            // at m=544; the single-chain contract makes that invisible.
            let mut rng = Rng::new(6);
            let big = Matrix::randn(544, 64, 1.0, &mut rng);
            let b = Matrix::randn(64, 64, 1.0, &mut rng);
            let packed = PackedF32::pack(&b);
            let mut wide = vec![0.0f32; 544 * 64];
            gemm_packed(lhs(&big), 544, &packed, &mut wide);
            let small = big.slice_rows(0, 17);
            let mut narrow = vec![0.0f32; 17 * 64];
            gemm_packed(lhs(&small), 17, &packed, &mut narrow);
            assert_eq!(&wide[..17 * 64], &narrow[..]);
        }
    }
}
