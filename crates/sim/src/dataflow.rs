//! Systolic-array dataflows and a cycle-level tile stepper.
//!
//! The closed-form per-fold cycle counts used by [`crate::systolic`] are
//! validated here against an explicit cycle-by-cycle simulation of one tile
//! ([`simulate_fold_cycles`]), in the same spirit as SCALE-Sim's validated
//! analytical mode.

/// Mapping of a matrix multiplication onto the PE array.
///
/// The paper's accelerator uses *input stationary* (Table 1); the other two
/// are provided for the dataflow ablation in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Input operand pinned in the array; weights stream through.
    #[default]
    InputStationary,
    /// Weights pinned; inputs stream through.
    WeightStationary,
    /// Outputs accumulate in place; both operands stream.
    OutputStationary,
}

impl Dataflow {
    /// Cycles to process one fold on an `rows x cols` array with a stream of
    /// length `stream`:
    ///
    /// * stationary dataflows: `rows` fill cycles + `stream` streaming
    ///   cycles + `cols - 1` drain cycles (skewed wavefront),
    /// * output stationary: `stream` accumulation cycles + `rows + cols - 2`
    ///   skew + drain of the accumulated outputs.
    pub fn fold_cycles(self, rows: usize, cols: usize, stream: usize) -> u64 {
        match self {
            Dataflow::InputStationary | Dataflow::WeightStationary => {
                (rows + stream + cols - 1) as u64
            }
            Dataflow::OutputStationary => (stream + rows + cols - 2) as u64,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataflow::InputStationary => "IS",
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
        }
    }
}

/// Cycle-level simulation of one stationary-dataflow fold.
///
/// Models the three phases of a fold as an explicit state machine advancing
/// one cycle at a time: the stationary operand is loaded row by row
/// (`rows` cycles), the streaming operand enters column-skewed over
/// `stream` cycles, and the last partial sum exits after the final skew of
/// `cols - 1` cycles. Exists to pin the closed-form count in
/// [`Dataflow::fold_cycles`] to an executable definition.
pub fn simulate_fold_cycles(rows: usize, cols: usize, stream: usize) -> u64 {
    #[derive(PartialEq)]
    enum Phase {
        Fill { remaining: usize },
        Stream { remaining: usize },
        Drain { remaining: usize },
        Done,
    }
    let mut phase = Phase::Fill { remaining: rows };
    let mut cycles = 0u64;
    loop {
        match phase {
            Phase::Fill { remaining } => {
                phase = if remaining > 1 {
                    Phase::Fill {
                        remaining: remaining - 1,
                    }
                } else {
                    Phase::Stream { remaining: stream }
                };
            }
            Phase::Stream { remaining } => {
                phase = if remaining > 1 {
                    Phase::Stream {
                        remaining: remaining - 1,
                    }
                } else if cols > 1 {
                    Phase::Drain {
                        remaining: cols - 1,
                    }
                } else {
                    Phase::Done
                };
            }
            Phase::Drain { remaining } => {
                phase = if remaining > 1 {
                    Phase::Drain {
                        remaining: remaining - 1,
                    }
                } else {
                    Phase::Done
                };
            }
            Phase::Done => break,
        }
        cycles += 1;
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_form_matches_stepper() {
        for (r, c, s) in [
            (64, 36, 197),
            (8, 8, 1),
            (64, 36, 1536),
            (2, 2, 5),
            (1, 1, 1),
        ] {
            let formula = Dataflow::InputStationary.fold_cycles(r, c, s);
            let stepped = simulate_fold_cycles(r, c, s);
            assert_eq!(formula, stepped, "mismatch at ({r},{c},{s})");
        }
    }

    #[test]
    fn output_stationary_differs_from_stationary_flows() {
        let is = Dataflow::InputStationary.fold_cycles(64, 36, 100);
        let os = Dataflow::OutputStationary.fold_cycles(64, 36, 100);
        assert_eq!(is, 64 + 100 + 35);
        assert_eq!(os, 100 + 64 + 36 - 2);
        assert_ne!(is, os);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Dataflow::InputStationary.name(),
            Dataflow::WeightStationary.name(),
            Dataflow::OutputStationary.name(),
        ];
        assert_eq!(names, ["IS", "WS", "OS"]);
    }

    proptest! {
        #[test]
        fn prop_stepper_equals_formula(r in 1usize..128, c in 1usize..128, s in 1usize..512) {
            prop_assert_eq!(
                Dataflow::InputStationary.fold_cycles(r, c, s),
                simulate_fold_cycles(r, c, s)
            );
        }

        #[test]
        fn prop_fold_cycles_monotone_in_stream(r in 1usize..64, c in 1usize..64, s in 1usize..256) {
            for df in [Dataflow::InputStationary, Dataflow::OutputStationary] {
                prop_assert!(df.fold_cycles(r, c, s + 1) > df.fold_cycles(r, c, s));
            }
        }
    }
}
