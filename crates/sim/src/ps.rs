//! Processing-system (PS) cost model.
//!
//! The ZynQ MPSoC PS executes every non-linear operation: softmax, GELU,
//! entropy and layer norm (Section 3.4). Costs are cycles-per-element at the
//! PS clock, with the softmax constant additionally covering the amortized
//! PL<->PS transfer of attention-score tiles.

use crate::calib;

/// Kinds of non-linear operations executed on the PS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PsOpKind {
    /// Row softmax over attention scores (paper Eq. 2).
    Softmax,
    /// GELU activation inside the MLP.
    Gelu,
    /// Layer normalization.
    LayerNorm,
    /// Normalized-entropy computation on the logits (paper Eq. 3).
    Entropy,
}

/// PS timing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsConfig {
    /// PS clock in MHz.
    pub clock_mhz: f64,
    /// Cycles per softmax element.
    pub softmax_cycles_per_elem: f64,
    /// Cycles per GELU element.
    pub gelu_cycles_per_elem: f64,
    /// Cycles per layer-norm element.
    pub layernorm_cycles_per_elem: f64,
    /// Cycles per entropy element.
    pub entropy_cycles_per_elem: f64,
}

impl Default for PsConfig {
    fn default() -> Self {
        Self {
            clock_mhz: calib::PS_CLOCK_MHZ,
            softmax_cycles_per_elem: calib::PS_SOFTMAX_CYCLES_PER_ELEM,
            gelu_cycles_per_elem: calib::PS_GELU_CYCLES_PER_ELEM,
            layernorm_cycles_per_elem: calib::PS_LAYERNORM_CYCLES_PER_ELEM,
            entropy_cycles_per_elem: calib::PS_ENTROPY_CYCLES_PER_ELEM,
        }
    }
}

impl PsConfig {
    /// PS cycles to process `elements` of the given op kind.
    pub fn cycles(&self, kind: PsOpKind, elements: u64) -> f64 {
        let per = match kind {
            PsOpKind::Softmax => self.softmax_cycles_per_elem,
            PsOpKind::Gelu => self.gelu_cycles_per_elem,
            PsOpKind::LayerNorm => self.layernorm_cycles_per_elem,
            PsOpKind::Entropy => self.entropy_cycles_per_elem,
        };
        per * elements as f64
    }

    /// Wall-clock milliseconds for `elements` of the given op kind.
    pub fn delay_ms(&self, kind: PsOpKind, elements: u64) -> f64 {
        self.cycles(kind, elements) / (self.clock_mhz * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_cost_matches_paper_anchor() {
        // Section 3.4: entropy for one ImageNet image (K=1000) takes 0.03 ms.
        let ps = PsConfig::default();
        let ms = ps.delay_ms(PsOpKind::Entropy, 1000);
        assert!(
            (ms - 0.03).abs() < 0.005,
            "entropy {ms} ms, expected ~0.03 ms"
        );
    }

    #[test]
    fn softmax_dominates_gelu_per_element() {
        let ps = PsConfig::default();
        assert!(
            ps.cycles(PsOpKind::Softmax, 100) > ps.cycles(PsOpKind::Gelu, 100),
            "softmax must be costlier per element"
        );
    }

    #[test]
    fn delay_scales_linearly() {
        let ps = PsConfig::default();
        let one = ps.delay_ms(PsOpKind::Softmax, 1000);
        let ten = ps.delay_ms(PsOpKind::Softmax, 10_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elements_cost_nothing() {
        let ps = PsConfig::default();
        assert_eq!(ps.cycles(PsOpKind::LayerNorm, 0), 0.0);
    }
}
