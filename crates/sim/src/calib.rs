//! Calibration constants anchoring PIVOT-Sim to the paper's published
//! ZCU102 measurements.
//!
//! These are the **only** fitted values in the simulator; everything else is
//! structural (Table 1 geometry, fold-exact cycle counts, byte-exact
//! traffic). They are fitted once against three anchors from the paper and
//! then held fixed for *every* experiment, so all relative results (EDP
//! ratios, breakdown shifts, crossovers) are produced by the model:
//!
//! 1. DeiT-S baseline delay 59.66 ms with softmax ~60% of it (Table 2 /
//!    Fig. 6a) — fixes [`PS_SOFTMAX_CYCLES_PER_ELEM`] given the 1.2 GHz
//!    Cortex-A53 PS clock.
//! 2. Entropy computation 0.03 ms per image (Section 3.4) — fixes
//!    [`PS_ENTROPY_CYCLES_PER_ELEM`] for K = 1000.
//! 3. Baseline average power 7.92 W (Table 2), split across PE array /
//!    SRAM / periphery / PS in Fig. 6b's proportions — fixes the per-op
//!    energies and idle powers below.

/// PS (Cortex-A53 cluster) clock in MHz.
pub const PS_CLOCK_MHZ: f64 = 1200.0;

/// PS cycles per softmax element (exp, running sum, divide, and the
/// amortized PL<->PS transfer of attention score tiles).
pub const PS_SOFTMAX_CYCLES_PER_ELEM: f64 = 15.4;

/// PS cycles per GELU element (NEON-vectorized polynomial).
pub const PS_GELU_CYCLES_PER_ELEM: f64 = 0.5;

/// PS cycles per layer-norm element (two-pass mean/var + scale).
pub const PS_LAYERNORM_CYCLES_PER_ELEM: f64 = 0.5;

/// PS cycles per entropy element (softmax + `p log p` accumulation);
/// 36 cycles * 1000 classes / 1.2 GHz = 0.03 ms, the paper's figure.
pub const PS_ENTROPY_CYCLES_PER_ELEM: f64 = 36.0;

/// Energy per 8-bit MAC on the PL DSP array (pJ).
pub const ENERGY_PER_MAC_PJ: f64 = 24.0;

/// Energy per byte of on-chip SRAM traffic (pJ).
pub const ENERGY_PER_SRAM_BYTE_PJ: f64 = 330.0;

/// Energy per byte of DRAM/interconnect traffic, attributed to the
/// periphery (PS-PL interconnect, reset and memory controllers) (pJ).
pub const ENERGY_PER_DRAM_BYTE_PJ: f64 = 820.0;

/// Energy per active PS cycle (pJ) — the A53 cluster running non-linear
/// kernels.
pub const ENERGY_PER_PS_CYCLE_PJ: f64 = 2350.0;

/// Idle/static power of the PL PE array (W), drawn for the whole inference.
pub const IDLE_POWER_PE_W: f64 = 0.30;

/// Idle/static power of the SRAM macros (W).
pub const IDLE_POWER_SRAM_W: f64 = 0.20;

/// Idle/static power of the periphery (W).
pub const IDLE_POWER_PERIPHERY_W: f64 = 0.25;

/// Idle/static power of the PS (W).
pub const IDLE_POWER_PS_W: f64 = 0.40;
