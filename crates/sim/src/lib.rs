//! PIVOT-Sim: a cycle-accurate delay and energy simulator for ViT inference
//! on a Xilinx ZCU102 MPSoC FPGA systolic-array accelerator.
//!
//! Re-implements the PIVOT-Sim platform of the paper's Section 3.4 / Fig. 5:
//!
//! * All linear matrix-multiplication layers (QKV, QKᵀ, SM×V, Proj, MLP) run
//!   on the **programmable-logic (PL) systolic array** — modeled with
//!   SCALE-Sim-style fold-exact cycle counts ([`systolic`]) under the SRAM
//!   capacity constraints of Table 1, fed through a GB/DRAM bandwidth model.
//! * Non-linear operations (softmax, GELU, entropy, layer norm) run on the
//!   **processing system (PS)** ([`PsConfig`]).
//! * Delay of a low/high effort combination is
//!   `D = D_L + F_H * D_H`, where the `F_H * D_L` share inside `D_L` is the
//!   re-computation overhead (Section 3.4).
//! * Energy is per-component (PE array, SRAM, periphery, PS), calibrated
//!   once against the paper's published DeiT-S totals ([`calib`]) and held
//!   fixed for every experiment.
//!
//! # Example
//!
//! ```
//! use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};
//!
//! let sim = Simulator::new(AcceleratorConfig::zcu102());
//! let deit = VitGeometry::deit_s();
//! let perf = sim.simulate(&deit, &vec![true; deit.depth]);
//! assert!(perf.delay_ms > 1.0);
//! ```

#![deny(missing_docs)]

pub mod calib;
mod combine;
mod dataflow;
mod energy;
mod ladder;
mod ps;
mod report;
mod simulator;
pub mod systolic;
mod workload;

pub use combine::{combine_efforts, CombinedPerf};
pub use dataflow::{simulate_fold_cycles, Dataflow};
pub use energy::{EnergyBreakdown, EnergyComponent};
pub use ladder::{EnergyLedger, LadderEnergy};
pub use ps::{PsConfig, PsOpKind};
pub use report::{DelayBreakdown, EffortPerf, ModuleClass};
pub use simulator::{AcceleratorConfig, ConfigError, LayerReport, Simulator};
pub use systolic::{matmul_cycles, MatmulDims, MatmulStats};
pub use workload::{LayerOp, OpKind, VitGeometry, VitWorkload};

#[cfg(test)]
mod thread_safety {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn simulator_types_are_send_and_sync() {
        assert_send_sync::<crate::Simulator>();
        assert_send_sync::<crate::AcceleratorConfig>();
        assert_send_sync::<crate::EffortPerf>();
        assert_send_sync::<crate::CombinedPerf>();
        assert_send_sync::<crate::VitGeometry>();
    }
}
