//! Low/high effort combination math (paper Section 3.4, Fig. 5).

use crate::report::{DelayBreakdown, EffortPerf};
use crate::EnergyBreakdown;

/// Per-image performance of a low/high effort combination.
///
/// Every input runs the low effort; a fraction `F_H` additionally re-runs
/// the high effort, so the average per-image delay is
/// `D = D_L + F_H * D_H`. Splitting the low-effort term by destiny gives
/// the paper's Fig. 8b decomposition: `F_L * D_L` (useful low-effort work),
/// `F_H * D_H` (high-effort work) and `F_H * D_L` (re-computation
/// overhead — low-effort work that had to be redone).
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedPerf {
    /// The low-effort report.
    pub low: EffortPerf,
    /// The high-effort report.
    pub high: EffortPerf,
    /// Fraction of inputs classified by the low effort (`F_L`).
    pub f_low: f64,
    /// Average per-image delay (ms).
    pub delay_ms: f64,
    /// Average per-image energy by component.
    pub energy: EnergyBreakdown,
    /// Average per-module delay breakdown.
    pub breakdown: DelayBreakdown,
}

impl CombinedPerf {
    /// `F_H = 1 - F_L`.
    pub fn f_high(&self) -> f64 {
        1.0 - self.f_low
    }

    /// Average per-image energy (J).
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Average power (W). 0.0 for a degenerate zero-delay combination
    /// (rather than a division by zero producing `inf`/`NaN`).
    pub fn power_w(&self) -> f64 {
        if self.delay_ms == 0.0 {
            0.0
        } else {
            self.energy_j() / (self.delay_ms / 1e3)
        }
    }

    /// Energy-delay product (J*ms).
    pub fn edp(&self) -> f64 {
        self.energy_j() * self.delay_ms
    }

    /// Throughput (frames per second). 0.0 for a degenerate zero-delay
    /// combination (no work was simulated, so no frames are produced).
    pub fn fps(&self) -> f64 {
        if self.delay_ms == 0.0 {
            0.0
        } else {
            1e3 / self.delay_ms
        }
    }

    /// Energy efficiency (FPS/W). 0.0 when power is zero (degenerate
    /// combination), keeping every derived metric NaN-free.
    pub fn fps_per_w(&self) -> f64 {
        let power = self.power_w();
        if power == 0.0 {
            0.0
        } else {
            self.fps() / power
        }
    }

    /// Delay attributable to useful low-effort inference: `F_L * D_L` (ms).
    pub fn low_effort_delay_ms(&self) -> f64 {
        self.f_low * self.low.delay_ms
    }

    /// Delay of the high-effort re-inference: `F_H * D_H` (ms).
    pub fn high_effort_delay_ms(&self) -> f64 {
        self.f_high() * self.high.delay_ms
    }

    /// Re-computation overhead: `F_H * D_L` (ms) — the paper's
    /// `D_L x F_H` term.
    pub fn recompute_overhead_ms(&self) -> f64 {
        self.f_high() * self.low.delay_ms
    }

    /// EDP decomposition `(low, high, overhead)` mirroring Fig. 8b, using
    /// the same three-way delay split weighted by average energy density.
    pub fn edp_split(&self) -> (f64, f64, f64) {
        let per_ms = self.edp() / self.delay_ms;
        (
            self.low_effort_delay_ms() * per_ms,
            self.high_effort_delay_ms() * per_ms,
            self.recompute_overhead_ms() * per_ms,
        )
    }
}

/// Combines a low- and high-effort report with the measured low-effort
/// classification fraction `f_low` (`F_L`).
///
/// # Panics
///
/// Panics if `f_low` is outside `[0, 1]`.
pub fn combine_efforts(low: &EffortPerf, high: &EffortPerf, f_low: f64) -> CombinedPerf {
    assert!(
        (0.0..=1.0).contains(&f_low),
        "F_L must be in [0, 1], got {f_low}"
    );
    let f_high = 1.0 - f_low;
    let delay_ms = low.delay_ms + f_high * high.delay_ms;

    let mut energy = low.energy.clone();
    energy.accumulate(&high.energy.scaled(f_high));

    let mut breakdown = low.breakdown.clone();
    breakdown.accumulate(&high.breakdown.scaled(f_high));

    CombinedPerf {
        low: low.clone(),
        high: high.clone(),
        f_low,
        delay_ms,
        energy,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcceleratorConfig, Simulator, VitGeometry};

    fn perfs() -> (EffortPerf, EffortPerf) {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let low_mask: Vec<bool> = (0..12).map(|i| i < 6).collect();
        let high_mask: Vec<bool> = (0..12).map(|i| i < 9).collect();
        (
            sim.simulate(&geom, &low_mask),
            sim.simulate(&geom, &high_mask),
        )
    }

    #[test]
    fn delay_formula_matches_paper() {
        let (low, high) = perfs();
        let c = combine_efforts(&low, &high, 0.8);
        let expected = low.delay_ms + 0.2 * high.delay_ms;
        assert!((c.delay_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn all_low_classified_means_low_only() {
        let (low, high) = perfs();
        let c = combine_efforts(&low, &high, 1.0);
        assert!((c.delay_ms - low.delay_ms).abs() < 1e-9);
        assert!((c.energy_j() - low.energy_j()).abs() < 1e-12);
        assert_eq!(c.recompute_overhead_ms(), 0.0);
    }

    #[test]
    fn three_way_split_sums_to_total() {
        let (low, high) = perfs();
        let c = combine_efforts(&low, &high, 0.7);
        let sum = c.low_effort_delay_ms() + c.high_effort_delay_ms() + c.recompute_overhead_ms();
        assert!((sum - c.delay_ms).abs() < 1e-9);
        let (el, eh, eo) = c.edp_split();
        assert!((el + eh + eo - c.edp()).abs() < 1e-6);
    }

    #[test]
    fn higher_f_low_is_cheaper() {
        let (low, high) = perfs();
        let loose = combine_efforts(&low, &high, 0.6);
        let tight = combine_efforts(&low, &high, 0.9);
        assert!(tight.delay_ms < loose.delay_ms);
        assert!(tight.edp() < loose.edp());
    }

    #[test]
    fn combination_beats_baseline_when_f_low_high() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let baseline = sim.simulate(&geom, &[true; 12]);
        let (low, high) = perfs();
        let c = combine_efforts(&low, &high, 0.8);
        assert!(
            c.delay_ms < baseline.delay_ms,
            "cascade must beat baseline at F_L=0.8"
        );
        assert!(c.edp() < baseline.edp());
    }

    #[test]
    #[should_panic(expected = "F_L must be in")]
    fn invalid_fraction_panics() {
        let (low, high) = perfs();
        let _ = combine_efforts(&low, &high, 1.5);
    }

    #[test]
    fn zero_delay_combination_is_nan_free() {
        // Regression: power_w and fps divided by zero when delay_ms == 0,
        // yielding inf/NaN that poisoned downstream reports.
        let (low, high) = perfs();
        let mut c = combine_efforts(&low, &high, 0.5);
        c.delay_ms = 0.0;
        assert_eq!(c.power_w(), 0.0);
        assert_eq!(c.fps(), 0.0);
        assert_eq!(c.fps_per_w(), 0.0);
        assert_eq!(c.edp(), 0.0);
        for v in [c.power_w(), c.fps(), c.fps_per_w(), c.edp()] {
            assert!(v.is_finite(), "metric {v} not finite");
        }
    }

    #[test]
    fn nonzero_delay_metrics_unchanged() {
        let (low, high) = perfs();
        let c = combine_efforts(&low, &high, 0.5);
        assert!((c.power_w() - c.energy_j() / (c.delay_ms / 1e3)).abs() < 1e-12);
        assert!((c.fps() - 1e3 / c.delay_ms).abs() < 1e-9);
        assert!((c.fps_per_w() - c.fps() / c.power_w()).abs() < 1e-9);
    }
}

impl std::fmt::Display for CombinedPerf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cascade E{}+E{} (F_L {:.2}): {:.2} ms, {:.3} J, EDP {:.2} J*ms",
            self.low.effort,
            self.high.effort,
            self.f_low,
            self.delay_ms,
            self.energy_j(),
            self.edp()
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::{AcceleratorConfig, Simulator, VitGeometry};

    #[test]
    fn combined_perf_display_names_both_efforts() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let low_mask: Vec<bool> = (0..12).map(|i| i < 3).collect();
        let low = sim.simulate(&geom, &low_mask);
        let high = sim.simulate(&geom, &[true; 12]);
        let c = combine_efforts(&low, &high, 0.8);
        let s = c.to_string();
        assert!(s.contains("E3+E12"));
        assert!(s.contains("F_L 0.80"));
    }
}
