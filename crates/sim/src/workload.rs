//! ViT inference workload: the layer graph PIVOT-Sim executes.

use crate::ps::PsOpKind;
use crate::report::ModuleClass;
use crate::systolic::MatmulDims;

/// Geometry of a ViT as PIVOT-Sim needs it (decoupled from the trainable
/// models in `pivot-vit` so the simulator can benchmark arbitrary ViTs, as
/// the paper advertises for PIVOT-Sim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitGeometry {
    /// Model name used in reports.
    pub name: String,
    /// Encoder count.
    pub depth: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden size.
    pub mlp_hidden: usize,
    /// Sequence length including the class token.
    pub tokens: usize,
    /// Flattened patch size (pixels * channels) feeding the patch embedding.
    pub patch_dim: usize,
    /// Classifier output classes.
    pub num_classes: usize,
}

impl VitGeometry {
    /// DeiT-S: 12 encoders, dim 384, 6 heads, MLP ratio 4, 197 tokens,
    /// 16x16x3 patches, ImageNet-1K head.
    pub fn deit_s() -> Self {
        Self {
            name: "DeiT-S".to_string(),
            depth: 12,
            dim: 384,
            heads: 6,
            mlp_hidden: 1536,
            tokens: 197,
            patch_dim: 768,
            num_classes: 1000,
        }
    }

    /// LVViT-S: 16 encoders, dim 384, 6 heads, MLP ratio 3.
    pub fn lvvit_s() -> Self {
        Self {
            name: "LVViT-S".to_string(),
            depth: 16,
            mlp_hidden: 1152,
            ..Self::deit_s()
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Validates divisibility and non-zero extents.
    ///
    /// # Panics
    ///
    /// Panics on a zero extent or if `dim` is not divisible by `heads`.
    pub fn validate(&self) {
        assert!(
            self.depth > 0
                && self.dim > 0
                && self.heads > 0
                && self.mlp_hidden > 0
                && self.tokens > 1
                && self.patch_dim > 0
                && self.num_classes > 1,
            "invalid geometry {self:?}"
        );
        assert_eq!(self.dim % self.heads, 0, "dim must divide into heads");
    }
}

/// What a [`LayerOp`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `count` identical matrix multiplications on the PL systolic array
    /// (e.g. one per attention head).
    Mac {
        /// Dimensions of each multiplication.
        dims: MatmulDims,
        /// Number of identical multiplications.
        count: usize,
    },
    /// A non-linear operation of `elements` scalars on the PS.
    Ps {
        /// Operation kind.
        kind: PsOpKind,
        /// Element count.
        elements: u64,
    },
}

/// One scheduled operation of the inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerOp {
    /// Human-readable name, e.g. `"enc3.qkv"`.
    pub name: String,
    /// Reporting bucket (paper Figs. 1b / 6a).
    pub module: ModuleClass,
    /// The operation.
    pub kind: OpKind,
}

/// The full layer graph of one ViT inference under an attention-skip
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitWorkload {
    /// Operations in execution order.
    pub ops: Vec<LayerOp>,
}

impl VitWorkload {
    /// Builds the workload for `geom` where `active_attention[i]` says
    /// whether encoder `i` executes its attention module.
    ///
    /// Per encoder with active attention: QKV, per-head QKᵀ, softmax (PS),
    /// per-head SM×V, projection, then LN + MLP (+ GELU on PS). Encoders
    /// with skipped attention execute only the LN + MLP path (paper
    /// Fig. 3b). Patch embedding, final norm, classifier head and the
    /// entropy check (PS) wrap the encoder stack.
    ///
    /// # Panics
    ///
    /// Panics if `active_attention.len() != geom.depth` or the geometry is
    /// invalid.
    pub fn build(geom: &VitGeometry, active_attention: &[bool]) -> Self {
        geom.validate();
        assert_eq!(
            active_attention.len(),
            geom.depth,
            "skip mask length {} != depth {}",
            active_attention.len(),
            geom.depth
        );
        let t = geom.tokens;
        let d = geom.dim;
        let dh = geom.head_dim();
        let h = geom.heads;
        let mut ops = Vec::new();

        ops.push(LayerOp {
            name: "patch_embed".to_string(),
            module: ModuleClass::Embed,
            kind: OpKind::Mac {
                dims: MatmulDims::new(t - 1, geom.patch_dim, d),
                count: 1,
            },
        });

        for (i, &active) in active_attention.iter().enumerate() {
            if active {
                ops.push(LayerOp {
                    name: format!("enc{i}.ln1"),
                    module: ModuleClass::Norm,
                    kind: OpKind::Ps {
                        kind: PsOpKind::LayerNorm,
                        elements: (t * d) as u64,
                    },
                });
                ops.push(LayerOp {
                    name: format!("enc{i}.qkv"),
                    module: ModuleClass::AttentionMac,
                    kind: OpKind::Mac {
                        dims: MatmulDims::new(t, d, 3 * d),
                        count: 1,
                    },
                });
                ops.push(LayerOp {
                    name: format!("enc{i}.qkt"),
                    module: ModuleClass::AttentionMac,
                    kind: OpKind::Mac {
                        dims: MatmulDims::new(t, dh, t),
                        count: h,
                    },
                });
                ops.push(LayerOp {
                    name: format!("enc{i}.softmax"),
                    module: ModuleClass::Softmax,
                    kind: OpKind::Ps {
                        kind: PsOpKind::Softmax,
                        elements: (h * t * t) as u64,
                    },
                });
                ops.push(LayerOp {
                    name: format!("enc{i}.smv"),
                    module: ModuleClass::AttentionMac,
                    kind: OpKind::Mac {
                        dims: MatmulDims::new(t, t, dh),
                        count: h,
                    },
                });
                ops.push(LayerOp {
                    name: format!("enc{i}.proj"),
                    module: ModuleClass::AttentionMac,
                    kind: OpKind::Mac {
                        dims: MatmulDims::new(t, d, d),
                        count: 1,
                    },
                });
            }
            ops.push(LayerOp {
                name: format!("enc{i}.ln2"),
                module: ModuleClass::Norm,
                kind: OpKind::Ps {
                    kind: PsOpKind::LayerNorm,
                    elements: (t * d) as u64,
                },
            });
            ops.push(LayerOp {
                name: format!("enc{i}.mlp_fc1"),
                module: ModuleClass::Mlp,
                kind: OpKind::Mac {
                    dims: MatmulDims::new(t, d, geom.mlp_hidden),
                    count: 1,
                },
            });
            ops.push(LayerOp {
                name: format!("enc{i}.gelu"),
                module: ModuleClass::Mlp,
                kind: OpKind::Ps {
                    kind: PsOpKind::Gelu,
                    elements: (t * geom.mlp_hidden) as u64,
                },
            });
            ops.push(LayerOp {
                name: format!("enc{i}.mlp_fc2"),
                module: ModuleClass::Mlp,
                kind: OpKind::Mac {
                    dims: MatmulDims::new(t, geom.mlp_hidden, d),
                    count: 1,
                },
            });
        }

        ops.push(LayerOp {
            name: "final_norm".to_string(),
            module: ModuleClass::Norm,
            kind: OpKind::Ps {
                kind: PsOpKind::LayerNorm,
                elements: (t * d) as u64,
            },
        });
        ops.push(LayerOp {
            name: "head".to_string(),
            module: ModuleClass::Head,
            kind: OpKind::Mac {
                dims: MatmulDims::new(1, d, geom.num_classes),
                count: 1,
            },
        });
        ops.push(LayerOp {
            name: "entropy".to_string(),
            module: ModuleClass::Entropy,
            kind: OpKind::Ps {
                kind: PsOpKind::Entropy,
                elements: geom.num_classes as u64,
            },
        });

        Self { ops }
    }

    /// Total MAC count of the workload.
    pub fn total_macs(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op.kind {
                OpKind::Mac { dims, count } => dims.macs() * count as u64,
                OpKind::Ps { .. } => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_s_full_workload_structure() {
        let geom = VitGeometry::deit_s();
        let wl = VitWorkload::build(&geom, &[true; 12]);
        // 1 embed + 12 * (6 attn ops + 4 mlp/ln ops) + 3 tail ops.
        assert_eq!(wl.ops.len(), 1 + 12 * 10 + 3);
        // ~4.6 GMACs for DeiT-S at 197 tokens.
        let gmacs = wl.total_macs() as f64 / 1e9;
        assert!((4.0..5.2).contains(&gmacs), "DeiT-S GMACs {gmacs}");
    }

    #[test]
    fn skipping_attention_removes_its_ops() {
        let geom = VitGeometry::deit_s();
        let full = VitWorkload::build(&geom, &[true; 12]);
        let half: Vec<bool> = (0..12).map(|i| i < 6).collect();
        let skipped = VitWorkload::build(&geom, &half);
        assert!(skipped.ops.len() < full.ops.len());
        assert!(skipped.total_macs() < full.total_macs());
        // No softmax op from skipped encoders.
        let softmaxes = skipped
            .ops
            .iter()
            .filter(|o| o.module == ModuleClass::Softmax)
            .count();
        assert_eq!(softmaxes, 6);
    }

    #[test]
    fn zero_effort_keeps_mlp_only() {
        let geom = VitGeometry::deit_s();
        let wl = VitWorkload::build(&geom, &[false; 12]);
        assert!(wl.ops.iter().all(|o| o.module != ModuleClass::AttentionMac));
        assert!(wl.ops.iter().all(|o| o.module != ModuleClass::Softmax));
        let mlp_macs = wl
            .ops
            .iter()
            .filter(|o| o.module == ModuleClass::Mlp)
            .count();
        assert_eq!(mlp_macs, 12 * 3);
    }

    #[test]
    fn lvvit_differs_from_deit() {
        let deit = VitGeometry::deit_s();
        let lv = VitGeometry::lvvit_s();
        assert_eq!(lv.depth, 16);
        assert_eq!(lv.mlp_hidden, 1152);
        let wl_d = VitWorkload::build(&deit, &[true; 12]);
        let wl_l = VitWorkload::build(&lv, &[true; 16]);
        assert!(wl_l.total_macs() > wl_d.total_macs());
    }

    #[test]
    #[should_panic(expected = "skip mask length")]
    fn wrong_mask_length_panics() {
        let _ = VitWorkload::build(&VitGeometry::deit_s(), &[true; 5]);
    }

    #[test]
    fn head_dim_and_validation() {
        let geom = VitGeometry::deit_s();
        assert_eq!(geom.head_dim(), 64);
        geom.validate();
    }
}
