//! Component energy model (paper Fig. 6b).
//!
//! Energy for each ZCU102 resource is `idle power x inference delay` plus a
//! per-operation dynamic term driven by the activity counters the timing
//! simulation produces (MACs, SRAM bytes, DRAM bytes, PS cycles). The
//! constants live in [`crate::calib`] and are fitted once to the paper's
//! DeiT-S totals (7.92 W average power).

use crate::calib;
use std::collections::BTreeMap;

/// The four ZCU102 resources the paper's Fig. 6b reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyComponent {
    /// The PL systolic PE array.
    PeArray,
    /// On-chip SRAMs (GB, IPMEM, WTMEM, OPMEM).
    Sram,
    /// Periphery: PS-PL interconnect, reset and memory controllers.
    Periphery,
    /// The ZynQ MPSoC processing system.
    Ps,
}

impl EnergyComponent {
    /// All components in report order.
    pub const ALL: [EnergyComponent; 4] = [
        EnergyComponent::PeArray,
        EnergyComponent::Sram,
        EnergyComponent::Periphery,
        EnergyComponent::Ps,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EnergyComponent::PeArray => "PE Array",
            EnergyComponent::Sram => "SRAM",
            EnergyComponent::Periphery => "Periphery",
            EnergyComponent::Ps => "PS",
        }
    }
}

/// Per-component energy in joules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    per_component: BTreeMap<EnergyComponent, f64>,
}

impl EnergyBreakdown {
    /// Computes the breakdown from activity counters and the total delay.
    pub fn from_activity(
        delay_ms: f64,
        macs: u64,
        sram_bytes: u64,
        dram_bytes: u64,
        ps_cycles: f64,
    ) -> Self {
        let secs = delay_ms / 1e3;
        let mut b = Self::default();
        b.set(
            EnergyComponent::PeArray,
            calib::IDLE_POWER_PE_W * secs + macs as f64 * calib::ENERGY_PER_MAC_PJ * 1e-12,
        );
        b.set(
            EnergyComponent::Sram,
            calib::IDLE_POWER_SRAM_W * secs
                + sram_bytes as f64 * calib::ENERGY_PER_SRAM_BYTE_PJ * 1e-12,
        );
        b.set(
            EnergyComponent::Periphery,
            calib::IDLE_POWER_PERIPHERY_W * secs
                + dram_bytes as f64 * calib::ENERGY_PER_DRAM_BYTE_PJ * 1e-12,
        );
        b.set(
            EnergyComponent::Ps,
            calib::IDLE_POWER_PS_W * secs + ps_cycles * calib::ENERGY_PER_PS_CYCLE_PJ * 1e-12,
        );
        b
    }

    fn set(&mut self, component: EnergyComponent, joules: f64) {
        self.per_component.insert(component, joules);
    }

    /// Adds `joules` to a component (used when combining efforts).
    pub fn add(&mut self, component: EnergyComponent, joules: f64) {
        *self.per_component.entry(component).or_insert(0.0) += joules;
    }

    /// Joules attributed to `component`.
    pub fn get(&self, component: EnergyComponent) -> f64 {
        self.per_component.get(&component).copied().unwrap_or(0.0)
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.per_component.values().sum()
    }

    /// Scales every component by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = Self::default();
        for (c, v) in &self.per_component {
            out.set(*c, v * factor);
        }
        out
    }

    /// Adds another breakdown component-wise.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        for (c, v) in &other.per_component {
            self.add(*c, *v);
        }
    }

    /// Iterates `(component, joules)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, f64)> + '_ {
        EnergyComponent::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_costs_only_idle() {
        let b = EnergyBreakdown::from_activity(1000.0, 0, 0, 0, 0.0);
        let idle_total = calib::IDLE_POWER_PE_W
            + calib::IDLE_POWER_SRAM_W
            + calib::IDLE_POWER_PERIPHERY_W
            + calib::IDLE_POWER_PS_W;
        assert!((b.total_j() - idle_total).abs() < 1e-9);
    }

    #[test]
    fn more_macs_cost_more_pe_energy() {
        let a = EnergyBreakdown::from_activity(10.0, 1_000_000, 0, 0, 0.0);
        let b = EnergyBreakdown::from_activity(10.0, 2_000_000, 0, 0, 0.0);
        assert!(b.get(EnergyComponent::PeArray) > a.get(EnergyComponent::PeArray));
        assert_eq!(b.get(EnergyComponent::Sram), a.get(EnergyComponent::Sram));
    }

    #[test]
    fn scaling_and_accumulation() {
        let a = EnergyBreakdown::from_activity(10.0, 1_000, 1_000, 1_000, 1_000.0);
        let doubled = a.scaled(2.0);
        assert!((doubled.total_j() - 2.0 * a.total_j()).abs() < 1e-12);
        let mut acc = a.clone();
        acc.accumulate(&a);
        assert!((acc.total_j() - doubled.total_j()).abs() < 1e-12);
    }
}
