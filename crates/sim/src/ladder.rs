//! Per-request energy accounting over an effort ladder.
//!
//! [`combine_efforts`](crate::combine_efforts) answers the *aggregate*
//! question the paper's Section 3.4 poses: given `F_L`, what is the
//! average per-image delay and energy of a two-effort cascade? An online
//! serving experiment needs the *per-request* form — each request exits
//! the cascade at some level, having executed every level up to it, and
//! should be charged exactly that hardware cost. [`LadderEnergy`] holds
//! one simulated [`EffortPerf`] per ladder level; [`EnergyLedger`]
//! accumulates charges by exit level so a whole request stream folds into
//! mean energy-per-request, mean delay and the realized `F_L` — the
//! quantities `BENCH_drift.json` compares between the static and adaptive
//! threshold policies.
//!
//! For a two-level ladder the ledger's means agree exactly with
//! `combine_efforts` at the realized `F_L` (pinned by test): a level-1
//! exit costs `E_L + E_H` because the cascade *re-runs* the input at high
//! effort after the low effort failed to classify it — the paper's
//! re-computation overhead, charged per request instead of averaged.

use crate::report::EffortPerf;
use crate::simulator::Simulator;
use crate::workload::VitGeometry;

/// Simulated per-level hardware cost of one effort ladder.
#[derive(Debug, Clone)]
pub struct LadderEnergy {
    levels: Vec<EffortPerf>,
}

impl LadderEnergy {
    /// Builds the ladder cost table from already-simulated level reports,
    /// ordered low → high effort.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<EffortPerf>) -> Self {
        assert!(!levels.is_empty(), "need at least one effort level");
        Self { levels }
    }

    /// Simulates each attention mask on `sim` over `geom` and builds the
    /// cost table: `masks[i]` is level `i`'s active-attention mask
    /// (length `geom.depth`), low effort first.
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty (and the simulator panics on a mask
    /// whose length differs from the geometry's depth).
    pub fn from_masks(sim: &Simulator, geom: &VitGeometry, masks: &[Vec<bool>]) -> Self {
        assert!(!masks.is_empty(), "need at least one effort mask");
        Self::new(masks.iter().map(|m| sim.simulate(geom, m)).collect())
    }

    /// Number of ladder levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The simulated report of level `i`.
    pub fn level(&self, i: usize) -> &EffortPerf {
        &self.levels[i]
    }

    /// Energy (J) charged to a request that exited at `exit_level`: the
    /// sum over every level it executed (`0..=exit_level` — the cascade
    /// always ascends one level at a time from the bottom).
    ///
    /// # Panics
    ///
    /// Panics if `exit_level` is beyond the ladder top.
    pub fn request_energy_j(&self, exit_level: usize) -> f64 {
        assert!(exit_level < self.levels.len(), "exit beyond ladder top");
        self.levels[..=exit_level]
            .iter()
            .map(|l| l.energy.total_j())
            .sum()
    }

    /// Delay (ms) of a request that exited at `exit_level`: the sum of
    /// every executed level's delay (sequential re-runs).
    ///
    /// # Panics
    ///
    /// Panics if `exit_level` is beyond the ladder top.
    pub fn request_delay_ms(&self, exit_level: usize) -> f64 {
        assert!(exit_level < self.levels.len(), "exit beyond ladder top");
        self.levels[..=exit_level].iter().map(|l| l.delay_ms).sum()
    }
}

/// Accumulator folding a request stream into per-request hardware means.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    exits: Vec<u64>,
    energy_j: f64,
    delay_ms: f64,
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one request that exited at `exit_level` against the
    /// ladder's cost table.
    ///
    /// # Panics
    ///
    /// Panics if `exit_level` is beyond the ladder top.
    pub fn charge(&mut self, ladder: &LadderEnergy, exit_level: usize) {
        if self.exits.len() < ladder.levels() {
            self.exits.resize(ladder.levels(), 0);
        }
        self.exits[exit_level] += 1;
        self.energy_j += ladder.request_energy_j(exit_level);
        self.delay_ms += ladder.request_delay_ms(exit_level);
    }

    /// Requests charged so far.
    pub fn requests(&self) -> u64 {
        self.exits.iter().sum()
    }

    /// Requests that exited at each level (index = level).
    pub fn exits(&self) -> &[u64] {
        &self.exits
    }

    /// Realized low-exit fraction `F_L` (level-0 exits over requests).
    /// 0.0 for an empty ledger.
    pub fn f_low(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            return 0.0;
        }
        self.exits.first().copied().unwrap_or(0) as f64 / n as f64
    }

    /// Mean energy per request (J). 0.0 for an empty ledger.
    pub fn mean_energy_j(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            return 0.0;
        }
        self.energy_j / n as f64
    }

    /// Mean delay per request (ms). 0.0 for an empty ledger.
    pub fn mean_delay_ms(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            return 0.0;
        }
        self.delay_ms / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine_efforts;
    use crate::simulator::AcceleratorConfig;

    fn ladder() -> LadderEnergy {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let low: Vec<bool> = (0..geom.depth).map(|i| i < 3).collect();
        let high = vec![true; geom.depth];
        LadderEnergy::from_masks(&sim, &geom, &[low, high])
    }

    #[test]
    fn request_cost_sums_every_executed_level() {
        let l = ladder();
        assert_eq!(l.levels(), 2);
        let e_low = l.level(0).energy.total_j();
        let e_high = l.level(1).energy.total_j();
        assert!(e_low > 0.0 && e_high > e_low);
        assert_eq!(l.request_energy_j(0), e_low);
        assert!((l.request_energy_j(1) - (e_low + e_high)).abs() < 1e-12);
        assert!(
            (l.request_delay_ms(1) - (l.level(0).delay_ms + l.level(1).delay_ms)).abs() < 1e-12
        );
    }

    /// The per-request ledger and the paper's aggregate combination math
    /// agree: charging a stream request-by-request yields exactly
    /// `combine_efforts` at the realized `F_L`.
    #[test]
    fn ledger_means_match_combine_efforts_at_realized_f_low() {
        let l = ladder();
        let mut ledger = EnergyLedger::new();
        // 6 low exits, 2 escalations: F_L = 0.75.
        for _ in 0..6 {
            ledger.charge(&l, 0);
        }
        for _ in 0..2 {
            ledger.charge(&l, 1);
        }
        assert_eq!(ledger.requests(), 8);
        assert_eq!(ledger.exits(), &[6, 2]);
        assert!((ledger.f_low() - 0.75).abs() < 1e-12);

        let combined = combine_efforts(l.level(0), l.level(1), ledger.f_low());
        assert!(
            (ledger.mean_energy_j() - combined.energy_j()).abs() < 1e-9,
            "ledger {} vs combined {}",
            ledger.mean_energy_j(),
            combined.energy_j()
        );
        assert!((ledger.mean_delay_ms() - combined.delay_ms).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_all_zeros() {
        let ledger = EnergyLedger::new();
        assert_eq!(ledger.requests(), 0);
        assert_eq!(ledger.f_low(), 0.0);
        assert_eq!(ledger.mean_energy_j(), 0.0);
        assert_eq!(ledger.mean_delay_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exit beyond ladder top")]
    fn exit_beyond_top_panics() {
        let _ = ladder().request_energy_j(2);
    }
}
