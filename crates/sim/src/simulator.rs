//! The accelerator configuration and top-level simulator.

use crate::ps::PsConfig;
use crate::report::{DelayBreakdown, EffortPerf};
use crate::systolic::matmul_cycles;
use crate::workload::{OpKind, VitGeometry, VitWorkload};
use crate::{Dataflow, EnergyBreakdown};

/// Per-operation profile entry produced by [`Simulator::simulate_detailed`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Operation name, e.g. `"enc3.qkv"`.
    pub name: String,
    /// Reporting bucket.
    pub module: crate::ModuleClass,
    /// Whether the operation ran on the PS (true) or the PL array (false).
    pub on_ps: bool,
    /// Latency contribution in milliseconds.
    pub delay_ms: f64,
    /// MAC operations (0 for PS ops).
    pub macs: u64,
    /// DRAM bytes moved (0 for PS ops).
    pub dram_bytes: u64,
    /// PE-array utilization for MAC ops, 0 for PS ops.
    pub utilization: f64,
}

/// ZCU102 accelerator parameters (paper Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// PL clock in MHz.
    pub clock_mhz: f64,
    /// Dataflow mapping.
    pub dataflow: Dataflow,
    /// Global SRAM buffer capacity in bytes (Table 1: 16 KB).
    pub gb_bytes: usize,
    /// Input SRAM capacity in bytes (Table 1: 64 Kb = 8 KB).
    pub ipmem_bytes: usize,
    /// Weight SRAM capacity in bytes.
    pub wtmem_bytes: usize,
    /// Output SRAM capacity in bytes.
    pub opmem_bytes: usize,
    /// DRAM bandwidth in bytes per PL cycle.
    pub dram_bytes_per_cycle: usize,
    /// Processing-system timing model.
    pub ps: PsConfig,
}

impl AcceleratorConfig {
    /// The paper's Table 1 configuration: 64x36 PEs, input stationary,
    /// 125 MHz, 16 KB GB, 8 KB IP/WT/OP SRAMs.
    pub fn zcu102() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 36,
            clock_mhz: 125.0,
            dataflow: Dataflow::InputStationary,
            gb_bytes: 16 * 1024,
            ipmem_bytes: 8 * 1024,
            wtmem_bytes: 8 * 1024,
            opmem_bytes: 8 * 1024,
            dram_bytes_per_cycle: 64,
            ps: PsConfig::default(),
        }
    }

    /// Validates the configuration, returning a typed error.
    ///
    /// Never panics, even on configurations decoded from untrusted input
    /// (non-finite clocks included).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        fn check(ok: bool, reason: &str) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError(reason.to_string()))
            }
        }
        check(
            self.pe_rows > 0 && self.pe_cols > 0,
            "PE array must be non-empty",
        )?;
        check(
            self.clock_mhz.is_finite()
                && self.ps.clock_mhz.is_finite()
                && self.clock_mhz > 0.0
                && self.ps.clock_mhz > 0.0,
            "clocks must be positive",
        )?;
        check(
            self.dram_bytes_per_cycle > 0,
            "DRAM bandwidth must be positive",
        )?;
        check(
            self.gb_bytes > 0
                && self.ipmem_bytes > 0
                && self.wtmem_bytes > 0
                && self.opmem_bytes > 0,
            "SRAM sizes must be positive",
        )?;
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// Panicking wrapper around [`AcceleratorConfig::try_validate`],
    /// retained for API compatibility on trusted in-process configurations.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized extents or non-positive clocks.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{}", e.reason());
        }
    }
}

/// An accelerator configuration failed validation.
///
/// Produced by [`AcceleratorConfig::try_validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// The human-readable reason validation failed.
    pub fn reason(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid accelerator config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

/// PIVOT-Sim's top-level entry point: maps ViT workloads onto an
/// [`AcceleratorConfig`] and produces per-image delay/energy reports.
///
/// # Example
///
/// ```
/// use pivot_sim::{AcceleratorConfig, Simulator, VitGeometry};
///
/// let sim = Simulator::new(AcceleratorConfig::zcu102());
/// let geom = VitGeometry::deit_s();
/// let full = sim.simulate(&geom, &vec![true; 12]);
/// let half = sim.simulate(&geom, &{
///     let mut m = vec![false; 12];
///     m.iter_mut().take(6).for_each(|b| *b = true);
///     m
/// });
/// assert!(half.delay_ms < full.delay_ms);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    accel: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(accel: AcceleratorConfig) -> Self {
        accel.validate();
        Self { accel }
    }

    /// The accelerator configuration in use.
    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.accel
    }

    /// Simulates one inference of `geom` under the given attention-skip
    /// mask and returns the per-image performance report.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the geometry depth.
    pub fn simulate(&self, geom: &VitGeometry, active_attention: &[bool]) -> EffortPerf {
        let workload = VitWorkload::build(geom, active_attention);
        self.simulate_workload(geom, active_attention, &workload)
    }

    /// Like [`Simulator::simulate`], but additionally returns one
    /// [`LayerReport`] per scheduled operation — the per-layer profile a
    /// SCALE-Sim-style tool exports for accelerator design-space work.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the geometry depth.
    pub fn simulate_detailed(
        &self,
        geom: &VitGeometry,
        active_attention: &[bool],
    ) -> (EffortPerf, Vec<LayerReport>) {
        let workload = VitWorkload::build(geom, active_attention);
        let mut layers = Vec::with_capacity(workload.ops.len());
        for op in &workload.ops {
            match op.kind {
                OpKind::Mac { dims, count } => {
                    let stats = matmul_cycles(dims, &self.accel);
                    let cycles = stats.total_cycles * count as u64;
                    layers.push(LayerReport {
                        name: op.name.clone(),
                        module: op.module,
                        on_ps: false,
                        delay_ms: cycles as f64 / (self.accel.clock_mhz * 1e3),
                        macs: stats.macs * count as u64,
                        dram_bytes: stats.dram_bytes * count as u64,
                        utilization: stats.utilization(self.accel.pe_rows, self.accel.pe_cols),
                    });
                }
                OpKind::Ps { kind, elements } => {
                    layers.push(LayerReport {
                        name: op.name.clone(),
                        module: op.module,
                        on_ps: true,
                        delay_ms: self.accel.ps.delay_ms(kind, elements),
                        macs: 0,
                        dram_bytes: 0,
                        utilization: 0.0,
                    });
                }
            }
        }
        (
            self.simulate_workload(geom, active_attention, &workload),
            layers,
        )
    }

    /// Simulates a prebuilt workload (exposed for custom layer graphs).
    pub fn simulate_workload(
        &self,
        geom: &VitGeometry,
        active_attention: &[bool],
        workload: &VitWorkload,
    ) -> EffortPerf {
        let mut breakdown = DelayBreakdown::new();
        let mut macs = 0u64;
        let mut dram_bytes = 0u64;
        let mut sram_bytes = 0u64;
        let mut ps_cycles = 0.0f64;

        for op in &workload.ops {
            match op.kind {
                OpKind::Mac { dims, count } => {
                    let stats = matmul_cycles(dims, &self.accel);
                    let cycles = stats.total_cycles * count as u64;
                    let ms = cycles as f64 / (self.accel.clock_mhz * 1e3);
                    breakdown.add(op.module, ms);
                    macs += stats.macs * count as u64;
                    dram_bytes += stats.dram_bytes * count as u64;
                    sram_bytes += stats.sram_bytes * count as u64;
                }
                OpKind::Ps { kind, elements } => {
                    let ms = self.accel.ps.delay_ms(kind, elements);
                    breakdown.add(op.module, ms);
                    ps_cycles += self.accel.ps.cycles(kind, elements);
                }
            }
        }

        let delay_ms = breakdown.total_ms();
        let energy =
            EnergyBreakdown::from_activity(delay_ms, macs, sram_bytes, dram_bytes, ps_cycles);
        EffortPerf {
            model: geom.name.clone(),
            effort: active_attention.iter().filter(|&&a| a).count(),
            delay_ms,
            breakdown,
            energy,
            macs,
            dram_bytes,
            sram_bytes,
            ps_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ModuleClass;

    fn sim() -> Simulator {
        Simulator::new(AcceleratorConfig::zcu102())
    }

    #[test]
    fn try_validate_returns_typed_errors_without_panicking() {
        assert!(AcceleratorConfig::zcu102().try_validate().is_ok());
        let zero_pe = AcceleratorConfig {
            pe_rows: 0,
            ..AcceleratorConfig::zcu102()
        };
        let err = zero_pe.try_validate().unwrap_err();
        assert!(err.reason().contains("PE array"));
        let nan_clock = AcceleratorConfig {
            clock_mhz: f64::NAN,
            ..AcceleratorConfig::zcu102()
        };
        assert!(nan_clock.try_validate().is_err());
    }

    #[test]
    #[should_panic(expected = "clocks must be positive")]
    fn validate_wrapper_still_panics() {
        AcceleratorConfig {
            clock_mhz: -1.0,
            ..AcceleratorConfig::zcu102()
        }
        .validate();
    }

    /// Calibration anchor 1: the DeiT-S baseline must land near the paper's
    /// published 59.66 ms with softmax around 60% of it (Table 2 / Fig. 6a).
    #[test]
    fn deit_s_baseline_matches_paper_anchor() {
        let perf = sim().simulate(&VitGeometry::deit_s(), &[true; 12]);
        assert!(
            (50.0..70.0).contains(&perf.delay_ms),
            "DeiT-S delay {} ms, paper 59.66 ms",
            perf.delay_ms
        );
        let softmax_frac = perf.breakdown.fraction(ModuleClass::Softmax);
        assert!(
            (0.52..0.68).contains(&softmax_frac),
            "softmax fraction {softmax_frac}, paper ~0.60"
        );
    }

    /// Calibration anchor: LVViT-S near 79.55 ms with softmax ~63%.
    #[test]
    fn lvvit_s_baseline_matches_paper_anchor() {
        let perf = sim().simulate(&VitGeometry::lvvit_s(), &[true; 16]);
        assert!(
            (66.0..92.0).contains(&perf.delay_ms),
            "LVViT-S delay {} ms, paper 79.55 ms",
            perf.delay_ms
        );
        let softmax_frac = perf.breakdown.fraction(ModuleClass::Softmax);
        assert!(
            (0.55..0.70).contains(&softmax_frac),
            "softmax fraction {softmax_frac}, paper ~0.63"
        );
    }

    /// Fig. 1b: the attention module (MACs + softmax) is 77.5-81.9% of
    /// total inference delay.
    #[test]
    fn attention_share_matches_fig_1b() {
        for (geom, mask_len) in [(VitGeometry::deit_s(), 12), (VitGeometry::lvvit_s(), 16)] {
            let perf = sim().simulate(&geom, &vec![true; mask_len]);
            let frac = perf.breakdown.attention_total_ms() / perf.delay_ms;
            assert!(
                (0.72..0.88).contains(&frac),
                "{}: attention share {frac}, paper 0.775-0.819",
                geom.name
            );
        }
    }

    /// Power anchor: baseline average power near the paper's 7.92 W.
    #[test]
    fn baseline_power_matches_paper_anchor() {
        let perf = sim().simulate(&VitGeometry::deit_s(), &[true; 12]);
        let p = perf.power_w();
        assert!((6.0..10.0).contains(&p), "power {p} W, paper 7.92 W");
    }

    /// Entropy check is negligible (< 0.05% of delay, Section 3.4).
    #[test]
    fn entropy_overhead_is_negligible() {
        let perf = sim().simulate(&VitGeometry::deit_s(), &[true; 12]);
        let frac = perf.breakdown.fraction(ModuleClass::Entropy);
        assert!(frac < 0.0005, "entropy fraction {frac} >= 0.05%");
    }

    #[test]
    fn fewer_attentions_are_strictly_faster() {
        let geom = VitGeometry::deit_s();
        let mut prev = f64::INFINITY;
        for effort in [12usize, 9, 6, 3] {
            let mask: Vec<bool> = (0..12).map(|i| i < effort).collect();
            let perf = sim().simulate(&geom, &mask);
            assert!(perf.delay_ms < prev, "effort {effort} not faster");
            prev = perf.delay_ms;
        }
    }

    #[test]
    fn skip_position_does_not_change_delay() {
        // Delay depends only on how many attentions run, not where.
        let geom = VitGeometry::deit_s();
        let front: Vec<bool> = (0..12).map(|i| i < 6).collect();
        let back: Vec<bool> = (0..12).map(|i| i >= 6).collect();
        let a = sim().simulate(&geom, &front);
        let b = sim().simulate(&geom, &back);
        assert!((a.delay_ms - b.delay_ms).abs() < 1e-9);
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let perf = sim().simulate(&VitGeometry::deit_s(), &[true; 12]);
        assert!((perf.edp() - perf.energy_j() * perf.delay_ms).abs() < 1e-9);
        assert!((perf.fps() * perf.delay_ms - 1e3).abs() < 1e-6);
        let recomputed = perf.fps() / perf.power_w();
        assert!((perf.fps_per_w() - recomputed).abs() < 1e-9);
    }

    #[test]
    fn bigger_array_is_faster_on_macs() {
        let geom = VitGeometry::deit_s();
        let small = Simulator::new(AcceleratorConfig::zcu102());
        let big = Simulator::new(AcceleratorConfig {
            pe_rows: 128,
            pe_cols: 72,
            ..AcceleratorConfig::zcu102()
        });
        let mask = vec![true; 12];
        let a = small.simulate(&geom, &mask);
        let b = big.simulate(&geom, &mask);
        assert!(
            b.breakdown.get(ModuleClass::Mlp) < a.breakdown.get(ModuleClass::Mlp),
            "larger array should cut MAC time"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::VitGeometry;
    use proptest::prelude::*;

    fn geom(depth: usize, dim_heads: (usize, usize), tokens: usize) -> VitGeometry {
        VitGeometry {
            name: "prop".to_string(),
            depth,
            dim: dim_heads.0,
            heads: dim_heads.1,
            mlp_hidden: dim_heads.0 * 4,
            tokens,
            patch_dim: 768,
            num_classes: 1000,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Delay grows monotonically with effort (more active attentions).
        #[test]
        fn prop_delay_monotone_in_effort(effort in 0usize..12) {
            let sim = Simulator::new(AcceleratorConfig::zcu102());
            let g = VitGeometry::deit_s();
            let mask_a: Vec<bool> = (0..12).map(|i| i < effort).collect();
            let mask_b: Vec<bool> = (0..12).map(|i| i <= effort).collect();
            let a = sim.simulate(&g, &mask_a);
            let b = sim.simulate(&g, &mask_b);
            prop_assert!(b.delay_ms > a.delay_ms);
            prop_assert!(b.energy_j() > a.energy_j());
        }

        /// Delay grows with model depth.
        #[test]
        fn prop_delay_monotone_in_depth(depth in 2usize..20) {
            let sim = Simulator::new(AcceleratorConfig::zcu102());
            let small = sim.simulate(&geom(depth, (384, 6), 197), &vec![true; depth]);
            let big = sim.simulate(&geom(depth + 1, (384, 6), 197), &vec![true; depth + 1]);
            prop_assert!(big.delay_ms > small.delay_ms);
        }

        /// Delay grows with sequence length.
        #[test]
        fn prop_delay_monotone_in_tokens(tokens in 16usize..256) {
            let sim = Simulator::new(AcceleratorConfig::zcu102());
            let a = sim.simulate(&geom(4, (384, 6), tokens), &[true; 4]);
            let b = sim.simulate(&geom(4, (384, 6), tokens + 16), &[true; 4]);
            prop_assert!(b.delay_ms > a.delay_ms);
        }

        /// A faster clock never increases delay.
        #[test]
        fn prop_clock_speedup(mult in 1.1f64..4.0) {
            let g = VitGeometry::deit_s();
            let mask = vec![true; 12];
            let base = Simulator::new(AcceleratorConfig::zcu102()).simulate(&g, &mask);
            let fast_cfg = AcceleratorConfig {
                clock_mhz: 125.0 * mult,
                ..AcceleratorConfig::zcu102()
            };
            let fast = Simulator::new(fast_cfg).simulate(&g, &mask);
            prop_assert!(fast.delay_ms < base.delay_ms);
        }

        /// Combined delay interpolates between the two efforts' extremes.
        #[test]
        fn prop_combination_bounds(f_low in 0.0f64..=1.0) {
            let sim = Simulator::new(AcceleratorConfig::zcu102());
            let g = VitGeometry::deit_s();
            let low_mask: Vec<bool> = (0..12).map(|i| i < 4).collect();
            let low = sim.simulate(&g, &low_mask);
            let high = sim.simulate(&g, &[true; 12]);
            let c = crate::combine_efforts(&low, &high, f_low);
            prop_assert!(c.delay_ms >= low.delay_ms - 1e-9);
            prop_assert!(c.delay_ms <= low.delay_ms + high.delay_ms + 1e-9);
            // Delay is linear (decreasing) in f_low.
            let c2 = crate::combine_efforts(&low, &high, (f_low + 0.1).min(1.0));
            prop_assert!(c2.delay_ms <= c.delay_ms + 1e-9);
        }
    }
}

#[cfg(test)]
mod detailed_tests {
    use super::*;
    use crate::{ModuleClass, VitGeometry};

    #[test]
    fn detailed_profile_sums_to_total_delay() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let (perf, layers) = sim.simulate_detailed(&geom, &[true; 12]);
        let layer_sum: f64 = layers.iter().map(|l| l.delay_ms).sum();
        assert!((layer_sum - perf.delay_ms).abs() < 1e-9);
        // 1 embed + 12 * 10 encoder ops + 3 tail ops.
        assert_eq!(layers.len(), 1 + 12 * 10 + 3);
    }

    #[test]
    fn detailed_profile_separates_ps_and_pl() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::deit_s();
        let (_, layers) = sim.simulate_detailed(&geom, &[true; 12]);
        let softmax = layers
            .iter()
            .find(|l| l.module == ModuleClass::Softmax)
            .expect("softmax");
        assert!(softmax.on_ps);
        assert_eq!(softmax.macs, 0);
        let qkv = layers.iter().find(|l| l.name == "enc0.qkv").expect("qkv");
        assert!(!qkv.on_ps);
        assert!(qkv.macs > 0);
        assert!((0.0..=1.0).contains(&qkv.utilization));
    }

    #[test]
    fn detailed_macs_match_summary() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let geom = VitGeometry::lvvit_s();
        let (perf, layers) = sim.simulate_detailed(&geom, &[true; 16]);
        let mac_sum: u64 = layers.iter().map(|l| l.macs).sum();
        assert_eq!(mac_sum, perf.macs);
    }
}
