//! Fold-exact cycle and traffic model of the PL systolic array.
//!
//! A matrix multiplication `M x K * K x N` is executed as a grid of *folds*
//! on the `rows x cols` PE array (Table 1: 64 x 36). For the paper's
//! input-stationary dataflow the input tile (`K` along array rows, `M` along
//! array columns) is pinned, and all `N` weight columns stream through per
//! fold; the per-fold cycle count is validated against the cycle-level
//! stepper in [`simulate_fold_cycles`](crate::simulate_fold_cycles).
//!
//! Memory behaviour follows the Fig. 5 hierarchy: weights travel
//! DRAM -> GB -> WTMEM and are re-fetched from DRAM for every column fold
//! whenever the layer's weights exceed the 16 KB global buffer; inputs are
//! fetched once; outputs are written back once (8-bit, requantized on the
//! fly). Compute and DRAM traffic overlap (double buffering), so a layer's
//! latency is `max(compute cycles, DRAM cycles)`.

use crate::simulator::AcceleratorConfig;
use crate::Dataflow;

/// Dimensions of one matrix multiplication `M x K * K x N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulDims {
    /// Rows of the left operand (e.g. tokens).
    pub m: usize,
    /// Contraction dimension.
    pub k: usize,
    /// Columns of the right operand.
    pub n: usize,
}

impl MatmulDims {
    /// Creates dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        assert!(
            m > 0 && k > 0 && n > 0,
            "matmul dims must be positive: {m}x{k}x{n}"
        );
        Self { m, k, n }
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// Cycle and traffic statistics of one matrix multiplication on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulStats {
    /// Pure compute cycles (fills + streams + drains over all folds).
    pub compute_cycles: u64,
    /// Cycles needed to move all DRAM traffic at the configured bandwidth.
    pub dram_cycles: u64,
    /// `max(compute, dram)` — the layer latency under double buffering.
    pub total_cycles: u64,
    /// Number of folds executed.
    pub folds: u64,
    /// Total MAC operations.
    pub macs: u64,
    /// Bytes moved to/from DRAM (weights with GB-miss re-fetch, inputs once,
    /// outputs once).
    pub dram_bytes: u64,
    /// Bytes read/written on the on-chip SRAMs (IPMEM + WTMEM + OPMEM).
    pub sram_bytes: u64,
}

impl MatmulStats {
    /// PE-array utilization: ideal cycles / compute cycles, in `(0, 1]`.
    pub fn utilization(&self, pe_rows: usize, pe_cols: usize) -> f64 {
        let ideal = self.macs as f64 / (pe_rows * pe_cols) as f64;
        ideal / self.compute_cycles as f64
    }
}

/// Simulates one matrix multiplication `M x K * K x N` on the accelerator.
///
/// Fold grid by dataflow:
///
/// * `InputStationary` — input tile pinned (`K` on rows, `M` on cols);
///   folds = `ceil(K/R) * ceil(M/C)`, stream length `N`.
/// * `WeightStationary` — weight tile pinned (`K` on rows, `N` on cols);
///   folds = `ceil(K/R) * ceil(N/C)`, stream length `M`.
/// * `OutputStationary` — output tile pinned (`M` on rows, `N` on cols);
///   folds = `ceil(M/R) * ceil(N/C)`, stream length `K`.
pub fn matmul_cycles(dims: MatmulDims, accel: &AcceleratorConfig) -> MatmulStats {
    let (rows, cols) = (accel.pe_rows, accel.pe_cols);
    let df = accel.dataflow;
    let div_up = |a: usize, b: usize| a.div_ceil(b);

    let (fold_r, fold_c, stream) = match df {
        Dataflow::InputStationary => (div_up(dims.k, rows), div_up(dims.m, cols), dims.n),
        Dataflow::WeightStationary => (div_up(dims.k, rows), div_up(dims.n, cols), dims.m),
        Dataflow::OutputStationary => (div_up(dims.m, rows), div_up(dims.n, cols), dims.k),
    };
    let folds = (fold_r * fold_c) as u64;
    let compute_cycles = folds * df.fold_cycles(rows, cols, stream);

    // --- DRAM traffic (bytes, 8-bit operands) ---
    let weight_bytes = (dims.k * dims.n) as u64;
    let input_bytes = (dims.m * dims.k) as u64;
    let output_bytes = (dims.m * dims.n) as u64;
    // Weights are re-fetched from DRAM once per reuse-limiting fold when the
    // layer's weights do not fit the global buffer.
    let weight_refetches = if weight_bytes <= accel.gb_bytes as u64 {
        1
    } else {
        match df {
            // Input stationary: weights stream fully for every M-column fold.
            Dataflow::InputStationary => div_up(dims.m, cols) as u64,
            // Weight stationary: weights are fetched once per fold grid pass.
            Dataflow::WeightStationary => 1,
            // Output stationary: weights stream per M-row fold.
            Dataflow::OutputStationary => div_up(dims.m, rows) as u64,
        }
    };
    let dram_bytes = weight_bytes * weight_refetches + input_bytes + output_bytes;
    let dram_cycles = dram_bytes.div_ceil(accel.dram_bytes_per_cycle as u64);

    // --- SRAM traffic: stationary operand loaded per fold, streaming
    // operand read per fold, outputs written with per-K-fold partial sums.
    let sram_bytes = match df {
        Dataflow::InputStationary => {
            input_bytes + weight_bytes * div_up(dims.m, cols) as u64 + output_bytes * fold_r as u64
        }
        Dataflow::WeightStationary => {
            weight_bytes + input_bytes * div_up(dims.n, cols) as u64 + output_bytes * fold_r as u64
        }
        Dataflow::OutputStationary => {
            output_bytes
                + input_bytes * div_up(dims.n, cols) as u64
                + weight_bytes * div_up(dims.m, rows) as u64
        }
    };

    MatmulStats {
        compute_cycles,
        dram_cycles,
        total_cycles: compute_cycles.max(dram_cycles),
        folds,
        macs: dims.macs(),
        dram_bytes,
        sram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::AcceleratorConfig;

    fn zcu102() -> AcceleratorConfig {
        AcceleratorConfig::zcu102()
    }

    #[test]
    fn deit_qkv_projection_cycles() {
        // X(197x384) * W(384x384) on 64x36 IS: folds = ceil(384/64)*ceil(197/36)
        // = 6*6 = 36, fold cycles = 64 + 384 + 35 = 483.
        let stats = matmul_cycles(MatmulDims::new(197, 384, 384), &zcu102());
        assert_eq!(stats.folds, 36);
        assert_eq!(stats.compute_cycles, 36 * 483);
        let util = stats.utilization(64, 36);
        assert!((0.5..=1.0).contains(&util), "utilization {util}");
    }

    #[test]
    fn single_pe_tile_is_exact() {
        let accel = AcceleratorConfig {
            pe_rows: 1,
            pe_cols: 1,
            ..zcu102()
        };
        // 1x1 array: every MAC is one fold element; folds = K*M, stream N.
        let stats = matmul_cycles(MatmulDims::new(2, 3, 4), &accel);
        assert_eq!(stats.folds, 6);
        assert_eq!(stats.compute_cycles, 6 * (1 + 4));
        assert_eq!(stats.macs, 24);
    }

    #[test]
    fn bigger_matrices_take_longer() {
        let small = matmul_cycles(MatmulDims::new(100, 100, 100), &zcu102());
        let big = matmul_cycles(MatmulDims::new(200, 100, 100), &zcu102());
        assert!(big.total_cycles > small.total_cycles);
        assert!(big.dram_bytes > small.dram_bytes);
    }

    #[test]
    fn weights_fitting_gb_are_fetched_once() {
        // 64x64 weights = 4 KB <= 16 KB GB.
        let stats = matmul_cycles(MatmulDims::new(100, 64, 64), &zcu102());
        assert_eq!(stats.dram_bytes, 64 * 64 + 100 * 64 + 100 * 64);
    }

    #[test]
    fn large_weights_are_refetched_per_fold() {
        // 384x384 = 147 KB > 16 KB GB; IS refetches per ceil(M/36) folds.
        let dims = MatmulDims::new(197, 384, 384);
        let stats = matmul_cycles(dims, &zcu102());
        let expected = (384 * 384) as u64 * 6 + (197 * 384) as u64 * 2;
        assert_eq!(stats.dram_bytes, expected);
    }

    #[test]
    fn dataflows_produce_different_latencies() {
        let dims = MatmulDims::new(197, 384, 1536);
        let is = matmul_cycles(dims, &zcu102());
        let ws = matmul_cycles(
            dims,
            &AcceleratorConfig {
                dataflow: Dataflow::WeightStationary,
                ..zcu102()
            },
        );
        let os = matmul_cycles(
            dims,
            &AcceleratorConfig {
                dataflow: Dataflow::OutputStationary,
                ..zcu102()
            },
        );
        // All three are valid mappings of the same work.
        assert_eq!(is.macs, ws.macs);
        assert_eq!(is.macs, os.macs);
        // But with distinct latency profiles.
        assert!(is.compute_cycles != ws.compute_cycles || is.compute_cycles != os.compute_cycles);
    }

    #[test]
    fn latency_is_max_of_compute_and_memory() {
        let starved = AcceleratorConfig {
            dram_bytes_per_cycle: 1,
            ..zcu102()
        };
        let stats = matmul_cycles(MatmulDims::new(197, 384, 384), &starved);
        assert_eq!(stats.total_cycles, stats.dram_cycles);
        assert!(stats.dram_cycles > stats.compute_cycles);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_panic() {
        let _ = MatmulDims::new(0, 1, 1);
    }
}
