//! Delay reporting structures.

use std::collections::BTreeMap;

/// Reporting bucket for delay and energy breakdowns.
///
/// The paper groups modules two ways:
/// * Fig. 1b "attention" = QKV + QKᵀ + SM + SM×V + Proj, i.e.
///   [`ModuleClass::AttentionMac`] + [`ModuleClass::Softmax`];
/// * Fig. 6a splits Attention MAC / Softmax / MLP.
///
/// Both groupings are derived from these buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModuleClass {
    /// Patch embedding projection.
    Embed,
    /// QKV, QKᵀ, SM×V and output projection matrix multiplications.
    AttentionMac,
    /// Softmax on the PS.
    Softmax,
    /// MLP projections and GELU.
    Mlp,
    /// Layer norms on the PS.
    Norm,
    /// Classifier head.
    Head,
    /// Entropy computation on the PS.
    Entropy,
}

impl ModuleClass {
    /// All buckets in report order.
    pub const ALL: [ModuleClass; 7] = [
        ModuleClass::Embed,
        ModuleClass::AttentionMac,
        ModuleClass::Softmax,
        ModuleClass::Mlp,
        ModuleClass::Norm,
        ModuleClass::Head,
        ModuleClass::Entropy,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModuleClass::Embed => "Embed",
            ModuleClass::AttentionMac => "Attention MAC",
            ModuleClass::Softmax => "Softmax",
            ModuleClass::Mlp => "MLP",
            ModuleClass::Norm => "LayerNorm",
            ModuleClass::Head => "Head",
            ModuleClass::Entropy => "Entropy",
        }
    }
}

/// Per-module delay in milliseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DelayBreakdown {
    per_module: BTreeMap<ModuleClass, f64>,
}

impl DelayBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ms` to a module's bucket.
    pub fn add(&mut self, module: ModuleClass, ms: f64) {
        *self.per_module.entry(module).or_insert(0.0) += ms;
    }

    /// Milliseconds attributed to `module`.
    pub fn get(&self, module: ModuleClass) -> f64 {
        self.per_module.get(&module).copied().unwrap_or(0.0)
    }

    /// Total delay in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.per_module.values().sum()
    }

    /// Fraction of total delay in `module`, 0 if the total is 0.
    pub fn fraction(&self, module: ModuleClass) -> f64 {
        let total = self.total_ms();
        if total == 0.0 {
            0.0
        } else {
            self.get(module) / total
        }
    }

    /// The paper's Fig. 1b "attention delay": attention MACs plus softmax.
    pub fn attention_total_ms(&self) -> f64 {
        self.get(ModuleClass::AttentionMac) + self.get(ModuleClass::Softmax)
    }

    /// Iterates `(module, ms)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleClass, f64)> + '_ {
        ModuleClass::ALL.iter().map(|&m| (m, self.get(m)))
    }

    /// Scales every bucket by `factor` (used for effort-combination math).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = Self::new();
        for (m, v) in &self.per_module {
            out.add(*m, v * factor);
        }
        out
    }

    /// Adds another breakdown bucket-wise.
    pub fn accumulate(&mut self, other: &DelayBreakdown) {
        for (m, v) in &other.per_module {
            self.add(*m, *v);
        }
    }
}

/// Complete simulated performance of one effort configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortPerf {
    /// Model name the run describes.
    pub model: String,
    /// Number of active attention modules.
    pub effort: usize,
    /// Per-image delay (ms).
    pub delay_ms: f64,
    /// Per-module delay breakdown.
    pub breakdown: DelayBreakdown,
    /// Per-image energy (J) by component.
    pub energy: crate::EnergyBreakdown,
    /// Total MACs executed.
    pub macs: u64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// Total SRAM bytes moved.
    pub sram_bytes: u64,
    /// Total active PS cycles.
    pub ps_cycles: f64,
}

impl EffortPerf {
    /// Per-image energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Average power in watts.
    pub fn power_w(&self) -> f64 {
        self.energy_j() / (self.delay_ms / 1e3)
    }

    /// Energy-delay product in J*ms (the paper's EDP unit).
    pub fn edp(&self) -> f64 {
        self.energy_j() * self.delay_ms
    }

    /// Throughput in frames per second.
    pub fn fps(&self) -> f64 {
        1e3 / self.delay_ms
    }

    /// Energy efficiency in FPS per watt.
    pub fn fps_per_w(&self) -> f64 {
        self.fps() / self.power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = DelayBreakdown::new();
        b.add(ModuleClass::Softmax, 6.0);
        b.add(ModuleClass::Mlp, 3.0);
        b.add(ModuleClass::AttentionMac, 1.0);
        assert_eq!(b.total_ms(), 10.0);
        assert!((b.fraction(ModuleClass::Softmax) - 0.6).abs() < 1e-12);
        assert_eq!(b.attention_total_ms(), 7.0);
    }

    #[test]
    fn scaled_and_accumulate() {
        let mut a = DelayBreakdown::new();
        a.add(ModuleClass::Mlp, 2.0);
        let half = a.scaled(0.5);
        assert_eq!(half.get(ModuleClass::Mlp), 1.0);
        let mut b = DelayBreakdown::new();
        b.add(ModuleClass::Mlp, 1.0);
        b.accumulate(&half);
        assert_eq!(b.get(ModuleClass::Mlp), 2.0);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = DelayBreakdown::new();
        assert_eq!(b.total_ms(), 0.0);
        assert_eq!(b.fraction(ModuleClass::Softmax), 0.0);
    }
}

impl std::fmt::Display for EffortPerf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} effort {}: {:.2} ms, {:.3} J, {:.2} W, EDP {:.2} J*ms, {:.2} FPS/W",
            self.model,
            self.effort,
            self.delay_ms,
            self.energy_j(),
            self.power_w(),
            self.edp(),
            self.fps_per_w()
        )
    }
}

#[cfg(test)]
mod display_tests {
    use crate::{AcceleratorConfig, Simulator, VitGeometry};

    #[test]
    fn effort_perf_display_is_informative() {
        let sim = Simulator::new(AcceleratorConfig::zcu102());
        let perf = sim.simulate(&VitGeometry::deit_s(), &[true; 12]);
        let s = perf.to_string();
        assert!(s.contains("DeiT-S"));
        assert!(s.contains("effort 12"));
        assert!(s.contains("EDP"));
    }
}
