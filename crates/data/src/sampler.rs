//! Mini-batch index sampling.

use pivot_tensor::Rng;

/// Iterator over shuffled mini-batches of sample indices.
///
/// Produced by [`Dataset::train_batches`](crate::Dataset::train_batches).
/// The final batch may be smaller than `batch_size`.
#[derive(Debug, Clone)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Creates a batch iterator over `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, rng: &mut Rng) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        Self {
            order,
            batch_size,
            cursor: 0,
        }
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let mut rng = Rng::new(0);
        let mut seen: Vec<usize> = BatchIter::new(23, 5, &mut rng).flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_are_correct() {
        let mut rng = Rng::new(1);
        let sizes: Vec<usize> = BatchIter::new(23, 5, &mut rng).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![5, 5, 5, 5, 3]);
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let mut rng = Rng::new(2);
        assert_eq!(BatchIter::new(0, 4, &mut rng).count(), 0);
    }

    #[test]
    fn order_is_shuffled() {
        let mut rng = Rng::new(3);
        let flat: Vec<usize> = BatchIter::new(100, 100, &mut rng).flatten().collect();
        assert_ne!(flat, (0..100).collect::<Vec<_>>());
    }
}
