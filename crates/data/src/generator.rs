//! Parametric pattern families and the difficulty-controlled renderer.

use pivot_tensor::{Matrix, Rng};

/// The ten pattern families, one per class.
///
/// Each family is a smooth function of pixel coordinates plus per-sample
/// jitter; families are chosen to be mutually far apart in pixel space when
/// rendered cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Horizontal sinusoidal stripes.
    HorizontalStripes,
    /// Vertical sinusoidal stripes.
    VerticalStripes,
    /// Diagonal stripes.
    DiagonalStripes,
    /// Checkerboard.
    Checkerboard,
    /// Concentric rings around the center.
    Rings,
    /// A centered Gaussian blob.
    Blob,
    /// Corner-to-corner radial gradient.
    CornerGradient,
    /// A plus-shaped cross.
    Cross,
    /// A grid of dots.
    DotGrid,
    /// A bright half-plane with a tilted edge.
    Wedge,
}

impl PatternKind {
    /// Number of available families.
    pub const COUNT: usize = 10;

    /// All families in class-index order.
    pub const ALL: [PatternKind; Self::COUNT] = [
        PatternKind::HorizontalStripes,
        PatternKind::VerticalStripes,
        PatternKind::DiagonalStripes,
        PatternKind::Checkerboard,
        PatternKind::Rings,
        PatternKind::Blob,
        PatternKind::CornerGradient,
        PatternKind::Cross,
        PatternKind::DotGrid,
        PatternKind::Wedge,
    ];

    /// Family for class index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= PatternKind::COUNT`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

/// Jitter applied to a clean pattern; magnitudes grow with difficulty.
#[derive(Debug, Clone, Copy)]
struct Jitter {
    phase: f32,
    freq_scale: f32,
    shift_x: f32,
    shift_y: f32,
}

/// Renders the *clean* value of `kind` at normalized coordinates
/// `(u, v) in [0,1]^2`, returning a value in `[0, 1]`.
pub fn pattern(kind: PatternKind, u: f32, v: f32) -> f32 {
    pattern_jittered(
        kind,
        u,
        v,
        Jitter {
            phase: 0.0,
            freq_scale: 1.0,
            shift_x: 0.0,
            shift_y: 0.0,
        },
    )
}

fn pattern_jittered(kind: PatternKind, u: f32, v: f32, j: Jitter) -> f32 {
    use std::f32::consts::PI;
    let u = (u + j.shift_x).rem_euclid(1.0);
    let v = (v + j.shift_y).rem_euclid(1.0);
    let f = 4.0 * j.freq_scale;
    let val = match kind {
        PatternKind::HorizontalStripes => (2.0 * PI * f * v + j.phase).sin(),
        PatternKind::VerticalStripes => (2.0 * PI * f * u + j.phase).sin(),
        PatternKind::DiagonalStripes => (2.0 * PI * f * (u + v) * 0.7 + j.phase).sin(),
        PatternKind::Checkerboard => {
            ((2.0 * PI * f * u + j.phase).sin()) * ((2.0 * PI * f * v + j.phase).sin())
        }
        PatternKind::Rings => {
            let r = ((u - 0.5).powi(2) + (v - 0.5).powi(2)).sqrt();
            (2.0 * PI * 2.0 * f * r + j.phase).cos()
        }
        PatternKind::Blob => {
            let r2 = (u - 0.5).powi(2) + (v - 0.5).powi(2);
            2.0 * (-r2 / 0.04).exp() - 1.0
        }
        PatternKind::CornerGradient => 2.0 * (u * v).sqrt() - 1.0,
        PatternKind::Cross => {
            let horiz = ((v - 0.5).abs() < 0.12) as i32 as f32;
            let vert = ((u - 0.5).abs() < 0.12) as i32 as f32;
            2.0 * horiz.max(vert) - 1.0
        }
        PatternKind::DotGrid => {
            let du = (u * f).fract() - 0.5;
            let dv = (v * f).fract() - 0.5;
            let r2 = du * du + dv * dv;
            2.0 * (-r2 / 0.02).exp() - 1.0
        }
        PatternKind::Wedge => {
            let edge = 0.3 * (u - 0.5) + (v - 0.5);
            if edge > 0.0 {
                1.0
            } else {
                -1.0
            }
        }
    };
    0.5 * (val + 1.0)
}

/// Renders one sample of class `kind` at the given `difficulty in [0, 1]`.
///
/// Difficulty drives four corruptions, all zero at difficulty 0:
/// 1. geometric jitter (phase, frequency, translation),
/// 2. a distractor pattern from a *different* class blended in,
/// 3. additive Gaussian pixel noise,
/// 4. contrast compression toward mid-gray.
///
/// The output is clamped to `[0, 1]`.
pub(crate) fn render(
    kind: PatternKind,
    size: usize,
    difficulty: f32,
    classes: usize,
    rng: &mut Rng,
) -> Matrix {
    let d = difficulty.clamp(0.0, 1.0);
    let jitter = Jitter {
        phase: rng.uniform(-1.0, 1.0) * d * 1.5,
        freq_scale: 1.0 + rng.uniform(-1.0, 1.0) * 0.35 * d,
        shift_x: rng.uniform(-1.0, 1.0) * 0.2 * d,
        shift_y: rng.uniform(-1.0, 1.0) * 0.2 * d,
    };
    // Distractor from another class.
    let distractor_kind = {
        let offset = 1 + rng.below(classes.max(2) - 1);
        PatternKind::from_index((kind_index(kind) + offset) % classes.max(2))
    };
    let distractor_jitter = Jitter {
        phase: rng.uniform(-2.0, 2.0),
        freq_scale: rng.uniform(0.7, 1.3),
        shift_x: rng.uniform(0.0, 1.0),
        shift_y: rng.uniform(0.0, 1.0),
    };
    let blend = 0.4 * d;
    let noise_sigma = 0.25 * d;
    let contrast = 1.0 - 0.4 * d;

    Matrix::from_fn(size, size, |r, c| {
        let u = (c as f32 + 0.5) / size as f32;
        let v = (r as f32 + 0.5) / size as f32;
        let base = pattern_jittered(kind, u, v, jitter);
        let dist = pattern_jittered(distractor_kind, u, v, distractor_jitter);
        let mixed = (1.0 - blend) * base + blend * dist;
        let contrasted = 0.5 + contrast * (mixed - 0.5);
        (contrasted + noise_sigma * rng.normal()).clamp(0.0, 1.0)
    })
}

fn kind_index(kind: PatternKind) -> usize {
    PatternKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_patterns_are_in_range() {
        for kind in PatternKind::ALL {
            for r in 0..16 {
                for c in 0..16 {
                    let p = pattern(kind, c as f32 / 16.0, r as f32 / 16.0);
                    assert!((0.0..=1.0).contains(&p), "{kind:?} out of range: {p}");
                }
            }
        }
    }

    #[test]
    fn clean_render_has_no_noise() {
        let mut rng_a = Rng::new(1);
        let mut rng_b = Rng::new(2);
        // Difficulty 0: jitter amplitudes are all zero, so two different RNGs
        // must produce nearly identical clean images (distractor blend = 0).
        let a = render(PatternKind::Rings, 16, 0.0, 10, &mut rng_a);
        let b = render(PatternKind::Rings, 16, 0.0, 10, &mut rng_b);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn families_are_mutually_distinct() {
        let mut rng = Rng::new(0);
        let images: Vec<Matrix> = PatternKind::ALL
            .iter()
            .map(|&k| render(k, 16, 0.0, 10, &mut rng))
            .collect();
        for i in 0..images.len() {
            for j in (i + 1)..images.len() {
                let dist = (&images[i] - &images[j]).frobenius_norm();
                assert!(dist > 1.0, "patterns {i} and {j} too similar: {dist}");
            }
        }
    }

    #[test]
    fn noise_grows_with_difficulty() {
        // Compare a hard render against the clean template of its class;
        // deviation must grow with difficulty.
        let clean = render(PatternKind::Checkerboard, 16, 0.0, 10, &mut Rng::new(3));
        let mut prev = 0.0;
        for (i, d) in [0.25, 0.6, 0.95].iter().enumerate() {
            let mut dev = 0.0;
            for s in 0..8 {
                let img = render(
                    PatternKind::Checkerboard,
                    16,
                    *d,
                    10,
                    &mut Rng::new(100 + s),
                );
                dev += (&img - &clean).frobenius_norm();
            }
            assert!(dev > prev, "deviation not increasing at step {i}");
            prev = dev;
        }
    }

    #[test]
    fn from_index_round_trips() {
        for (i, &k) in PatternKind::ALL.iter().enumerate() {
            assert_eq!(PatternKind::from_index(i), k);
            assert_eq!(kind_index(k), i);
        }
    }
}
