//! Synthetic difficulty-controlled image classification dataset.
//!
//! The paper evaluates on ImageNet-1K, which is unavailable in this
//! reproduction (see `DESIGN.md` §2). This crate provides the substitute: a
//! K-class dataset of parametric grayscale patterns whose **difficulty is a
//! generation-time parameter**. Easy samples are clean, high-contrast
//! instances of their class pattern; hard samples carry structured noise,
//! distractor patterns blended in from *other* classes, geometric jitter and
//! reduced contrast.
//!
//! This preserves exactly the property PIVOT's input-aware cascade needs —
//! inputs of varying feature complexity, where confident (low-entropy)
//! predictions are possible for easy inputs — while additionally giving
//! ground-truth difficulty labels that let the test suite verify
//! input-awareness directly (something ImageNet cannot do).
//!
//! # Example
//!
//! ```
//! use pivot_data::{Dataset, DatasetConfig};
//!
//! let data = Dataset::generate(&DatasetConfig::small(), 42);
//! assert_eq!(data.train.len(), DatasetConfig::small().train_per_class * DatasetConfig::small().classes);
//! ```

#![deny(missing_docs)]

mod drift;
mod generator;
mod sampler;

pub use drift::DriftSchedule;
pub use generator::{pattern, PatternKind};
pub use sampler::BatchIter;

use pivot_tensor::{Matrix, Rng};

/// One labeled image with its ground-truth generation difficulty.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Grayscale pixels in `[0, 1]`, `image_size x image_size`.
    pub image: Matrix,
    /// Class index in `[0, classes)`.
    pub label: usize,
    /// Generation difficulty in `[0, 1]` (0 = clean, 1 = hardest).
    pub difficulty: f32,
}

/// Generation parameters for a [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes `K` (max 10 distinct pattern families).
    pub classes: usize,
    /// Square image side in pixels.
    pub image_size: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Difficulty range sampled uniformly for each image.
    pub difficulty: (f32, f32),
}

impl DatasetConfig {
    /// The default configuration used by the experiment harnesses:
    /// 10 classes of 32x32 images.
    pub fn standard() -> Self {
        Self {
            classes: 10,
            image_size: 32,
            train_per_class: 200,
            test_per_class: 50,
            difficulty: (0.0, 1.0),
        }
    }

    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        Self {
            classes: 4,
            image_size: 16,
            train_per_class: 25,
            test_per_class: 10,
            difficulty: (0.0, 1.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if classes is 0 or exceeds the available pattern families, if
    /// the image is smaller than 8 pixels, or the difficulty range is not in
    /// `[0, 1]` with `lo <= hi`.
    pub fn validate(&self) {
        assert!(
            (1..=PatternKind::COUNT).contains(&self.classes),
            "classes must be in 1..={}",
            PatternKind::COUNT
        );
        assert!(self.image_size >= 8, "image_size must be >= 8");
        let (lo, hi) = self.difficulty;
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "difficulty range must satisfy 0 <= lo <= hi <= 1"
        );
    }
}

/// A generated train/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The configuration the dataset was generated from.
    pub config: DatasetConfig,
    /// Training samples (difficulties sampled from the configured range).
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Generates a dataset deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DatasetConfig::validate`]).
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = Rng::new(seed);
        let mut train = Vec::with_capacity(config.classes * config.train_per_class);
        let mut test = Vec::with_capacity(config.classes * config.test_per_class);
        for label in 0..config.classes {
            for _ in 0..config.train_per_class {
                train.push(Self::sample(config, label, None, &mut rng));
            }
            for _ in 0..config.test_per_class {
                test.push(Self::sample(config, label, None, &mut rng));
            }
        }
        rng.shuffle(&mut train);
        rng.shuffle(&mut test);
        Self {
            config: *config,
            train,
            test,
        }
    }

    /// Generates an evaluation set where every sample has one of the given
    /// difficulties (cycled), e.g. `&[0.1, 0.9]` for an easy/hard stripe
    /// test. Sample count is `per_difficulty * difficulties.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `difficulties` is empty or the configuration is invalid.
    pub fn generate_difficulty_stripes(
        config: &DatasetConfig,
        difficulties: &[f32],
        per_difficulty: usize,
        seed: u64,
    ) -> Vec<Sample> {
        config.validate();
        assert!(!difficulties.is_empty(), "difficulties must be non-empty");
        let mut rng = Rng::new(seed);
        let mut samples = Vec::with_capacity(per_difficulty * difficulties.len());
        for &d in difficulties {
            for _ in 0..per_difficulty {
                let label = rng.below(config.classes);
                samples.push(Self::sample(config, label, Some(d), &mut rng));
            }
        }
        rng.shuffle(&mut samples);
        samples
    }

    fn sample(
        config: &DatasetConfig,
        label: usize,
        forced_difficulty: Option<f32>,
        rng: &mut Rng,
    ) -> Sample {
        let (lo, hi) = config.difficulty;
        let difficulty =
            forced_difficulty.unwrap_or_else(|| if lo < hi { rng.uniform(lo, hi) } else { lo });
        let image = generator::render(
            PatternKind::from_index(label),
            config.image_size,
            difficulty,
            config.classes,
            rng,
        );
        Sample {
            image,
            label,
            difficulty,
        }
    }

    /// Iterator over shuffled mini-batches of training indices.
    pub fn train_batches(&self, batch_size: usize, rng: &mut Rng) -> BatchIter {
        BatchIter::new(self.train.len(), batch_size, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::small();
        let a = Dataset::generate(&cfg, 7);
        let b = Dataset::generate(&cfg, 7);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.image, y.image);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = DatasetConfig::small();
        let a = Dataset::generate(&cfg, 1);
        let b = Dataset::generate(&cfg, 2);
        assert!(a
            .train
            .iter()
            .zip(&b.train)
            .any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn sizes_and_labels() {
        let cfg = DatasetConfig::small();
        let d = Dataset::generate(&cfg, 3);
        assert_eq!(d.train.len(), cfg.classes * cfg.train_per_class);
        assert_eq!(d.test.len(), cfg.classes * cfg.test_per_class);
        for s in d.train.iter().chain(&d.test) {
            assert!(s.label < cfg.classes);
            assert_eq!(s.image.shape(), (cfg.image_size, cfg.image_size));
            assert!((0.0..=1.0).contains(&s.difficulty));
        }
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let d = Dataset::generate(&DatasetConfig::small(), 11);
        for s in &d.train {
            for &p in s.image.as_slice() {
                assert!((0.0..=1.0).contains(&p), "pixel {p} out of range");
            }
        }
    }

    /// Easy images must be classifiable by a trivial nearest-centroid rule;
    /// hard images must be substantially harder. This is the property the
    /// whole entropy-cascade mechanism rests on.
    #[test]
    fn difficulty_knob_controls_separability() {
        let cfg = DatasetConfig {
            classes: 4,
            image_size: 16,
            ..DatasetConfig::small()
        };
        let easy = Dataset::generate_difficulty_stripes(&cfg, &[0.05], 40, 5);
        let hard = Dataset::generate_difficulty_stripes(&cfg, &[0.95], 40, 6);

        // Centroids from an independent easy set.
        let reference = Dataset::generate_difficulty_stripes(&cfg, &[0.05], 60, 7);
        let mut centroids = vec![Matrix::zeros(16, 16); 4];
        let mut counts = vec![0usize; 4];
        for s in &reference {
            centroids[s.label].add_scaled_in_place(&s.image, 1.0);
            counts[s.label] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            if *n > 0 {
                c.scale_in_place(1.0 / *n as f32);
            }
        }
        let classify = |s: &Sample| -> usize {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, c) in centroids.iter().enumerate() {
                let d = (&s.image - c).frobenius_norm();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            best
        };
        let acc = |set: &[Sample]| {
            set.iter().filter(|s| classify(s) == s.label).count() as f32 / set.len() as f32
        };
        let easy_acc = acc(&easy);
        let hard_acc = acc(&hard);
        assert!(easy_acc > 0.9, "easy accuracy {easy_acc} too low");
        assert!(
            easy_acc - hard_acc > 0.1,
            "difficulty gap too small: {easy_acc} vs {hard_acc}"
        );
    }

    #[test]
    fn stripes_respect_forced_difficulty() {
        let cfg = DatasetConfig::small();
        let set = Dataset::generate_difficulty_stripes(&cfg, &[0.2, 0.8], 5, 9);
        assert_eq!(set.len(), 10);
        assert!(set
            .iter()
            .all(|s| s.difficulty == 0.2 || s.difficulty == 0.8));
    }

    #[test]
    #[should_panic(expected = "classes must be in")]
    fn too_many_classes_panics() {
        let cfg = DatasetConfig {
            classes: 99,
            ..DatasetConfig::small()
        };
        let _ = Dataset::generate(&cfg, 0);
    }
}
