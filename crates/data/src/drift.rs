//! Difficulty-drift schedules over the synthetic difficulty knob.
//!
//! PIVOT's Phase 2 picks a static entropy threshold `Th` offline, assuming
//! the difficulty mix of arriving traffic is stationary. This module
//! provides the non-stationary counterpart: a [`DriftSchedule`] maps
//! normalized run progress `t in [0, 1]` to a generation difficulty, and
//! [`Dataset::generate_drift`] renders a **time-ordered** request stream
//! that follows it. The stream is seed-deterministic (bit-reproducible) so
//! every controller trajectory driven by it is replayable in tests.
//!
//! The per-sample RNG consumption is byte-for-byte identical to
//! [`Dataset::generate_difficulty_stripes`] — draw a label, then render —
//! so a [`DriftSchedule::Stationary`] stream degenerates to exactly the
//! stripe generator's output (modulo the stripe generator's final shuffle;
//! the drift stream is intentionally *not* shuffled because arrival order
//! is the whole point).

use crate::{Dataset, DatasetConfig, Sample};
use pivot_tensor::Rng;

/// A deterministic map from normalized run progress to difficulty.
///
/// Progress `t` is clamped to `[0, 1]` before evaluation and the returned
/// difficulty is clamped to `[0, 1]` after, so every schedule is total and
/// always yields a valid knob setting.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftSchedule {
    /// Constant difficulty — the degenerate no-drift case. Equivalent to a
    /// single-difficulty stripe stream in time order.
    Stationary {
        /// The fixed difficulty.
        difficulty: f32,
    },
    /// An abrupt regime change: `before` for `t < at`, `after` from `at` on.
    Step {
        /// Difficulty before the switch point.
        before: f32,
        /// Difficulty at and after the switch point.
        after: f32,
        /// Switch point in normalized progress `[0, 1]`.
        at: f64,
    },
    /// Linear interpolation from `from` to `to` over `[start, end]`,
    /// holding `from` before `start` and `to` after `end`.
    Ramp {
        /// Difficulty at and before `start`.
        from: f32,
        /// Difficulty at and after `end`.
        to: f32,
        /// Ramp onset in normalized progress.
        start: f64,
        /// Ramp completion in normalized progress (`start < end`).
        end: f64,
    },
    /// `base + amplitude * sin(2π * periods * t)`, clamped to `[0, 1]`.
    Sinusoid {
        /// Center difficulty.
        base: f32,
        /// Oscillation amplitude.
        amplitude: f32,
        /// Number of full oscillations over the run.
        periods: f64,
    },
    /// Cycles through `difficulties`, holding each for `dwell` of
    /// normalized progress before switching to the next (wrapping).
    RegimeSwitch {
        /// The regimes, visited in order and wrapped.
        difficulties: Vec<f32>,
        /// Fraction of the run spent in each regime (`> 0`).
        dwell: f64,
    },
}

impl DriftSchedule {
    /// Validates the schedule's parameters.
    ///
    /// # Panics
    ///
    /// Panics if any difficulty endpoint is outside `[0, 1]`, a ramp has
    /// `start >= end`, a step/ramp breakpoint is outside `[0, 1]`, a
    /// sinusoid has negative amplitude or non-finite parameters, or a
    /// regime switch has no regimes or a non-positive dwell.
    pub fn validate(&self) {
        let unit = |v: f32, what: &str| {
            assert!(
                (0.0..=1.0).contains(&v),
                "{what} must be in [0, 1], got {v}"
            );
        };
        match self {
            Self::Stationary { difficulty } => unit(*difficulty, "difficulty"),
            Self::Step { before, after, at } => {
                unit(*before, "before");
                unit(*after, "after");
                assert!((0.0..=1.0).contains(at), "at must be in [0, 1], got {at}");
            }
            Self::Ramp {
                from,
                to,
                start,
                end,
            } => {
                unit(*from, "from");
                unit(*to, "to");
                assert!(
                    (0.0..=1.0).contains(start) && (0.0..=1.0).contains(end) && start < end,
                    "ramp requires 0 <= start < end <= 1, got [{start}, {end}]"
                );
            }
            Self::Sinusoid {
                base,
                amplitude,
                periods,
            } => {
                unit(*base, "base");
                assert!(
                    amplitude.is_finite() && *amplitude >= 0.0,
                    "amplitude must be finite and >= 0, got {amplitude}"
                );
                assert!(
                    periods.is_finite() && *periods > 0.0,
                    "periods must be finite and > 0, got {periods}"
                );
            }
            Self::RegimeSwitch {
                difficulties,
                dwell,
            } => {
                assert!(!difficulties.is_empty(), "difficulties must be non-empty");
                for &d in difficulties {
                    unit(d, "difficulty");
                }
                assert!(
                    dwell.is_finite() && *dwell > 0.0,
                    "dwell must be finite and > 0, got {dwell}"
                );
            }
        }
    }

    /// The difficulty in force at normalized progress `t`.
    ///
    /// `t` is clamped to `[0, 1]` first; the result is clamped to `[0, 1]`
    /// last, so the return value is always a valid difficulty knob setting.
    pub fn difficulty_at(&self, t: f64) -> f32 {
        let t = t.clamp(0.0, 1.0);
        let raw = match self {
            Self::Stationary { difficulty } => *difficulty,
            Self::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            Self::Ramp {
                from,
                to,
                start,
                end,
            } => {
                let frac = ((t - start) / (end - start)).clamp(0.0, 1.0) as f32;
                from + (to - from) * frac
            }
            Self::Sinusoid {
                base,
                amplitude,
                periods,
            } => base + amplitude * (std::f64::consts::TAU * periods * t).sin() as f32,
            Self::RegimeSwitch {
                difficulties,
                dwell,
            } => {
                let idx = (t / dwell).floor() as usize % difficulties.len();
                difficulties[idx]
            }
        };
        raw.clamp(0.0, 1.0)
    }
}

impl Dataset {
    /// Generates a **time-ordered** request stream of `n` samples whose
    /// difficulty follows `schedule` over normalized progress
    /// `t = i / (n - 1)`.
    ///
    /// Unlike [`Dataset::generate_difficulty_stripes`] the stream is *not*
    /// shuffled — sample `i` is the `i`-th arrival, so drift unfolds in
    /// order. The per-sample RNG consumption is otherwise identical to the
    /// stripe generator (label draw, then render), which makes the
    /// stationary schedule bit-equal to a one-difficulty stripe set as a
    /// multiset.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the configuration or schedule is invalid.
    pub fn generate_drift(
        config: &DatasetConfig,
        schedule: &DriftSchedule,
        n: usize,
        seed: u64,
    ) -> Vec<Sample> {
        config.validate();
        schedule.validate();
        assert!(n > 0, "n must be > 0");
        let mut rng = Rng::new(seed);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = if n == 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            };
            let d = schedule.difficulty_at(t);
            let label = rng.below(config.classes);
            samples.push(Self::sample(config, label, Some(d), &mut rng));
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_switches_at_breakpoint() {
        let s = DriftSchedule::Step {
            before: 0.1,
            after: 0.9,
            at: 0.5,
        };
        assert_eq!(s.difficulty_at(0.0), 0.1);
        assert_eq!(s.difficulty_at(0.49), 0.1);
        assert_eq!(s.difficulty_at(0.5), 0.9);
        assert_eq!(s.difficulty_at(1.0), 0.9);
    }

    #[test]
    fn ramp_holds_ends_and_interpolates() {
        let s = DriftSchedule::Ramp {
            from: 0.0,
            to: 1.0,
            start: 0.25,
            end: 0.75,
        };
        assert_eq!(s.difficulty_at(0.0), 0.0);
        assert_eq!(s.difficulty_at(0.25), 0.0);
        assert!((s.difficulty_at(0.5) - 0.5).abs() < 1e-6);
        assert_eq!(s.difficulty_at(0.75), 1.0);
        assert_eq!(s.difficulty_at(1.0), 1.0);
    }

    #[test]
    fn sinusoid_is_clamped_to_unit_range() {
        let s = DriftSchedule::Sinusoid {
            base: 0.5,
            amplitude: 0.9,
            periods: 2.0,
        };
        for i in 0..=100 {
            let d = s.difficulty_at(i as f64 / 100.0);
            assert!((0.0..=1.0).contains(&d), "out of range: {d}");
        }
        // It actually oscillates: hits both clamp rails somewhere.
        let ds: Vec<f32> = (0..=100)
            .map(|i| s.difficulty_at(i as f64 / 100.0))
            .collect();
        assert!(ds.contains(&0.0));
        assert!(ds.contains(&1.0));
    }

    #[test]
    fn regime_switch_cycles_with_wrap() {
        let s = DriftSchedule::RegimeSwitch {
            difficulties: vec![0.2, 0.8],
            dwell: 0.3,
        };
        assert_eq!(s.difficulty_at(0.0), 0.2);
        assert_eq!(s.difficulty_at(0.29), 0.2);
        assert_eq!(s.difficulty_at(0.31), 0.8);
        assert_eq!(s.difficulty_at(0.61), 0.2); // wrapped
        assert_eq!(s.difficulty_at(0.95), 0.8);
    }

    #[test]
    fn progress_is_clamped() {
        let s = DriftSchedule::Step {
            before: 0.1,
            after: 0.9,
            at: 0.5,
        };
        assert_eq!(s.difficulty_at(-3.0), 0.1);
        assert_eq!(s.difficulty_at(7.0), 0.9);
    }

    #[test]
    fn drift_stream_is_time_ordered_under_ramp() {
        let cfg = DatasetConfig::small();
        let s = DriftSchedule::Ramp {
            from: 0.05,
            to: 0.95,
            start: 0.0,
            end: 1.0,
        };
        let stream = Dataset::generate_drift(&cfg, &s, 32, 5);
        assert_eq!(stream.len(), 32);
        for pair in stream.windows(2) {
            assert!(
                pair[0].difficulty <= pair[1].difficulty,
                "hardening ramp must be monotone in arrival order"
            );
        }
        assert_eq!(stream[0].difficulty, 0.05);
        assert_eq!(stream[31].difficulty, 0.95);
    }

    #[test]
    fn single_sample_stream_uses_t_zero() {
        let cfg = DatasetConfig::small();
        let s = DriftSchedule::Ramp {
            from: 0.1,
            to: 0.9,
            start: 0.0,
            end: 1.0,
        };
        let stream = Dataset::generate_drift(&cfg, &s, 1, 5);
        assert_eq!(stream[0].difficulty, 0.1);
    }

    #[test]
    #[should_panic(expected = "ramp requires")]
    fn inverted_ramp_panics() {
        DriftSchedule::Ramp {
            from: 0.0,
            to: 1.0,
            start: 0.8,
            end: 0.2,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "difficulties must be non-empty")]
    fn empty_regime_switch_panics() {
        DriftSchedule::RegimeSwitch {
            difficulties: vec![],
            dwell: 0.5,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "n must be > 0")]
    fn zero_length_stream_panics() {
        let _ = Dataset::generate_drift(
            &DatasetConfig::small(),
            &DriftSchedule::Stationary { difficulty: 0.5 },
            0,
            1,
        );
    }

    mod drift_proptests {
        use super::*;
        use proptest::prelude::*;

        fn schedule_from(sel: usize, a: f32, b: f32, x: f64, y: f64) -> DriftSchedule {
            match sel % 5 {
                0 => DriftSchedule::Stationary { difficulty: a },
                1 => DriftSchedule::Step {
                    before: a,
                    after: b,
                    at: x,
                },
                2 => {
                    let (start, end) = if x < y { (x, y) } else { (y, x) };
                    DriftSchedule::Ramp {
                        from: a,
                        to: b,
                        start: start * 0.5,
                        end: 0.5 + end * 0.5,
                    }
                }
                3 => DriftSchedule::Sinusoid {
                    base: a,
                    amplitude: b,
                    periods: 0.5 + 3.0 * x,
                },
                _ => DriftSchedule::RegimeSwitch {
                    difficulties: vec![a, b],
                    dwell: 0.05 + 0.45 * x,
                },
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Every schedule shape is total over progress and always
            /// yields a valid difficulty knob setting.
            #[test]
            fn difficulty_is_always_in_unit_range(
                sel in 0usize..5,
                a in 0.0f32..=1.0,
                b in 0.0f32..=1.0,
                x in 0.0f64..=1.0,
                y in 0.0f64..=1.0,
                t in -1.0f64..=2.0,
            ) {
                let s = schedule_from(sel, a, b, x, y);
                s.validate();
                let d = s.difficulty_at(t);
                prop_assert!((0.0..=1.0).contains(&d), "difficulty {} out of range", d);
            }

            /// Drift streams are bit-reproducible per seed: same schedule,
            /// same seed, same stream — labels, difficulties and pixels.
            #[test]
            fn streams_are_bit_reproducible_per_seed(
                sel in 0usize..5,
                a in 0.0f32..=1.0,
                b in 0.0f32..=1.0,
                x in 0.0f64..=1.0,
                seed in 0u64..10_000,
            ) {
                let cfg = DatasetConfig::small();
                let s = schedule_from(sel, a, b, x, 0.9);
                let p = Dataset::generate_drift(&cfg, &s, 12, seed);
                let q = Dataset::generate_drift(&cfg, &s, 12, seed);
                prop_assert_eq!(p.len(), q.len());
                for (u, v) in p.iter().zip(&q) {
                    prop_assert_eq!(u.label, v.label);
                    prop_assert_eq!(u.difficulty, v.difficulty);
                    prop_assert_eq!(&u.image, &v.image);
                }
            }

            /// Distinct seeds produce distinct streams.
            #[test]
            fn distinct_seeds_differ(seed in 0u64..10_000) {
                let cfg = DatasetConfig::small();
                let s = DriftSchedule::Stationary { difficulty: 0.5 };
                let p = Dataset::generate_drift(&cfg, &s, 8, seed);
                let q = Dataset::generate_drift(&cfg, &s, 8, seed + 1);
                prop_assert!(p.iter().zip(&q).any(|(u, v)| u.image != v.image));
            }

            /// The stationary schedule degenerates to today's stripe
            /// generator exactly: same config, difficulty and seed yield
            /// the same multiset of (label, image) pairs — the stripe
            /// generator shuffles at the end, the drift stream does not,
            /// so equality is up to order.
            #[test]
            fn stationary_degenerates_to_stripe_generator(
                d in 0.0f32..=1.0,
                seed in 0u64..10_000,
            ) {
                let cfg = DatasetConfig::small();
                let s = DriftSchedule::Stationary { difficulty: d };
                let drift = Dataset::generate_drift(&cfg, &s, 20, seed);
                let stripes = Dataset::generate_difficulty_stripes(&cfg, &[d], 20, seed);
                let key = |set: &[Sample]| {
                    let mut ks: Vec<(usize, u128)> = set
                        .iter()
                        .map(|smp| (smp.label, smp.image.content_hash()))
                        .collect();
                    ks.sort_unstable();
                    ks
                };
                prop_assert_eq!(key(&drift), key(&stripes));
                prop_assert!(drift.iter().all(|smp| smp.difficulty == d));
            }
        }
    }
}
