//! Functional HeatViT-style adaptive token pruning with token packaging.
//!
//! HeatViT scores token importance with lightweight predictors and prunes
//! progressively deeper stages harder; pruned tokens are not dropped but
//! *packaged* — merged into a single carrier token — to preserve their
//! aggregate information. The paper quotes HeatViT's DeiT-S pruning ratios
//! of 40% / 74% / 87% at encoders 4-6 / 7-9 / 10-12 (Section 4.3), which
//! are this module's defaults (0-based stage starts 3 / 6 / 9).
//!
//! The predictor is stood in for by an embedding-energy score (token L2
//! norm after the residual stream), which captures the same signal the
//! head-level predictors learn: low-energy tokens carry little evidence.

use pivot_tensor::Matrix;
use pivot_vit::VisionTransformer;

/// Progressive pruning schedule: `(first_encoder, cumulative_prune_ratio)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatVitConfig {
    /// Stage boundaries: before running encoder `first_encoder`, prune down
    /// to `1 - ratio` of the *original* patch tokens.
    pub stages: Vec<(usize, f32)>,
}

impl HeatVitConfig {
    /// The paper's DeiT-S schedule: 40% / 74% / 87% at stages starting with
    /// encoders 4 / 7 / 10 (1-based).
    pub fn deit_s() -> Self {
        Self {
            stages: vec![(3, 0.40), (6, 0.74), (9, 0.87)],
        }
    }

    /// Scales the stage boundaries to a different depth, preserving the
    /// relative positions (for the tiny stand-in models).
    pub fn scaled_to_depth(&self, depth: usize) -> Self {
        let base = self
            .stages
            .iter()
            .map(|&(e, _)| e)
            .max()
            .unwrap_or(0)
            .max(1);
        let reference_depth = (base + 3).max(12);
        Self {
            stages: self
                .stages
                .iter()
                .map(|&(e, r)| ((e * depth) / reference_depth, r))
                .collect(),
        }
    }

    /// Validates ratios and ordering.
    ///
    /// # Panics
    ///
    /// Panics if ratios are outside `[0, 1)` or not non-decreasing.
    pub fn validate(&self) {
        let mut prev = 0.0f32;
        for &(_, r) in &self.stages {
            assert!((0.0..1.0).contains(&r), "prune ratio {r} out of [0, 1)");
            assert!(r >= prev, "prune ratios must be non-decreasing");
            prev = r;
        }
    }
}

/// HeatViT-style inference wrapper around a trained [`VisionTransformer`].
///
/// # Example
///
/// ```no_run
/// use pivot_baselines::{HeatVit, HeatVitConfig};
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let model = VisionTransformer::new(&VitConfig::tiny(), &mut Rng::new(0));
/// let heatvit = HeatVit::new(HeatVitConfig::deit_s(), 12);
/// let logits = heatvit.infer(&model, &Matrix::zeros(32, 32));
/// ```
#[derive(Debug, Clone)]
pub struct HeatVit {
    config: HeatVitConfig,
}

impl HeatVit {
    /// Creates the baseline for a model of the given depth, scaling the
    /// stage schedule if needed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: HeatVitConfig, depth: usize) -> Self {
        let config = if config.stages.iter().any(|&(e, _)| e >= depth) {
            config.scaled_to_depth(depth)
        } else {
            config
        };
        config.validate();
        Self { config }
    }

    /// The (possibly depth-scaled) schedule in use.
    pub fn config(&self) -> &HeatVitConfig {
        &self.config
    }

    /// Runs token-pruned inference: at each stage boundary the lowest-score
    /// patch tokens are merged into a single package token; the class token
    /// is always kept.
    pub fn infer(&self, model: &VisionTransformer, image: &Matrix) -> Matrix {
        let mut tokens = model.embed_tokens(image);
        let original_patches = tokens.rows() - 1;
        let mut has_package = false;

        for (i, block) in model.encoder_blocks().iter().enumerate() {
            if let Some(&(_, ratio)) = self.config.stages.iter().find(|&&(start, _)| start == i) {
                let keep = (((1.0 - ratio) * original_patches as f32).ceil() as usize).max(1);
                let (pruned, package_now) = prune_and_package(&tokens, keep, has_package);
                tokens = pruned;
                has_package = package_now;
            }
            tokens = block.infer(&tokens);
        }
        model.classify_tokens(&tokens)
    }

    /// Number of live patch tokens entering each encoder (for cost
    /// accounting), excluding class and package tokens.
    pub fn live_tokens_per_encoder(&self, depth: usize, original_patches: usize) -> Vec<usize> {
        let mut live = original_patches;
        (0..depth)
            .map(|i| {
                if let Some(&(_, ratio)) = self.config.stages.iter().find(|&&(start, _)| start == i)
                {
                    live = (((1.0 - ratio) * original_patches as f32).ceil() as usize).max(1);
                }
                live
            })
            .collect()
    }
}

/// Keeps the class token (row 0) and the `keep` highest-energy patch
/// tokens; merges everything else (plus any existing package token, assumed
/// to be the last row) into one averaged package token appended at the end.
///
/// Returns the new token matrix and whether it carries a package token.
fn prune_and_package(tokens: &Matrix, keep: usize, has_package: bool) -> (Matrix, bool) {
    let patch_rows: Vec<usize> = if has_package {
        (1..tokens.rows() - 1).collect()
    } else {
        (1..tokens.rows()).collect()
    };
    if patch_rows.len() <= keep {
        return (tokens.clone(), has_package);
    }
    // Score = embedding energy.
    let mut scored: Vec<(usize, f32)> = patch_rows
        .iter()
        .map(|&r| {
            let norm: f32 = tokens.row(r).iter().map(|&v| v * v).sum();
            (r, norm)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite norms"));
    let mut kept: Vec<usize> = scored.iter().take(keep).map(|&(r, _)| r).collect();
    kept.sort_unstable();
    let dropped: Vec<usize> = scored.iter().skip(keep).map(|&(r, _)| r).collect();

    let dim = tokens.cols();
    let mut out = Matrix::zeros(1 + kept.len() + 1, dim);
    out.row_mut(0).copy_from_slice(tokens.row(0));
    for (dst, &src) in kept.iter().enumerate() {
        out.row_mut(1 + dst).copy_from_slice(tokens.row(src));
    }
    // Package: average of dropped tokens and the previous package.
    let mut package = vec![0.0f32; dim];
    let mut count = 0usize;
    for &r in &dropped {
        for (p, &v) in package.iter_mut().zip(tokens.row(r)) {
            *p += v;
        }
        count += 1;
    }
    if has_package {
        for (p, &v) in package.iter_mut().zip(tokens.row(tokens.rows() - 1)) {
            *p += v;
        }
        count += 1;
    }
    let inv = 1.0 / count.max(1) as f32;
    for p in &mut package {
        *p *= inv;
    }
    out.row_mut(kept.len() + 1).copy_from_slice(&package);
    (out, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    #[test]
    fn schedule_scaling_preserves_order() {
        let cfg = HeatVitConfig::deit_s().scaled_to_depth(4);
        cfg.validate();
        let starts: Vec<usize> = cfg.stages.iter().map(|&(s, _)| s).collect();
        assert_eq!(starts, vec![1, 2, 3]);
    }

    #[test]
    fn live_tokens_follow_paper_ratios() {
        let hv = HeatVit::new(HeatVitConfig::deit_s(), 12);
        let live = hv.live_tokens_per_encoder(12, 196);
        assert_eq!(live[0], 196);
        assert_eq!(live[3], ((0.6f32 * 196.0).ceil()) as usize);
        assert_eq!(live[6], ((0.26f32 * 196.0).ceil()) as usize);
        assert_eq!(live[9], ((0.13f32 * 196.0).ceil()) as usize);
        // Monotone non-increasing.
        for w in live.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn pruning_keeps_cls_and_packages() {
        let mut rng = Rng::new(0);
        let tokens = Matrix::randn(10, 8, 1.0, &mut rng);
        let (pruned, has_package) = prune_and_package(&tokens, 4, false);
        assert!(has_package);
        // cls + 4 kept + 1 package.
        assert_eq!(pruned.rows(), 6);
        assert_eq!(pruned.row(0), tokens.row(0));
    }

    #[test]
    fn no_pruning_needed_is_identity() {
        let mut rng = Rng::new(1);
        let tokens = Matrix::randn(5, 8, 1.0, &mut rng);
        let (same, has_package) = prune_and_package(&tokens, 10, false);
        assert_eq!(same, tokens);
        assert!(!has_package);
    }

    #[test]
    fn inference_produces_valid_logits() {
        let cfg = VitConfig::test_small();
        let model = VisionTransformer::new(&cfg, &mut Rng::new(2));
        let hv = HeatVit::new(HeatVitConfig::deit_s(), cfg.depth);
        let mut rng = Rng::new(3);
        let img = Matrix::rand_uniform(16, 16, 0.0, 1.0, &mut rng);
        let logits = hv.infer(&model, &img);
        assert_eq!(logits.shape(), (1, cfg.num_classes));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pruned_inference_differs_from_dense() {
        let cfg = VitConfig::tiny();
        let model = VisionTransformer::new(&cfg, &mut Rng::new(4));
        let hv = HeatVit::new(HeatVitConfig::deit_s(), cfg.depth);
        let mut rng = Rng::new(5);
        let img = Matrix::rand_uniform(32, 32, 0.0, 1.0, &mut rng);
        let dense = model.infer(&img);
        let pruned = hv.infer(&model, &img);
        assert!(!dense.approx_eq(&pruned, 1e-6));
    }
}
