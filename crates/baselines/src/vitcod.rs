//! Functional ViTCOD-style attention sparsification.
//!
//! ViTCOD (You et al., HPCA'23) prunes ViT attention maps to ~90% sparsity
//! using norm-based scoring, decomposes them into denser/sparser workloads
//! and builds a dedicated accelerator to exploit the sparsity. Functionally,
//! inference keeps only the strongest ~10% of attention links per query —
//! which is what this wrapper reproduces on top of
//! [`pivot_nn::MultiHeadAttention::infer_sparse`].

use pivot_tensor::Matrix;
use pivot_vit::VisionTransformer;

/// ViTCOD-style sparse-attention inference wrapper.
///
/// # Example
///
/// ```no_run
/// use pivot_baselines::VitCod;
/// use pivot_tensor::{Matrix, Rng};
/// use pivot_vit::{VisionTransformer, VitConfig};
///
/// let model = VisionTransformer::new(&VitConfig::tiny(), &mut Rng::new(0));
/// let vitcod = VitCod::new(0.9);
/// let logits = vitcod.infer(&model, &Matrix::zeros(32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VitCod {
    sparsity: f32,
}

impl VitCod {
    /// Creates the baseline with the given attention sparsity (the paper
    /// quotes 90% for DeiT-S).
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not in `[0, 1)`.
    pub fn new(sparsity: f32) -> Self {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
        Self { sparsity }
    }

    /// The attention sparsity ratio.
    pub fn sparsity(&self) -> f32 {
        self.sparsity
    }

    /// The surviving attention density.
    pub fn density(&self) -> f32 {
        1.0 - self.sparsity
    }

    /// Runs sparse-attention inference on a trained model.
    pub fn infer(&self, model: &VisionTransformer, image: &Matrix) -> Matrix {
        model.infer_sparse_attention(image, self.density())
    }

    /// Classification accuracy over labeled samples.
    pub fn accuracy(&self, model: &VisionTransformer, samples: &[pivot_data::Sample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.infer(model, &s.image).row_argmax(0) == s.label)
            .count();
        correct as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_tensor::Rng;
    use pivot_vit::VitConfig;

    #[test]
    fn zero_sparsity_matches_dense() {
        let cfg = VitConfig::test_small();
        let model = VisionTransformer::new(&cfg, &mut Rng::new(0));
        let mut rng = Rng::new(1);
        let img = Matrix::rand_uniform(16, 16, 0.0, 1.0, &mut rng);
        let dense = model.infer(&img);
        let sparse = VitCod::new(0.0).infer(&model, &img);
        assert!(dense.approx_eq(&sparse, 1e-5));
    }

    #[test]
    fn high_sparsity_changes_output() {
        let cfg = VitConfig::test_small();
        let model = VisionTransformer::new(&cfg, &mut Rng::new(2));
        let mut rng = Rng::new(3);
        let img = Matrix::rand_uniform(16, 16, 0.0, 1.0, &mut rng);
        let dense = model.infer(&img);
        let sparse = VitCod::new(0.9).infer(&model, &img);
        assert!(!dense.approx_eq(&sparse, 1e-6));
        assert!(sparse.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn milder_sparsity_stays_closer_to_dense() {
        let cfg = VitConfig::tiny();
        let model = VisionTransformer::new(&cfg, &mut Rng::new(4));
        let mut rng = Rng::new(5);
        let mut dist_mild = 0.0;
        let mut dist_hard = 0.0;
        for _ in 0..5 {
            let img = Matrix::rand_uniform(32, 32, 0.0, 1.0, &mut rng);
            let dense = model.infer(&img);
            dist_mild += (&VitCod::new(0.3).infer(&model, &img) - &dense).frobenius_norm();
            dist_hard += (&VitCod::new(0.9).infer(&model, &img) - &dense).frobenius_norm();
        }
        assert!(
            dist_mild < dist_hard,
            "mild {dist_mild} vs hard {dist_hard}"
        );
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn full_sparsity_panics() {
        let _ = VitCod::new(1.0);
    }
}
