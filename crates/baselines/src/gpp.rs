//! General-purpose-platform (CPU/GPU) cost models for Figs. 1c and 7.
//!
//! The paper's structural argument (Section 1, Fig. 7) is that prior
//! co-design works lose their advantage on commodity platforms:
//!
//! * **ViTCOD**'s 90% attention sparsity needs sparse-matmul hardware; on a
//!   GPP the sparse attention falls back to dense kernels plus
//!   format-handling overhead, so its delay tracks the baseline.
//! * **HeatViT**'s token pruning produces dynamic tensor shapes; batched
//!   GPP execution pads back to dense, so the savings vanish while the
//!   predictor networks, token packaging (gather/scatter) and host syncs
//!   remain as pure overhead.
//! * **PIVOT** skips entire attention modules — static shapes, strictly
//!   fewer kernels and FLOPs — so it speeds up on *any* platform, paying
//!   only the entropy check and re-computation.
//!
//! Each platform is a small roofline: effective dense-GEMM throughput, a
//!   utilization penalty for the small per-head attention matmuls,
//!   memory bandwidth for elementwise traffic, per-kernel dispatch cost,
//!   gather bandwidth and host-sync latency.

use pivot_sim::VitGeometry;

/// The five evaluation platforms of Figs. 1c and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Nvidia V100 (data-center GPU).
    V100,
    /// Nvidia RTX 2080 Ti (desktop GPU).
    Rtx2080Ti,
    /// Nvidia Jetson Orin Nano (edge GPU).
    JetsonOrinNano,
    /// Intel Xeon (server CPU).
    IntelXeon,
    /// Raspberry Pi 4 (embedded CPU).
    RaspberryPi4,
}

impl Platform {
    /// All platforms in the paper's order (GPUs then CPUs).
    pub const ALL: [Platform; 5] = [
        Platform::V100,
        Platform::Rtx2080Ti,
        Platform::JetsonOrinNano,
        Platform::IntelXeon,
        Platform::RaspberryPi4,
    ];

    /// The cost-model parameters of this platform.
    pub fn spec(self) -> PlatformSpec {
        match self {
            Platform::V100 => PlatformSpec {
                name: "Nvidia V100",
                gemm_gflops: 25_000.0,
                attn_gemm_efficiency: 0.15,
                softmax_gelems: 50.0,
                mem_bw_gbs: 800.0,
                dispatch_us: 6.0,
                gather_gbs: 40.0,
                sync_us: 25.0,
            },
            Platform::Rtx2080Ti => PlatformSpec {
                name: "Nvidia RTX 2080 Ti",
                gemm_gflops: 18_000.0,
                attn_gemm_efficiency: 0.15,
                softmax_gelems: 35.0,
                mem_bw_gbs: 550.0,
                dispatch_us: 6.0,
                gather_gbs: 35.0,
                sync_us: 25.0,
            },
            Platform::JetsonOrinNano => PlatformSpec {
                name: "Jetson Orin Nano",
                gemm_gflops: 2_200.0,
                attn_gemm_efficiency: 0.20,
                softmax_gelems: 5.0,
                mem_bw_gbs: 60.0,
                dispatch_us: 12.0,
                gather_gbs: 6.0,
                sync_us: 40.0,
            },
            Platform::IntelXeon => PlatformSpec {
                name: "Intel Xeon",
                gemm_gflops: 1_400.0,
                attn_gemm_efficiency: 0.12,
                softmax_gelems: 1.5,
                mem_bw_gbs: 80.0,
                dispatch_us: 0.6,
                gather_gbs: 8.0,
                sync_us: 1.0,
            },
            Platform::RaspberryPi4 => PlatformSpec {
                name: "Raspberry Pi 4",
                gemm_gflops: 24.0,
                attn_gemm_efficiency: 0.15,
                softmax_gelems: 0.08,
                mem_bw_gbs: 4.0,
                dispatch_us: 0.3,
                gather_gbs: 0.5,
                sync_us: 1.0,
            },
        }
    }
}

/// Roofline parameters of one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Display name.
    pub name: &'static str,
    /// Effective dense GEMM throughput (GFLOP/s) on large matmuls.
    pub gemm_gflops: f64,
    /// Fraction of `gemm_gflops` achieved on the small per-head attention
    /// matmuls (QKᵀ, SM×V) — these are cache-hostile on CPUs and
    /// launch-bound on GPUs.
    pub attn_gemm_efficiency: f64,
    /// Softmax throughput in Gelem/s — exp-bound, far below copy bandwidth
    /// on CPUs.
    pub softmax_gelems: f64,
    /// Memory bandwidth for elementwise traffic (GB/s).
    pub mem_bw_gbs: f64,
    /// Per-kernel dispatch overhead (microseconds).
    pub dispatch_us: f64,
    /// Effective gather/scatter bandwidth for irregular access (GB/s).
    pub gather_gbs: f64,
    /// Host/device synchronization latency (microseconds).
    pub sync_us: f64,
}

impl PlatformSpec {
    /// Delay of a workload on this platform, in milliseconds, split into
    /// `(compute_ms, overhead_ms)`. Compute is GEMM + elementwise;
    /// overhead is dispatch, gather and sync — the split Fig. 7 plots.
    pub fn delay_split_ms(&self, wl: &GppWorkload) -> (f64, f64) {
        let compute = wl.gemm_flops / (self.gemm_gflops * 1e6)
            + wl.attn_gemm_flops / (self.gemm_gflops * self.attn_gemm_efficiency * 1e6)
            + wl.softmax_elems / (self.softmax_gelems * 1e6)
            + wl.elem_bytes / (self.mem_bw_gbs * 1e6);
        let overhead = wl.kernel_launches * self.dispatch_us * 1e-3
            + wl.gather_bytes / (self.gather_gbs * 1e6)
            + wl.sync_count * self.sync_us * 1e-3;
        (compute, overhead)
    }

    /// Total delay in milliseconds.
    pub fn delay_ms(&self, wl: &GppWorkload) -> f64 {
        let (c, o) = self.delay_split_ms(wl);
        c + o
    }

    /// Throughput in frames per second.
    pub fn fps(&self, wl: &GppWorkload) -> f64 {
        1e3 / self.delay_ms(wl)
    }
}

/// Platform-independent operation counts of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GppWorkload {
    /// FLOPs in large regular matmuls (QKV, Proj, MLP, embed, head).
    pub gemm_flops: f64,
    /// FLOPs in the small per-head attention matmuls (QKᵀ, SM×V).
    pub attn_gemm_flops: f64,
    /// Softmax elements (exp-bound).
    pub softmax_elems: f64,
    /// Bytes of memory-bound elementwise traffic (GELU, LN).
    pub elem_bytes: f64,
    /// Kernel launches.
    pub kernel_launches: f64,
    /// Bytes of irregular gather/scatter traffic.
    pub gather_bytes: f64,
    /// Host/device synchronizations.
    pub sync_count: f64,
}

impl GppWorkload {
    /// Adds `other * scale` (for expected-value cascade math).
    pub fn add_scaled(&mut self, other: &GppWorkload, scale: f64) {
        self.gemm_flops += other.gemm_flops * scale;
        self.attn_gemm_flops += other.attn_gemm_flops * scale;
        self.softmax_elems += other.softmax_elems * scale;
        self.elem_bytes += other.elem_bytes * scale;
        self.kernel_launches += other.kernel_launches * scale;
        self.gather_bytes += other.gather_bytes * scale;
        self.sync_count += other.sync_count * scale;
    }
}

/// Bytes per elementwise pass (fp16 read + intermediate + write).
const ELEM_PASS_BYTES: f64 = 12.0;

/// Workload of one ViT inference with the given attention-skip mask.
///
/// # Panics
///
/// Panics if the mask length does not match the geometry depth.
pub fn effort_workload(geom: &VitGeometry, active_attention: &[bool]) -> GppWorkload {
    assert_eq!(active_attention.len(), geom.depth, "mask/depth mismatch");
    let t = geom.tokens as f64;
    let d = geom.dim as f64;
    let h = geom.heads as f64;
    let dh = geom.head_dim() as f64;
    let mlp = geom.mlp_hidden as f64;

    let mut wl = GppWorkload {
        // Patch embed + classifier head.
        gemm_flops: 2.0 * ((t - 1.0) * geom.patch_dim as f64 * d + d * geom.num_classes as f64),
        kernel_launches: 3.0,
        ..Default::default()
    };
    for &active in active_attention {
        if active {
            wl.gemm_flops += 2.0 * (3.0 * t * d * d + t * d * d);
            wl.attn_gemm_flops += 2.0 * 2.0 * h * t * t * dh;
            wl.softmax_elems += h * t * t;
            wl.elem_bytes += t * d * ELEM_PASS_BYTES;
            wl.kernel_launches += 10.0;
        }
        // MLP path always runs.
        wl.gemm_flops += 2.0 * 2.0 * t * d * mlp;
        wl.elem_bytes += (t * mlp + t * d) * ELEM_PASS_BYTES;
        wl.kernel_launches += 5.0;
    }
    wl
}

/// Baseline: the dense ViT with every attention active.
pub fn baseline_workload(geom: &VitGeometry) -> GppWorkload {
    effort_workload(geom, &vec![true; geom.depth])
}

/// PIVOT's cascade: the low effort always runs; a fraction `f_high`
/// additionally runs the high effort. The entropy check adds one tiny sync
/// per image (paper: < 0.05% of delay).
///
/// # Panics
///
/// Panics if `f_high` is outside `[0, 1]` or a mask mismatches the depth.
pub fn pivot_workload(
    geom: &VitGeometry,
    low_mask: &[bool],
    high_mask: &[bool],
    f_high: f64,
) -> GppWorkload {
    assert!((0.0..=1.0).contains(&f_high), "f_high must be in [0, 1]");
    let mut wl = effort_workload(geom, low_mask);
    wl.sync_count += 1.0;
    wl.add_scaled(&effort_workload(geom, high_mask), f_high);
    wl
}

/// HeatViT on a GPP: batched execution pads the pruned tokens back to
/// dense shapes (no compute savings), and the predictors, token packaging
/// gathers and per-stage host syncs (for top-k) remain as overhead.
pub fn heatvit_workload(geom: &VitGeometry, stages: usize) -> GppWorkload {
    let mut wl = baseline_workload(geom);
    let t = geom.tokens as f64;
    let d = geom.dim as f64;
    let s = stages as f64;
    // One predictor MLP (d -> d -> d) over all tokens per stage.
    wl.gemm_flops += s * 2.0 * 2.0 * t * d * d;
    // Gather + scatter of the token matrix (fp16) per stage, twice (select
    // survivors, build the package token).
    wl.gather_bytes += s * 2.0 * 2.0 * t * d * 2.0;
    wl.kernel_launches += s * 6.0;
    wl.sync_count += s;
    wl
}

/// ViTCOD on a GPP: the sparse attention runs as dense kernels (no sparse
/// hardware), plus per-encoder sparse-format handling (mask/CSR decode).
pub fn vitcod_workload(geom: &VitGeometry, sparsity: f64) -> GppWorkload {
    let mut wl = baseline_workload(geom);
    let t = geom.tokens as f64;
    let h = geom.heads as f64;
    // Index + value bytes of the surviving attention entries per encoder.
    let nnz = (1.0 - sparsity) * h * t * t;
    wl.gather_bytes += geom.depth as f64 * nnz * 6.0;
    wl.kernel_launches += geom.depth as f64;
    wl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deit() -> VitGeometry {
        VitGeometry::deit_s()
    }

    fn pvds_masks() -> (Vec<bool>, Vec<bool>) {
        // PVDS-50-like cascade: low effort 3, high effort 9, deep skips.
        let low: Vec<bool> = (0..12).map(|i| i < 3).collect();
        let high: Vec<bool> = (0..12).map(|i| i < 9).collect();
        (low, high)
    }

    #[test]
    fn baseline_flops_are_in_deit_s_range() {
        let wl = baseline_workload(&deit());
        let gf = (wl.gemm_flops + wl.attn_gemm_flops) / 1e9;
        // DeiT-S is ~9.2 GFLOPs (2 x 4.6 GMACs).
        assert!((8.0..11.0).contains(&gf), "DeiT-S GFLOPs {gf}");
    }

    /// Fig. 1c / Fig. 7: PIVOT beats the baseline on every platform.
    #[test]
    fn pivot_is_faster_than_baseline_everywhere() {
        let geom = deit();
        let (low, high) = pvds_masks();
        let base = baseline_workload(&geom);
        let pivot = pivot_workload(&geom, &low, &high, 0.2);
        for p in Platform::ALL {
            let spec = p.spec();
            let speedup = spec.delay_ms(&base) / spec.delay_ms(&pivot);
            assert!(
                (1.1..2.0).contains(&speedup),
                "{}: PIVOT speedup {speedup:.2} outside the paper's 1.2-1.5x regime",
                spec.name
            );
        }
    }

    /// Fig. 7: ViTCOD's delay is similar to the baseline on GPPs.
    #[test]
    fn vitcod_tracks_baseline_everywhere() {
        let geom = deit();
        let base = baseline_workload(&geom);
        let vitcod = vitcod_workload(&geom, 0.9);
        for p in Platform::ALL {
            let spec = p.spec();
            let ratio = spec.delay_ms(&vitcod) / spec.delay_ms(&base);
            assert!(
                (1.0..1.25).contains(&ratio),
                "{}: ViTCOD delay ratio {ratio:.2} should be ~baseline",
                spec.name
            );
        }
    }

    /// Fig. 7: HeatViT is slower than the baseline on GPPs.
    #[test]
    fn heatvit_is_slower_than_baseline_everywhere() {
        let geom = deit();
        let base = baseline_workload(&geom);
        let heatvit = heatvit_workload(&geom, 3);
        for p in Platform::ALL {
            let spec = p.spec();
            let ratio = spec.delay_ms(&heatvit) / spec.delay_ms(&base);
            assert!(
                ratio > 1.02,
                "{}: HeatViT delay ratio {ratio:.2} must show overhead",
                spec.name
            );
        }
    }

    /// PIVOT's GPP overhead (dispatch/gather/sync beyond compute) stays
    /// small — the paper quotes ~6% total overhead.
    #[test]
    fn pivot_overhead_share_is_small_on_cpus() {
        let geom = deit();
        let (low, high) = pvds_masks();
        let pivot = pivot_workload(&geom, &low, &high, 0.2);
        for p in [Platform::IntelXeon, Platform::RaspberryPi4] {
            let spec = p.spec();
            let (compute, overhead) = spec.delay_split_ms(&pivot);
            let share = overhead / (compute + overhead);
            assert!(share < 0.10, "{}: overhead share {share:.3}", spec.name);
        }
    }

    #[test]
    fn platforms_are_ordered_by_capability() {
        let base = baseline_workload(&deit());
        let v100 = Platform::V100.spec().delay_ms(&base);
        let xeon = Platform::IntelXeon.spec().delay_ms(&base);
        let rpi = Platform::RaspberryPi4.spec().delay_ms(&base);
        assert!(v100 < xeon && xeon < rpi);
        // RPi4 runs DeiT-S at a fraction of a frame per second to a few fps.
        let fps = Platform::RaspberryPi4.spec().fps(&base);
        assert!((0.2..20.0).contains(&fps), "RPi4 fps {fps}");
    }

    #[test]
    fn add_scaled_is_linear() {
        let geom = deit();
        let base = baseline_workload(&geom);
        let mut doubled = base;
        doubled.add_scaled(&base, 1.0);
        assert!((doubled.gemm_flops - 2.0 * base.gemm_flops).abs() < 1.0);
        assert!((doubled.kernel_launches - 2.0 * base.kernel_launches).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mask/depth mismatch")]
    fn bad_mask_panics() {
        let _ = effort_workload(&deit(), &[true; 3]);
    }
}
