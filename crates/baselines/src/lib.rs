//! Prior-work baselines and general-purpose-platform (GPP) cost models.
//!
//! The paper compares PIVOT against two algorithm-hardware co-design
//! frameworks (Table 4, Figs. 1c and 7):
//!
//! * **HeatViT** (Dong et al., HPCA'23) — adaptive token pruning with
//!   head-level token scoring and token *packaging* (unimportant tokens are
//!   merged into one). Re-implemented functionally in [`heatvit`].
//! * **ViTCOD** (You et al., HPCA'23) — attention sparsification (90%
//!   sparsity) with a dedicated sparse accelerator. Re-implemented
//!   functionally in [`vitcod`].
//!
//! Both need nuanced hardware support to realize their savings; on CPUs and
//! GPUs they fall back to dense execution plus their own overheads, which is
//! exactly what the [`gpp`] cost models capture.

#![deny(missing_docs)]

pub mod gpp;
pub mod heatvit;
pub mod vitcod;

pub use gpp::{GppWorkload, Platform, PlatformSpec};
pub use heatvit::{HeatVit, HeatVitConfig};
pub use vitcod::VitCod;
