//! Minimal benchmark harness, API-compatible with the subset of the
//! `criterion` crate this workspace's benches use.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be vendored. This shim provides [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! warmed up, then timed over `sample_size` samples; the mean, median and
//! minimum per-iteration times are printed to stdout and recorded as
//! [`BenchResult`]s, which [`Criterion::save_json`] can persist for
//! machine consumption (e.g. `BENCH_matmul.json`). There are no plots,
//! baselines or statistical regressions — this is a measurement harness,
//! not an analysis suite.

use std::path::Path;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's recorded timings, all in seconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` of the benchmark.
    pub name: String,
    /// Fastest sample.
    pub min_s: f64,
    /// Median sample.
    pub median_s: f64,
    /// Mean over all samples.
    pub mean_s: f64,
    /// Number of timed samples collected.
    pub sample_size: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    default_sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            default_sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&name.into(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup and iteration-count calibration: grow the per-sample
        // iteration count until one sample takes ≥ 1/5 of the warmup
        // budget, so short benchmarks are timed over many iterations.
        let mut iters: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
            if b.elapsed < self.warmup / 5 {
                iters = iters.saturating_mul(2);
            }
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            format_time(min),
            format_time(median),
            format_time(mean),
            sample_size,
            iters
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            min_s: min,
            median_s: median,
            mean_s: mean,
            sample_size,
            iters,
        });
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the recorded results to `path` as a JSON array of
    /// `{name, min_s, median_s, mean_s, sample_size, iters}` objects.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"min_s\": {:e}, \"median_s\": {:e}, \"mean_s\": {:e}, \"sample_size\": {}, \"iters\": {}}}{sep}\n",
                json_escape(&r.name),
                r.min_s,
                r.median_s,
                r.mean_s,
                r.sample_size,
                r.iters
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out)?;
        println!("results written to {}", path.display());
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (marker for API parity; timing is already printed).
    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed > Duration::ZERO || calls == 17);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn results_are_recorded_and_serialized() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            default_sample_size: 2,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("first", |b| b.iter(|| 1 + 1));
        group.bench_function("second", |b| b.iter(|| 2 + 2));
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].name, "g/first");
        assert!(c.results()[0].min_s <= c.results()[0].median_s);

        let path = std::env::temp_dir().join("criterion_shim_results_test.json");
        c.save_json(&path).expect("write json");
        let json = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with('['), "not a JSON array: {json}");
        assert!(json.contains("\"name\": \"g/second\""));
        assert!(json.contains("\"sample_size\": 2"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            default_sample_size: 3,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }
}
