//! Neural-network building blocks with hand-written backpropagation.
//!
//! This crate implements every layer a Vision Transformer needs — linear
//! projections, layer normalization, GELU, multi-head self-attention, the MLP
//! block and the full pre-norm encoder block with an *attention skip* switch —
//! together with the three losses of the PIVOT training objective
//! (`L_CE + L_Distill + L_En`) and the Adam/SGD optimizers.
//!
//! There is no autodiff tape: each layer caches what its backward pass needs
//! during `forward` and exposes `backward(d_out) -> d_in`, accumulating
//! parameter gradients into [`Param::grad`]. Gradients of every layer are
//! verified against central finite differences in the test suite.
//!
//! Models process one sample (a `tokens x dim` [`Matrix`]) at a time;
//! batching is a loop with gradient accumulation, which is exact and fast at
//! the model scales used in this reproduction.
//!
//! [`Matrix`]: pivot_tensor::Matrix

#![deny(missing_docs)]

mod attention;
mod encoder;
mod linear;
mod losses;
mod mlp;
mod norm;
mod optim;
mod param;
mod prepared;
mod store;

pub use attention::MultiHeadAttention;
pub use encoder::{EncoderBlock, EncoderTrace};
pub use linear::{Linear, QuantMode};
pub use losses::{
    cross_entropy, distillation_mse, entropy_regularizer, normalized_entropies, normalized_entropy,
    LossValue,
};
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use optim::{Adam, AdamConfig, Sgd};
pub use param::Param;
pub use prepared::{PreparedAttention, PreparedEncoderBlock, PreparedLinear, PreparedMlp};
pub use store::{PreparedStore, StoreStats};

/// A trainable component: forward caches, backward returns the input
/// gradient and accumulates parameter gradients.
pub trait Layer {
    /// Runs the layer on one sample, caching intermediates for `backward`.
    fn forward(&mut self, x: &pivot_tensor::Matrix) -> pivot_tensor::Matrix;

    /// Backpropagates `d_out` through the most recent `forward` call.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before any `forward`.
    fn backward(&mut self, d_out: &pivot_tensor::Matrix) -> pivot_tensor::Matrix;

    /// All trainable parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}
