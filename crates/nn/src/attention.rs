//! Multi-head self-attention (paper Eq. 1).

use crate::{Layer, Linear, Param, QuantMode};
use pivot_tensor::{softmax_row, Matrix, Rng};

/// Multi-head self-attention:
/// `Attention(Q_i, K_i, V_i) = softmax(Q_i K_i^T / sqrt(d_h)) V_i` per head,
/// concatenated and projected (paper Eq. 1).
///
/// The four projections (`W_Q`, `W_K`, `W_V` and the output projection) are
/// [`Linear`] layers so they inherit 8-bit fake quantization from
/// [`QuantMode`].
///
/// # Example
///
/// ```
/// use pivot_nn::{Layer, MultiHeadAttention, QuantMode};
/// use pivot_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::new(0);
/// let mut attn = MultiHeadAttention::new(8, 2, QuantMode::None, &mut rng);
/// assert_eq!(attn.forward(&Matrix::zeros(5, 8)).shape(), (5, 8));
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    proj: Linear,
    heads: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities (t x t each).
    probs: Vec<Matrix>,
}

impl MultiHeadAttention {
    /// Creates an MHSA block over embeddings of size `dim` with `heads`
    /// attention heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, quant: QuantMode, rng: &mut Rng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} must divide into {heads} heads"
        );
        Self {
            wq: Linear::new(dim, dim, quant, rng),
            wk: Linear::new(dim, dim, quant, rng),
            wv: Linear::new(dim, dim, quant, rng),
            proj: Linear::new(dim, dim, quant, rng),
            heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.wq.in_dim()
    }

    /// Per-head dimensionality `d_h = dim / heads`.
    pub fn head_dim(&self) -> usize {
        self.dim() / self.heads
    }

    /// Sets the quantization mode on all four projections.
    pub fn set_quant_mode(&mut self, quant: QuantMode) {
        self.wq.set_quant_mode(quant);
        self.wk.set_quant_mode(quant);
        self.wv.set_quant_mode(quant);
        self.proj.set_quant_mode(quant);
    }

    /// Freezes the block into an immutable inference view (all four
    /// projections prepared once; see [`Linear::prepare`]).
    pub fn prepare(&self) -> crate::PreparedAttention {
        crate::PreparedAttention {
            wq: self.wq.prepare(),
            wk: self.wk.prepare(),
            wv: self.wv.prepare(),
            proj: self.proj.prepare(),
            heads: self.heads,
        }
    }

    /// Freezes the block into an immutable int8 inference view (all four
    /// projections on packed `i8` panels; see [`Linear::prepare_int8`]).
    pub fn prepare_int8(&self) -> crate::PreparedAttention {
        crate::PreparedAttention {
            wq: self.wq.prepare_int8(),
            wk: self.wk.prepare_int8(),
            wv: self.wv.prepare_int8(),
            proj: self.proj.prepare_int8(),
            heads: self.heads,
        }
    }

    /// Like [`MultiHeadAttention::prepare`], with each projection
    /// deduplicated through `store` (see [`Linear::prepare_in`]).
    pub fn prepare_in(&self, store: &crate::PreparedStore) -> crate::PreparedAttention {
        crate::PreparedAttention {
            wq: self.wq.prepare_in(store),
            wk: self.wk.prepare_in(store),
            wv: self.wv.prepare_in(store),
            proj: self.proj.prepare_in(store),
            heads: self.heads,
        }
    }

    /// Like [`MultiHeadAttention::prepare_int8`], with each projection
    /// deduplicated through `store` (see [`Linear::prepare_int8_in`]).
    pub fn prepare_int8_in(&self, store: &crate::PreparedStore) -> crate::PreparedAttention {
        crate::PreparedAttention {
            wq: self.wq.prepare_int8_in(store),
            wk: self.wk.prepare_int8_in(store),
            wv: self.wv.prepare_int8_in(store),
            proj: self.proj.prepare_int8_in(store),
            heads: self.heads,
        }
    }

    /// Total quantization-saturated weights across all four projections
    /// (see [`Linear::weight_saturation`]).
    pub fn weight_saturation(&self) -> usize {
        self.wq.weight_saturation()
            + self.wk.weight_saturation()
            + self.wv.weight_saturation()
            + self.proj.weight_saturation()
    }

    /// Inference-only forward without caching.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let (out, _) = self.attend(&self.wq.infer(x), &self.wk.infer(x), &self.wv.infer(x));
        self.proj.infer(&out)
    }

    /// Batched inference over `x.rows() / tokens` samples stacked along rows
    /// (`tokens` rows each).
    ///
    /// The Q/K/V projections and the output projection each run as one wide
    /// GEMM over the whole stack, so the effective (fake-quantized) weight is
    /// materialized once per batch instead of once per sample. Attention
    /// itself is computed per sample on row slices — scores cannot mix
    /// samples — reusing one caller-owned score/output scratch buffer across
    /// samples and heads.
    ///
    /// Every kernel involved is row-wise with a fixed accumulation order, so
    /// the result is bit-identical to running [`Self::infer`] per sample and
    /// restacking.
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0` or `x.rows()` is not divisible by `tokens`.
    pub fn infer_batch(&self, x: &Matrix, tokens: usize) -> Matrix {
        assert!(
            tokens > 0 && x.rows().is_multiple_of(tokens),
            "batch rows {} not divisible by tokens {tokens}",
            x.rows()
        );
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let n = x.rows() / tokens;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Matrix::zeros(x.rows(), self.dim());
        // Scratch reused across samples and heads.
        let mut scores = Matrix::zeros(tokens, tokens);
        let mut oh = Matrix::zeros(tokens, dh);
        for s in 0..n {
            let (r0, r1) = (s * tokens, (s + 1) * tokens);
            let qs = q.slice_rows(r0, r1);
            let ks = k.slice_rows(r0, r1);
            let vs = v.slice_rows(r0, r1);
            for h in 0..self.heads {
                let (lo, hi) = (h * dh, (h + 1) * dh);
                let qh = qs.slice_cols(lo, hi);
                let kh = ks.slice_cols(lo, hi);
                let vh = vs.slice_cols(lo, hi);
                qh.matmul_transpose_b_into(&kh, &mut scores);
                scores.scale_in_place(scale);
                for r in 0..tokens {
                    let soft = softmax_row(scores.row(r));
                    scores.row_mut(r).copy_from_slice(&soft);
                }
                scores.matmul_into(&vh, &mut oh);
                for r in 0..tokens {
                    out.row_mut(r0 + r)[lo..hi].copy_from_slice(oh.row(r));
                }
            }
        }
        self.proj.infer(&out)
    }

    /// Inference with ViTCOD-style attention sparsification: in each head,
    /// only the `density` fraction of highest-magnitude pre-softmax scores
    /// per row survive; the rest are masked to `-inf` before the softmax.
    ///
    /// At least one entry per row is always kept. Used by the
    /// `pivot-baselines` ViTCOD re-implementation (90% sparsity = density
    /// 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    pub fn infer_sparse(&self, x: &Matrix, density: f32) -> Matrix {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let t = x.rows();
        let keep = ((t as f32 * density).ceil() as usize).max(1);
        let mut out = Matrix::zeros(t, self.dim());
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let mut scores = qh.matmul_transpose_b(&kh);
            scores.scale_in_place(scale);
            for r in 0..t {
                // Keep the top-`keep` scores of this row, mask the rest.
                let row = scores.row(r).to_vec();
                let mut order: Vec<usize> = (0..t).collect();
                order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite scores"));
                let kept: std::collections::HashSet<usize> = order.into_iter().take(keep).collect();
                for (c, val) in scores.row_mut(r).iter_mut().enumerate() {
                    if !kept.contains(&c) {
                        *val = f32::NEG_INFINITY;
                    }
                }
                let soft = softmax_row(scores.row(r));
                scores.row_mut(r).copy_from_slice(&soft);
            }
            let oh = scores.matmul(&vh);
            for r in 0..t {
                for c in 0..dh {
                    out[(r, lo + c)] = oh[(r, c)];
                }
            }
        }
        self.proj.infer(&out)
    }

    /// Core scaled-dot-product attention over already-projected Q/K/V.
    /// Returns the concatenated head outputs and the per-head probabilities.
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, Vec<Matrix>) {
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let t = q.rows();
        let mut out = Matrix::zeros(t, self.dim());
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let mut scores = qh.matmul_transpose_b(&kh);
            scores.scale_in_place(scale);
            for r in 0..t {
                let soft = softmax_row(scores.row(r));
                scores.row_mut(r).copy_from_slice(&soft);
            }
            let oh = scores.matmul(&vh);
            for r in 0..t {
                for c in 0..dh {
                    out[(r, lo + c)] = oh[(r, c)];
                }
            }
            probs.push(scores);
        }
        (out, probs)
    }
}

/// Backward of a row-softmax: given probabilities `p` and upstream `dp`,
/// returns `ds` where `s` are the pre-softmax scores.
fn softmax_backward_row(p: &[f32], dp: &[f32]) -> Vec<f32> {
    let dot: f32 = p.iter().zip(dp).map(|(&a, &b)| a * b).sum();
    p.iter().zip(dp).map(|(&pi, &di)| pi * (di - dot)).collect()
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (out, probs) = self.attend(&q, &k, &v);
        self.cache = Some(Cache { q, k, v, probs });
        self.proj.forward(&out)
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let d_concat = self.proj.backward(d_out);
        let cache = self.cache.take().expect("backward before forward");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let t = d_concat.rows();

        let mut dq = Matrix::zeros(t, self.dim());
        let mut dk = Matrix::zeros(t, self.dim());
        let mut dv = Matrix::zeros(t, self.dim());

        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let d_oh = d_concat.slice_cols(lo, hi);
            let qh = cache.q.slice_cols(lo, hi);
            let kh = cache.k.slice_cols(lo, hi);
            let vh = cache.v.slice_cols(lo, hi);
            let p = &cache.probs[h];

            // O = P V  =>  dP = dO V^T ; dV = P^T dO
            let dp = d_oh.matmul_transpose_b(&vh);
            let dvh = p.matmul_transpose_a(&d_oh);

            // S -> P row softmax
            let mut ds = Matrix::zeros(t, t);
            for r in 0..t {
                let row = softmax_backward_row(p.row(r), dp.row(r));
                ds.row_mut(r).copy_from_slice(&row);
            }
            ds.scale_in_place(scale);

            // S = Q K^T  =>  dQ = dS K ; dK = dS^T Q
            let dqh = ds.matmul(&kh);
            let dkh = ds.matmul_transpose_a(&qh);

            for r in 0..t {
                for c in 0..dh {
                    dq[(r, lo + c)] = dqh[(r, c)];
                    dk[(r, lo + c)] = dkh[(r, c)];
                    dv[(r, lo + c)] = dvh[(r, c)];
                }
            }
        }

        let dx_q = self.wq.backward(&dq);
        let dx_k = self.wk.backward(&dk);
        let dx_v = self.wv.backward(&dv);
        let mut dx = dx_q;
        dx.add_scaled_in_place(&dx_k, 1.0);
        dx.add_scaled_in_place(&dx_v, 1.0);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.wq.params_mut();
        params.extend(self.wk.params_mut());
        params.extend(self.wv.params_mut());
        params.extend(self.proj.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = Rng::new(0);
        let mut attn = MultiHeadAttention::new(12, 3, QuantMode::None, &mut rng);
        let x = Matrix::randn(7, 12, 1.0, &mut rng);
        assert_eq!(attn.forward(&x).shape(), (7, 12));
        assert_eq!(attn.head_dim(), 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_heads_panic() {
        let mut rng = Rng::new(0);
        let _ = MultiHeadAttention::new(10, 3, QuantMode::None, &mut rng);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Rng::new(1);
        let mut attn = MultiHeadAttention::new(8, 2, QuantMode::Int8, &mut rng);
        let x = Matrix::randn(4, 8, 1.0, &mut rng);
        assert!(attn.infer(&x).approx_eq(&attn.forward(&x), 1e-6));
    }

    #[test]
    fn infer_batch_is_bit_identical_to_per_sample_infer() {
        let mut rng = Rng::new(8);
        for quant in [QuantMode::None, QuantMode::Int8] {
            let attn = MultiHeadAttention::new(8, 2, quant, &mut rng);
            let samples: Vec<Matrix> = (0..3).map(|_| Matrix::randn(5, 8, 1.0, &mut rng)).collect();
            let stacked = samples[0].vcat(&samples[1]).vcat(&samples[2]);
            let batched = attn.infer_batch(&stacked, 5);
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(
                    batched.slice_rows(i * 5, (i + 1) * 5),
                    attn.infer(s),
                    "sample {i} diverged under {quant:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn infer_batch_indivisible_rows_panics() {
        let mut rng = Rng::new(9);
        let attn = MultiHeadAttention::new(8, 2, QuantMode::None, &mut rng);
        let _ = attn.infer_batch(&Matrix::zeros(7, 8), 5);
    }

    #[test]
    fn attention_rows_are_probability_distributions() {
        let mut rng = Rng::new(2);
        let mut attn = MultiHeadAttention::new(8, 2, QuantMode::None, &mut rng);
        let x = Matrix::randn(5, 8, 1.0, &mut rng);
        attn.forward(&x);
        let cache = attn.cache.as_ref().expect("cache");
        for p in &cache.probs {
            for r in 0..p.rows() {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                assert!(p.row(r).iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn softmax_backward_row_matches_fd() {
        let logits = [0.3f32, -1.0, 0.7, 0.1];
        let dp = [0.5f32, -0.2, 0.1, 0.9];
        let p = softmax_row(&logits);
        let ds = softmax_backward_row(&p, &dp);
        let h = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += h;
            let mut lm = logits;
            lm[i] -= h;
            let up: f32 = softmax_row(&lp).iter().zip(&dp).map(|(&a, &b)| a * b).sum();
            let um: f32 = softmax_row(&lm).iter().zip(&dp).map(|(&a, &b)| a * b).sum();
            let fd = (up - um) / (2.0 * h);
            assert!((ds[i] - fd).abs() < 1e-3, "ds[{i}]: {} vs {fd}", ds[i]);
        }
    }

    #[test]
    fn gradient_check_input_through_full_block() {
        let mut rng = Rng::new(3);
        let mut attn = MultiHeadAttention::new(4, 2, QuantMode::None, &mut rng);
        let x = Matrix::randn(3, 4, 1.0, &mut rng);
        let target = Matrix::randn(3, 4, 1.0, &mut rng);
        let loss = |m: &MultiHeadAttention, x: &Matrix| {
            0.5 * (&m.infer(x) - &target).frobenius_norm().powi(2)
        };

        let y = attn.forward(&x);
        let dx = attn.backward(&(&y - &target));

        let h = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let fd = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * h);
            assert!(
                (dx.as_slice()[i] - fd).abs() < 2e-2,
                "dx[{i}]: {} vs {fd}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_check_projection_params() {
        let mut rng = Rng::new(4);
        let mut attn = MultiHeadAttention::new(4, 2, QuantMode::None, &mut rng);
        let x = Matrix::randn(3, 4, 1.0, &mut rng);
        let target = Matrix::randn(3, 4, 1.0, &mut rng);
        let loss = |m: &MultiHeadAttention, x: &Matrix| {
            0.5 * (&m.infer(x) - &target).frobenius_norm().powi(2)
        };

        let y = attn.forward(&x);
        attn.backward(&(&y - &target));

        let h = 1e-3;
        let n_params = attn.params_mut().len();
        for pi in 0..n_params {
            let p0 = attn.params_mut()[pi].value.clone();
            let analytic = attn.params_mut()[pi].grad.clone();
            for i in (0..p0.len()).step_by(5) {
                let mut pp = p0.clone();
                pp.as_mut_slice()[i] += h;
                attn.params_mut()[pi].value = pp;
                let lp = loss(&attn, &x);
                let mut pm = p0.clone();
                pm.as_mut_slice()[i] -= h;
                attn.params_mut()[pi].value = pm;
                let lm = loss(&attn, &x);
                attn.params_mut()[pi].value = p0.clone();
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (analytic.as_slice()[i] - fd).abs() < 2e-2,
                    "param {pi}[{i}]: {} vs {fd}",
                    analytic.as_slice()[i]
                );
            }
        }
    }
}
