//! Pre-norm transformer encoder block with an attention-skip switch.

use crate::{Layer, LayerNorm, Mlp, MultiHeadAttention, Param, QuantMode};
use pivot_tensor::{Matrix, Rng};

/// Intermediate activations captured by [`EncoderBlock::infer_traced`],
/// used by `pivot-cka` to build the CKA matrix of the paper's Fig. 3a.
#[derive(Debug, Clone)]
pub struct EncoderTrace {
    /// Residual stream right after the attention sub-block (`A_i` in the
    /// paper). When the attention is skipped this equals the block input.
    pub attention_out: Matrix,
    /// Residual stream after the MLP sub-block (`MLP_i` in the paper) — the
    /// encoder output.
    pub mlp_out: Matrix,
}

/// One ViT encoder: `x += MHSA(LN(x))` (optional) then `x += MLP(LN(x))`.
///
/// The attention sub-block can be *skipped* — the core mechanism PIVOT
/// exploits: with [`EncoderBlock::set_attention_active`]`(false)` the block
/// computes only the MLP path, and the residual stream flows straight from
/// the previous encoder's MLP output into this block's MLP (paper Fig. 3b).
///
/// # Example
///
/// ```
/// use pivot_nn::{EncoderBlock, Layer, QuantMode};
/// use pivot_tensor::{Matrix, Rng};
///
/// let mut rng = Rng::new(0);
/// let mut enc = EncoderBlock::new(8, 2, 16, QuantMode::None, &mut rng);
/// enc.set_attention_active(false);
/// let y = enc.forward(&Matrix::zeros(3, 8));
/// assert_eq!(y.shape(), (3, 8));
/// ```
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    mlp: Mlp,
    attention_active: bool,
}

impl EncoderBlock {
    /// Creates an encoder block (attention active by default).
    pub fn new(
        dim: usize,
        heads: usize,
        mlp_hidden: usize,
        quant: QuantMode,
        rng: &mut Rng,
    ) -> Self {
        Self {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, quant, rng),
            ln2: LayerNorm::new(dim),
            mlp: Mlp::new(dim, mlp_hidden, quant, rng),
            attention_active: true,
        }
    }

    /// Whether the attention sub-block participates in the forward pass.
    pub fn attention_active(&self) -> bool {
        self.attention_active
    }

    /// Activates or skips the attention sub-block.
    pub fn set_attention_active(&mut self, active: bool) {
        self.attention_active = active;
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.attn.dim()
    }

    /// Sets the quantization mode on all sub-layers.
    pub fn set_quant_mode(&mut self, quant: QuantMode) {
        self.attn.set_quant_mode(quant);
        self.mlp.set_quant_mode(quant);
    }

    /// Total quantization-saturated weights across the attention and MLP
    /// sub-layers (see [`crate::Linear::weight_saturation`]).
    ///
    /// Counts the attention projections even when the attention sub-block is
    /// currently skipped: the weights still live in (simulated) SRAM and a
    /// corrupted value there matters as soon as the effort level rises.
    pub fn weight_saturation(&self) -> usize {
        self.attn.weight_saturation() + self.mlp.weight_saturation()
    }

    /// Freezes the block into an immutable inference view (attention and
    /// MLP prepared once, layer norms and the skip switch snapshotted; see
    /// [`crate::Linear::prepare`]).
    pub fn prepare(&self) -> crate::PreparedEncoderBlock {
        crate::PreparedEncoderBlock {
            ln1: self.ln1.clone(),
            attn: self.attn.prepare(),
            ln2: self.ln2.clone(),
            mlp: self.mlp.prepare(),
            attention_active: self.attention_active,
        }
    }

    /// Freezes the block into an immutable int8 inference view: attention
    /// and MLP projections on packed `i8` panels, layer norms (which have
    /// no quantized weights) and the skip switch snapshotted as in
    /// [`EncoderBlock::prepare`].
    pub fn prepare_int8(&self) -> crate::PreparedEncoderBlock {
        crate::PreparedEncoderBlock {
            ln1: self.ln1.clone(),
            attn: self.attn.prepare_int8(),
            ln2: self.ln2.clone(),
            mlp: self.mlp.prepare_int8(),
            attention_active: self.attention_active,
        }
    }

    /// Like [`EncoderBlock::prepare`], with every projection deduplicated
    /// through `store` (see [`crate::Linear::prepare_in`]). Layer norms
    /// are tiny (two rows) and cloned as before.
    pub fn prepare_in(&self, store: &crate::PreparedStore) -> crate::PreparedEncoderBlock {
        crate::PreparedEncoderBlock {
            ln1: self.ln1.clone(),
            attn: self.attn.prepare_in(store),
            ln2: self.ln2.clone(),
            mlp: self.mlp.prepare_in(store),
            attention_active: self.attention_active,
        }
    }

    /// Like [`EncoderBlock::prepare_int8`], with every projection
    /// deduplicated through `store` (see
    /// [`crate::Linear::prepare_int8_in`]).
    pub fn prepare_int8_in(&self, store: &crate::PreparedStore) -> crate::PreparedEncoderBlock {
        crate::PreparedEncoderBlock {
            ln1: self.ln1.clone(),
            attn: self.attn.prepare_int8_in(store),
            ln2: self.ln2.clone(),
            mlp: self.mlp.prepare_int8_in(store),
            attention_active: self.attention_active,
        }
    }

    /// Inference-only forward, also returning the trace for CKA capture.
    pub fn infer_traced(&self, x: &Matrix) -> EncoderTrace {
        let after_attn = if self.attention_active {
            let mut a = self.attn.infer(&self.ln1.infer(x));
            a.add_scaled_in_place(x, 1.0);
            a
        } else {
            x.clone()
        };
        let mut out = self.mlp.infer(&self.ln2.infer(&after_attn));
        out.add_scaled_in_place(&after_attn, 1.0);
        EncoderTrace {
            attention_out: after_attn,
            mlp_out: out,
        }
    }

    /// Inference-only forward without caching.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.infer_traced(x).mlp_out
    }

    /// Batched inference over samples stacked along rows (`tokens` rows
    /// each). Layer norms and the MLP are row-wise and run directly on the
    /// stack; attention goes through
    /// [`MultiHeadAttention::infer_batch`]. Bit-identical to per-sample
    /// [`EncoderBlock::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0` or `x.rows()` is not divisible by `tokens`.
    pub fn infer_batch(&self, x: &Matrix, tokens: usize) -> Matrix {
        let after_attn = if self.attention_active {
            let mut a = self.attn.infer_batch(&self.ln1.infer(x), tokens);
            a.add_scaled_in_place(x, 1.0);
            a
        } else {
            x.clone()
        };
        let mut out = self.mlp.infer(&self.ln2.infer(&after_attn));
        out.add_scaled_in_place(&after_attn, 1.0);
        out
    }

    /// Inference with ViTCOD-style sparsified attention (see
    /// [`MultiHeadAttention::infer_sparse`]). Honors the skip switch: a
    /// skipped attention stays skipped.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    pub fn infer_sparse(&self, x: &Matrix, density: f32) -> Matrix {
        let after_attn = if self.attention_active {
            let mut a = self.attn.infer_sparse(&self.ln1.infer(x), density);
            a.add_scaled_in_place(x, 1.0);
            a
        } else {
            x.clone()
        };
        let mut out = self.mlp.infer(&self.ln2.infer(&after_attn));
        out.add_scaled_in_place(&after_attn, 1.0);
        out
    }

    /// The attention sub-block (read-only, for analysis and baselines).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// The MLP sub-block (read-only).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

impl Layer for EncoderBlock {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let after_attn = if self.attention_active {
            let mut a = self.attn.forward(&self.ln1.forward(x));
            a.add_scaled_in_place(x, 1.0);
            a
        } else {
            x.clone()
        };
        let mut out = self.mlp.forward(&self.ln2.forward(&after_attn));
        out.add_scaled_in_place(&after_attn, 1.0);
        out
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        // out = after_attn + mlp(ln2(after_attn))
        let d_mlp_in = self.mlp.backward(d_out);
        let mut d_after_attn = self.ln2.backward(&d_mlp_in);
        d_after_attn.add_scaled_in_place(d_out, 1.0);

        if self.attention_active {
            // after_attn = x + attn(ln1(x))
            let d_attn_in = self.attn.backward(&d_after_attn);
            let mut dx = self.ln1.backward(&d_attn_in);
            dx.add_scaled_in_place(&d_after_attn, 1.0);
            dx
        } else {
            d_after_attn
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.ln1.params_mut();
        params.extend(self.attn.params_mut());
        params.extend(self.ln2.params_mut());
        params.extend(self.mlp.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seed: u64) -> EncoderBlock {
        let mut rng = Rng::new(seed);
        EncoderBlock::new(6, 2, 12, QuantMode::None, &mut rng)
    }

    #[test]
    fn skipped_attention_trace_forwards_input() {
        let mut enc = block(0);
        enc.set_attention_active(false);
        let mut rng = Rng::new(1);
        let x = Matrix::randn(4, 6, 1.0, &mut rng);
        let trace = enc.infer_traced(&x);
        assert_eq!(trace.attention_out, x);
    }

    #[test]
    fn active_block_differs_from_skipped() {
        let mut enc = block(0);
        let mut rng = Rng::new(1);
        let x = Matrix::randn(4, 6, 1.0, &mut rng);
        let with_attn = enc.infer(&x);
        enc.set_attention_active(false);
        let without = enc.infer(&x);
        assert!(!with_attn.approx_eq(&without, 1e-6));
    }

    #[test]
    fn infer_batch_matches_per_sample_both_modes() {
        for active in [true, false] {
            let mut enc = block(7);
            enc.set_attention_active(active);
            let mut rng = Rng::new(8);
            let a = Matrix::randn(4, 6, 1.0, &mut rng);
            let b = Matrix::randn(4, 6, 1.0, &mut rng);
            let batched = enc.infer_batch(&a.vcat(&b), 4);
            assert_eq!(batched.slice_rows(0, 4), enc.infer(&a), "active={active}");
            assert_eq!(batched.slice_rows(4, 8), enc.infer(&b), "active={active}");
        }
    }

    #[test]
    fn infer_matches_forward_both_modes() {
        for active in [true, false] {
            let mut enc = block(2);
            enc.set_attention_active(active);
            let mut rng = Rng::new(3);
            let x = Matrix::randn(4, 6, 1.0, &mut rng);
            assert!(enc.infer(&x).approx_eq(&enc.forward(&x), 1e-6));
        }
    }

    #[test]
    fn gradient_check_input_active_and_skipped() {
        for active in [true, false] {
            let mut enc = block(4);
            enc.set_attention_active(active);
            let mut rng = Rng::new(5);
            let x = Matrix::randn(3, 6, 1.0, &mut rng);
            let target = Matrix::randn(3, 6, 1.0, &mut rng);
            let loss = |m: &EncoderBlock, x: &Matrix| {
                0.5 * (&m.infer(x) - &target).frobenius_norm().powi(2)
            };

            let y = enc.forward(&x);
            let dx = enc.backward(&(&y - &target));

            let h = 1e-3;
            for i in (0..x.len()).step_by(2) {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += h;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= h;
                let fd = (loss(&enc, &xp) - loss(&enc, &xm)) / (2.0 * h);
                assert!(
                    (dx.as_slice()[i] - fd).abs() < 3e-2,
                    "active={active} dx[{i}]: {} vs {fd}",
                    dx.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn param_count_is_stable() {
        let mut enc = block(6);
        // 2 LN x (gamma+beta) + 4 attn linears x (w+b) + 2 mlp linears x (w+b)
        assert_eq!(enc.params_mut().len(), 2 * 2 + 4 * 2 + 2 * 2);
        let n = enc.param_count();
        // dim=6, heads=2, hidden=12:
        // LN: 2*(6+6)=24; attn: 4*(36+6)=168; mlp: 6*12+12 + 12*6+6 = 162.
        assert_eq!(n, 24 + 168 + 162);
    }
}
