//! Optimizers: Adam and SGD with momentum.
//!
//! Optimizers are stateless with respect to the model type: they operate on
//! the flat `Vec<&mut Param>` a [`Layer`](crate::Layer) exposes, keyed by
//! position, so the parameter order must be stable across steps (it is — the
//! layers build the vector deterministically).

use crate::Param;
use pivot_tensor::Matrix;

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
///
/// # Example
///
/// ```
/// use pivot_nn::{Adam, AdamConfig, Param};
/// use pivot_tensor::Matrix;
///
/// let mut p = Param::new(Matrix::filled(1, 1, 1.0));
/// p.grad = Matrix::filled(1, 1, 1.0);
/// let mut adam = Adam::new(AdamConfig::default());
/// adam.step(&mut [&mut p]);
/// assert!(p.value[(0, 0)] < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> AdamConfig {
        self.config
    }

    /// Updates the learning rate (e.g. for cosine decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Number of optimizer steps taken.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Applies one update using each parameter's accumulated gradient, then
    /// clears the gradients.
    ///
    /// # Panics
    ///
    /// Panics if the number or shapes of parameters change between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter count changed between steps"
        );
        self.step += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.step as i32);
        let bc2 = 1.0 - c.beta2.powi(self.step as i32);
        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.m[i].shape(),
                p.value.shape(),
                "parameter {i} shape changed"
            );
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..p.value.len() {
                let g = p.grad.as_slice()[j];
                let mj = c.beta1 * m.as_slice()[j] + (1.0 - c.beta1) * g;
                let vj = c.beta2 * v.as_slice()[j] + (1.0 - c.beta2) * g * g;
                m.as_mut_slice()[j] = mj;
                v.as_mut_slice()[j] = vj;
                let m_hat = mj / bc1;
                let v_hat = vj / bc2;
                let mut update = c.lr * m_hat / (v_hat.sqrt() + c.eps);
                if c.weight_decay > 0.0 {
                    update += c.lr * c.weight_decay * p.value.as_slice()[j];
                }
                p.value.as_mut_slice()[j] -= update;
            }
            p.zero_grad();
        }
    }
}

/// Plain SGD with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update and clears the gradients.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter count changed between steps"
        );
        for (i, p) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[i];
            vel.scale_in_place(self.momentum);
            vel.add_scaled_in_place(&p.grad, 1.0);
            p.value.add_scaled_in_place(vel, -self.lr);
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 0.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..300 {
            let x = p.value[(0, 0)];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            adam.step(&mut [&mut p]);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 10.0));
        let mut sgd = Sgd::new(0.05, 0.9);
        for _ in 0..200 {
            let x = p.value[(0, 0)];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            sgd.step(&mut [&mut p]);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::new(Matrix::filled(1, 1, 1.0));
        p.grad = Matrix::filled(1, 1, 5.0);
        Adam::new(AdamConfig::default()).step(&mut [&mut p]);
        assert_eq!(p.grad.max_abs(), 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = Param::new(Matrix::filled(1, 1, 1.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..Default::default()
        });
        for _ in 0..50 {
            p.grad = Matrix::zeros(1, 1);
            adam.step(&mut [&mut p]);
        }
        assert!(p.value[(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_panics() {
        let mut p1 = Param::new(Matrix::zeros(1, 1));
        let mut p2 = Param::new(Matrix::zeros(1, 1));
        let mut adam = Adam::new(AdamConfig::default());
        adam.step(&mut [&mut p1, &mut p2]);
        adam.step(&mut [&mut p1]);
    }
}
